#include "core/containment.h"

#include "base/check.h"
#include "core/csp_translation.h"
#include "csp/query.h"
#include "obs/metrics.h"

namespace obda::core {

namespace {

/// Registry handles for the containment deciders.
struct ContainmentCounters {
  obs::Counter& csp_calls = obs::GetCounter("containment.csp_calls");
  obs::Counter& bounded_calls = obs::GetCounter("containment.bounded_calls");
  /// Candidate instances enumerated by the bounded decider.
  obs::Counter& candidates = obs::GetCounter("containment.candidates");
  /// Certain-answer oracle invocations (two per surviving candidate).
  obs::Counter& oracle_calls = obs::GetCounter("containment.oracle_calls");
  obs::TimerStat& compile = obs::GetTimer("containment.compile");
  obs::TimerStat& decide = obs::GetTimer("containment.decide");
  obs::TimerStat& bounded = obs::GetTimer("containment.bounded");

  static ContainmentCounters& Get() {
    static ContainmentCounters counters;
    return counters;
  }
};

}  // namespace

base::Result<bool> OmqContained(const OntologyMediatedQuery& q1,
                                const OntologyMediatedQuery& q2) {
  obs::TraceSpan span("containment.csp");
  ContainmentCounters::Get().csp_calls.Add(1);
  if (!q1.data_schema().LayoutCompatible(q2.data_schema())) {
    return base::InvalidArgumentError(
        "containment requires a common data schema");
  }
  if (q1.arity() != q2.arity()) {
    return base::InvalidArgumentError("arity mismatch");
  }
  auto csp1 = [&] {
    obs::ScopedTimer timer(ContainmentCounters::Get().compile);
    return CompileToCsp(q1);
  }();
  if (!csp1.ok()) return csp1.status();
  auto csp2 = [&] {
    obs::ScopedTimer timer(ContainmentCounters::Get().compile);
    return CompileToCsp(q2);
  }();
  if (!csp2.ok()) return csp2.status();
  obs::ScopedTimer timer(ContainmentCounters::Get().decide);
  return csp::CoCspContained(*csp1, *csp2);
}

namespace {

/// Enumerates all instances over `schema` with exactly `num_elements`
/// elements and at most `max_facts` facts, invoking `visit`; stops early
/// when `visit` returns false.
bool EnumerateInstances(
    const data::Schema& schema, int num_elements, int max_facts,
    const std::function<bool(const data::Instance&)>& visit) {
  // All possible facts.
  struct FactTemplate {
    data::RelationId rel;
    std::vector<data::ConstId> args;
  };
  std::vector<FactTemplate> all_facts;
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    const int arity = schema.Arity(r);
    std::vector<data::ConstId> args(static_cast<std::size_t>(arity), 0);
    for (;;) {
      all_facts.push_back(FactTemplate{r, args});
      int pos = arity - 1;
      while (pos >= 0 &&
             ++args[pos] == static_cast<data::ConstId>(num_elements)) {
        args[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
      if (arity == 0) break;
    }
    if (arity == 0) all_facts.pop_back();  // 0-ary enumerated once below
  }
  // Choose subsets of facts up to max_facts (combinations).
  std::vector<int> chosen;
  std::function<bool(std::size_t)> recurse = [&](std::size_t start) {
    {
      data::Instance d(schema);
      for (int i = 0; i < num_elements; ++i) {
        d.AddConstant("e" + std::to_string(i));
      }
      for (int f : chosen) {
        d.AddFact(all_facts[f].rel, all_facts[f].args);
      }
      if (!visit(d)) return false;
    }
    if (static_cast<int>(chosen.size()) == max_facts) return true;
    for (std::size_t f = start; f < all_facts.size(); ++f) {
      chosen.push_back(static_cast<int>(f));
      if (!recurse(f + 1)) return false;
      chosen.pop_back();
    }
    return true;
  };
  return recurse(0);
}

}  // namespace

base::Result<ContainmentVerdict> OmqContainedBounded(
    const OntologyMediatedQuery& q1, const OntologyMediatedQuery& q2,
    const ContainmentOptions& options) {
  ContainmentCounters& counters = ContainmentCounters::Get();
  obs::ScopedTimer bounded_timer(counters.bounded);
  obs::TraceSpan span("containment.bounded");
  counters.bounded_calls.Add(1);
  if (!q1.data_schema().LayoutCompatible(q2.data_schema())) {
    return base::InvalidArgumentError(
        "containment requires a common data schema");
  }
  if (q1.arity() != q2.arity()) {
    return base::InvalidArgumentError("arity mismatch");
  }
  dl::BoundedModelOptions bounded;
  bounded.extra_elements = options.extra_elements;

  base::Status failure = base::Status::Ok();
  bool contained = true;
  for (int n = 1; n <= options.max_elements && contained; ++n) {
    bool completed = EnumerateInstances(
        q1.data_schema(), n, options.max_facts,
        [&](const data::Instance& d) {
          counters.candidates.Add(1);
          counters.oracle_calls.Add(1);
          auto a1 = q1.CertainAnswersBounded(d, bounded);
          if (!a1.ok()) {
            failure = a1.status();
            return false;
          }
          counters.oracle_calls.Add(1);
          auto a2 = q2.CertainAnswersBounded(d, bounded);
          if (!a2.ok()) {
            failure = a2.status();
            return false;
          }
          for (const auto& tuple : *a1) {
            if (std::find(a2->begin(), a2->end(), tuple) == a2->end()) {
              contained = false;
              return false;
            }
          }
          return true;
        });
    if (!completed && failure.ok() && !contained) break;
    if (!failure.ok()) return failure;
  }
  return contained ? ContainmentVerdict::kContainedWithinBound
                   : ContainmentVerdict::kNotContained;
}

}  // namespace obda::core
