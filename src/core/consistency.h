#ifndef OBDA_CORE_CONSISTENCY_H_
#define OBDA_CORE_CONSISTENCY_H_

#include "base/status.h"
#include "data/instance.h"
#include "dl/ontology.h"

namespace obda::core {

/// Exact ABox consistency for ALC(H/I/S/U) ontologies over binary data
/// schemas: D is consistent with O iff D maps homomorphically into one
/// of the reasoner-type templates (the query-free special case of the
/// Thm 4.6 machinery). Functional roles are rejected (use the bounded
/// engine, dl::BoundedConsistent, for ALCF).
base::Result<bool> IsConsistent(const dl::Ontology& ontology,
                                const data::Instance& instance,
                                int max_template_elements = 1024);

}  // namespace obda::core

#endif  // OBDA_CORE_CONSISTENCY_H_
