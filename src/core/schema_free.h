#ifndef OBDA_CORE_SCHEMA_FREE_H_
#define OBDA_CORE_SCHEMA_FREE_H_

#include "base/status.h"
#include "core/omq.h"

namespace obda::core {

/// The schema-free construction of Thm 6.1: from a CSP template B, an
/// OMQ (S∞, O', ∃x.Goal(x)) polynomially equivalent to coCSP(B) even
/// when the data may use ALL symbols — including those of O'. The trick:
/// the per-element choice concepts A_d are replaced by the compound
/// guards H_d = ∀R_d.A_d, whose truth a model can set freely regardless
/// of what R_d/A_d facts the data asserts (Fact 1 in the proof).
///
/// The returned OMQ's data schema is the FULL signature (B's schema plus
/// all R_d, A_d, and Goal) — instances over any subset embed by reduct.
base::Result<OntologyMediatedQuery> CspToSchemaFreeOmq(
    const data::Instance& b);

/// The reduction of Thm 6.2: rewrites a containment problem between
/// fixed-schema OMQs into one between schema-free OMQs by adding
/// emptiness axioms (R ⊑ ⊥-style sentences, here: ∃R.⊤ ⊔ ∃R⁻.⊤ ⊑ ⊥ for
/// roles and A ⊑ ⊥ for concepts) for the non-schema symbols of Q1 to
/// O2. Returns the modified second OMQ whose data schema is the union
/// signature.
base::Result<OntologyMediatedQuery> AddEmptinessAxiomsForNonSchemaSymbols(
    const OntologyMediatedQuery& q1, const OntologyMediatedQuery& q2);

}  // namespace obda::core

#endif  // OBDA_CORE_SCHEMA_FREE_H_
