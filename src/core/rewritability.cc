#include "core/rewritability.h"

#include <algorithm>

#include "base/check.h"
#include "core/csp_translation.h"
#include "csp/consistency.h"
#include "csp/duality.h"
#include "csp/rewritability.h"
#include "data/homomorphism.h"
#include "data/ops.h"
#include "ddlog/datalog.h"
#include "obs/metrics.h"

namespace obda::core {

namespace {

/// Registry handles for the rewritability deciders and extractors.
struct RewritabilityCounters {
  obs::Counter& fo_checks = obs::GetCounter("rewritability.fo_checks");
  obs::Counter& datalog_checks =
      obs::GetCounter("rewritability.datalog_checks");
  /// Collapsed CSP templates processed by the extractors.
  obs::Counter& templates = obs::GetCounter("rewritability.templates");
  /// Tree obstructions collected into FO-rewriting disjuncts.
  obs::Counter& obstructions = obs::GetCounter("rewritability.obstructions");
  /// Per-candidate-tuple engine runs by DatalogRewriting::Evaluate.
  obs::Counter& oracle_calls = obs::GetCounter("rewritability.oracle_calls");
  obs::TimerStat& compile = obs::GetTimer("rewritability.compile");
  obs::TimerStat& extract_fo = obs::GetTimer("rewritability.extract_fo");
  obs::TimerStat& extract_datalog =
      obs::GetTimer("rewritability.extract_datalog");

  static RewritabilityCounters& Get() {
    static RewritabilityCounters counters;
    return counters;
  }
};

base::Result<csp::CoCspQuery> TimedCompile(const OntologyMediatedQuery& omq,
                                           int max_template_elements = 1024) {
  obs::ScopedTimer timer(RewritabilityCounters::Get().compile);
  return CompileToCsp(omq, max_template_elements);
}

}  // namespace

base::Result<bool> IsFoRewritable(const OntologyMediatedQuery& omq,
                                  int max_template_elements) {
  obs::TraceSpan span("rewritability.fo_check");
  RewritabilityCounters::Get().fo_checks.Add(1);
  auto csp_query = TimedCompile(omq, max_template_elements);
  if (!csp_query.ok()) return csp_query.status();
  return csp::IsFoRewritable(*csp_query);
}

base::Result<bool> IsDatalogRewritable(const OntologyMediatedQuery& omq,
                                       int max_template_elements) {
  obs::TraceSpan span("rewritability.datalog_check");
  RewritabilityCounters::Get().datalog_checks.Add(1);
  auto csp_query = TimedCompile(omq, max_template_elements);
  if (!csp_query.ok()) return csp_query.status();
  return csp::IsDatalogRewritable(*csp_query);
}

namespace {

/// Converts an obstruction tree over the collapsed schema into a CQ over
/// the data schema: Mark1-elements merge into the answer variable.
fo::ConjunctiveQuery ObstructionToCq(const data::Instance& tree,
                                     const data::Schema& data_schema,
                                     int arity) {
  OBDA_CHECK_LE(arity, 1);
  fo::ConjunctiveQuery cq(data_schema, arity);
  auto mark = tree.schema().FindRelation("Mark1");
  std::vector<bool> is_marked(tree.UniverseSize(), false);
  if (arity == 1 && mark.has_value()) {
    for (std::uint32_t i = 0; i < tree.NumTuples(*mark); ++i) {
      is_marked[tree.Tuple(*mark, i)[0]] = true;
    }
  }
  std::vector<fo::QVar> var_of(tree.UniverseSize(), -1);
  for (data::ConstId c = 0; c < tree.UniverseSize(); ++c) {
    if (arity == 1 && is_marked[c]) {
      var_of[c] = 0;
    } else {
      var_of[c] = cq.AddVariable();
    }
  }
  for (data::RelationId r = 0; r < tree.schema().NumRelations(); ++r) {
    const std::string& name = tree.schema().RelationName(r);
    auto target = data_schema.FindRelation(name);
    if (!target.has_value()) continue;  // Mark relations are dropped
    for (std::uint32_t i = 0; i < tree.NumTuples(r); ++i) {
      auto t = tree.Tuple(r, i);
      std::vector<fo::QVar> vars;
      vars.reserve(t.size());
      for (data::ConstId c : t) vars.push_back(var_of[c]);
      cq.AddAtom(*target, std::move(vars));
    }
  }
  return cq;
}

}  // namespace

std::vector<std::vector<data::ConstId>> FoRewriting::Evaluate(
    const data::Instance& instance) const {
  // All conjuncts are evaluated over the same instance; compile its
  // support index once.
  const data::CompiledTarget target(instance);
  return Evaluate(target);
}

std::vector<std::vector<data::ConstId>> FoRewriting::Evaluate(
    const data::CompiledTarget& target) const {
  std::vector<std::vector<data::ConstId>> result;
  bool first = true;
  for (const fo::UnionOfCq& q : conjuncts) {
    auto answers = q.Evaluate(target);
    if (first) {
      result = std::move(answers);
      first = false;
    } else {
      std::vector<std::vector<data::ConstId>> intersection;
      std::set_intersection(result.begin(), result.end(), answers.begin(),
                            answers.end(),
                            std::back_inserter(intersection));
      result = std::move(intersection);
    }
    if (result.empty()) break;
  }
  // With no templates at all (inconsistent ontology) the rewriting
  // notion degenerates; callers guard via IsFoRewritable first.
  return result;
}

base::Result<FoRewriting> ExtractFoRewriting(
    const OntologyMediatedQuery& omq,
    const csp::ObstructionOptions& options) {
  obs::ScopedTimer timer(RewritabilityCounters::Get().extract_fo);
  obs::TraceSpan span("rewritability.extract_fo");
  auto csp_query = TimedCompile(omq);
  if (!csp_query.ok()) return csp_query.status();
  csp::CoCspQuery reduced = csp_query->ReduceToIncomparable();
  FoRewriting out;
  out.obstruction_bound = options.max_nodes;
  for (const data::Instance& collapsed : reduced.CollapsedTemplates()) {
    RewritabilityCounters::Get().templates.Add(1);
    auto obstructions = csp::TreeObstructions(collapsed, options);
    if (!obstructions.ok()) return obstructions.status();
    RewritabilityCounters::Get().obstructions.Add(obstructions->size());
    fo::UnionOfCq conjunct(omq.data_schema(), omq.arity());
    for (const data::Instance& tree : *obstructions) {
      conjunct.AddDisjunct(
          ObstructionToCq(tree, omq.data_schema(), omq.arity()));
    }
    out.conjuncts.push_back(std::move(conjunct));
  }
  return out;
}

base::Result<std::vector<std::vector<data::ConstId>>>
DatalogRewriting::Evaluate(const data::Instance& instance) const {
  std::vector<std::vector<data::ConstId>> out;
  const std::vector<data::ConstId> adom = instance.ActiveDomain();
  if (arity > 0 && adom.empty()) return out;

  // Candidate tuples: adom^arity (the 0-ary case is the single empty
  // tuple).
  std::vector<std::vector<data::ConstId>> candidates;
  if (arity == 0) {
    candidates.push_back({});
  } else {
    for (data::ConstId c : adom) candidates.push_back({c});
  }
  for (const auto& tuple : candidates) {
    data::Instance extended = instance.ReductTo(collapsed_schema);
    for (int i = 0; i < arity; ++i) {
      auto mark =
          collapsed_schema.FindRelation("Mark" + std::to_string(i + 1));
      OBDA_CHECK(mark.has_value());
      extended.AddFact(*mark, {tuple[i]});
    }
    bool all_refute = true;
    for (std::size_t p = 0; p < programs.size(); ++p) {
      RewritabilityCounters::Get().oracle_calls.Add(1);
      bool refuted;
      if (width_one_complete[p]) {
        auto result = ddlog::EvaluateDatalog(programs[p], extended);
        if (!result.ok()) return result.status();
        refuted = result->inconsistent || !result->goal_tuples.empty();
      } else {
        // (2,3)-consistency: complete for every bounded-width template.
        refuted = csp::PairwiseConsistencyRefutes(extended,
                                                  template_cores[p]);
      }
      if (!refuted) {
        all_refute = false;
        break;
      }
    }
    if (all_refute) out.push_back(tuple);
  }
  std::sort(out.begin(), out.end());
  return out;
}

base::Result<DatalogRewriting> ExtractDatalogRewriting(
    const OntologyMediatedQuery& omq, int max_template_elements) {
  obs::ScopedTimer timer(RewritabilityCounters::Get().extract_datalog);
  obs::TraceSpan span("rewritability.extract_datalog");
  auto csp_query = TimedCompile(omq);
  if (!csp_query.ok()) return csp_query.status();
  csp::CoCspQuery reduced = csp_query->ReduceToIncomparable();
  DatalogRewriting out;
  out.arity = omq.arity();
  bool first = true;
  for (const data::Instance& collapsed : reduced.CollapsedTemplates()) {
    RewritabilityCounters::Get().templates.Add(1);
    if (first) {
      out.collapsed_schema = collapsed.schema();
      first = false;
    }
    // Shrink to the core first: canonical programs grow as 2^|dom|.
    data::Instance core = data::CoreOf(collapsed);
    auto program = csp::CanonicalArcConsistencyProgram(
        core, max_template_elements);
    if (!program.ok()) return program.status();
    out.programs.push_back(std::move(*program));
    auto width_one = csp::HasTreeDuality(core);
    if (!width_one.ok()) return width_one.status();
    out.width_one_complete.push_back(*width_one);
    out.template_cores.push_back(std::move(core));
  }
  if (first) {
    // No templates: inconsistent ontology; collapsed schema is still
    // needed for Evaluate.
    data::Schema schema = omq.data_schema();
    for (int i = 0; i < omq.arity(); ++i) {
      schema.AddRelation("Mark" + std::to_string(i + 1), 1);
    }
    out.collapsed_schema = schema;
  }
  return out;
}

}  // namespace obda::core
