#ifndef OBDA_CORE_REWRITABILITY_H_
#define OBDA_CORE_REWRITABILITY_H_

#include <vector>

#include "base/status.h"
#include "core/omq.h"
#include "csp/obstruction.h"
#include "ddlog/program.h"
#include "fo/cq.h"

namespace obda::core {

/// Decides FO-rewritability of an AQ/BAQ ontology-mediated query
/// (paper Thm 5.16): compile to a generalized marked coCSP (Thm 4.6),
/// reduce to homomorphically incomparable templates, collapse marks, and
/// run the Larose–Loten–Tardif test per template (Thm 5.15 / Prop 5.11).
/// `max_template_elements` caps the exponential template construction
/// (kResourceExhausted beyond it — the serving planner's PREPARE budget).
base::Result<bool> IsFoRewritable(const OntologyMediatedQuery& omq,
                                  int max_template_elements = 1024);

/// Decides datalog-rewritability analogously via the bounded-width (WNU)
/// test (paper Thm 5.16 / 5.10). Same template budget semantics as
/// IsFoRewritable.
base::Result<bool> IsDatalogRewritable(const OntologyMediatedQuery& omq,
                                       int max_template_elements = 1024);

/// An extracted FO-rewriting (paper §5.3): a conjunction of UCQ-negations
/// — d̄ is a certain answer iff for EVERY template some obstruction tree
/// maps into (D, d̄). Each conjunct is materialized as a UCQ over the
/// data schema whose disjuncts are the obstruction trees (the marked
/// element becoming the answer variable). Evaluation is first-order (no
/// recursion); completeness is relative to the obstruction-size bound.
struct FoRewriting {
  /// One UCQ per template; a tuple is an answer iff it satisfies all.
  std::vector<fo::UnionOfCq> conjuncts;
  /// Obstruction enumeration bound used (completeness caveat).
  int obstruction_bound = 0;

  /// Evaluates the rewriting directly on an instance (intersection of
  /// the conjunct UCQ answers; for arity 0, of Boolean values).
  std::vector<std::vector<data::ConstId>> Evaluate(
      const data::Instance& instance) const;

  /// Same, but against a pre-compiled support index — the serving hot
  /// path, which caches one data::CompiledTarget per snapshot so repeated
  /// executions skip the index build entirely.
  std::vector<std::vector<data::ConstId>> Evaluate(
      const data::CompiledTarget& target) const;
};

/// Extracts an FO-rewriting for an FO-rewritable AQ/BAQ OMQ by
/// enumerating critical tree obstructions of every collapsed template
/// (paper §5.3: "the union of all CQs Aq, A ∈ G, is an FO-rewriting").
base::Result<FoRewriting> ExtractFoRewriting(
    const OntologyMediatedQuery& omq,
    const csp::ObstructionOptions& options = csp::ObstructionOptions());

/// An extracted datalog-rewriting: one canonical arc-consistency program
/// per collapsed template (Feder–Vardi canonical datalog, paper §5.3).
/// Sound for every template; complete when each collapsed template has
/// tree duality (width 1) — in particular whenever the OMQ is
/// FO-rewritable. Evaluation is polynomial time.
struct DatalogRewriting {
  int arity = 0;
  /// Canonical program per template, over the mark-collapsed schema.
  std::vector<ddlog::Program> programs;
  /// The collapsed template core each program was built for.
  std::vector<data::Instance> template_cores;
  /// Per template: the canonical width-1 program is complete iff the
  /// template has tree duality (Feder–Vardi); otherwise Evaluate falls
  /// back to (2,3)-consistency, which Barto–Kozik guarantees complete
  /// for every datalog-rewritable OMQ.
  std::vector<bool> width_one_complete;
  data::Schema collapsed_schema;

  /// Evaluates by running, per candidate tuple (marks injected as
  /// Mark1.. facts), the canonical program where complete and the
  /// (2,3)-consistency procedure otherwise. Polynomial time either way.
  base::Result<std::vector<std::vector<data::ConstId>>> Evaluate(
      const data::Instance& instance) const;
};

/// Builds the canonical-datalog rewriting of an AQ/BAQ OMQ.
base::Result<DatalogRewriting> ExtractDatalogRewriting(
    const OntologyMediatedQuery& omq, int max_template_elements = 6);

}  // namespace obda::core

#endif  // OBDA_CORE_REWRITABILITY_H_
