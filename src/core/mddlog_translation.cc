#include "core/mddlog_translation.h"

#include <string>
#include <vector>

#include "base/check.h"
#include "dl/reasoner.h"

namespace obda::core {

base::Result<ddlog::Program> CompileAqToMddlog(
    const OntologyMediatedQuery& omq) {
  if (!omq.ontology().functional_roles().empty()) {
    return base::UnimplementedError(
        "functional roles are not supported (DESIGN.md §5.5)");
  }
  auto aq = omq.AtomicQueryConcept();
  auto baq = omq.BooleanAtomicQueryConcept();
  if (!aq.has_value() && !baq.has_value()) {
    return base::InvalidArgumentError(
        "CompileAqToMddlog requires an atomic or Boolean atomic query");
  }
  const std::string concept_name = aq.has_value() ? *aq : *baq;

  dl::Ontology ontology = omq.ontology();
  if (baq.has_value()) {
    ontology.AddInclusion(dl::Concept::Name(concept_name),
                          dl::Concept::Bottom());
  }
  std::vector<dl::Concept> seeds;
  seeds.push_back(dl::Concept::Name(concept_name));
  const data::Schema& schema = omq.data_schema();
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    if (schema.Arity(r) == 1) {
      seeds.push_back(dl::Concept::Name(schema.RelationName(r)));
    }
  }
  auto reasoner = dl::TypeReasoner::Create(ontology, seeds);
  if (!reasoner.ok()) return reasoner.status();

  ddlog::Program program(schema);
  const int num_types = static_cast<int>(reasoner->NumSurvivingTypes());
  std::vector<ddlog::PredId> type_pred(num_types);
  for (int t = 0; t < num_types; ++t) {
    type_pred[t] = program.AddIdbPredicate("T" + std::to_string(t), 1);
  }
  ddlog::PredId goal =
      program.AddIdbPredicate("goal", baq.has_value() ? 0 : 1);
  program.SetGoal(goal);
  ddlog::PredId adom = program.EnsureAdom();

  auto add_rule = [&program](std::vector<ddlog::Atom> head,
                             std::vector<ddlog::Atom> body) {
    ddlog::Rule rule;
    rule.head = std::move(head);
    rule.body = std::move(body);
    OBDA_CHECK(program.AddRule(std::move(rule)).ok());
  };

  // Guess a type per element:  T_0(x) ∨ ... ∨ T_k(x) ← adom(x).
  // (With an empty type space the disjunction is the empty head ⊥ ←
  // adom(x): an inconsistent ontology makes every nonempty instance
  // inconsistent.)
  {
    std::vector<ddlog::Atom> head;
    for (int t = 0; t < num_types; ++t) {
      head.push_back(ddlog::Atom{type_pred[t], {0}});
    }
    add_rule(std::move(head), {ddlog::Atom{adom, {0}}});
  }

  // Local clashes: ⊥ ← A(x), T(x) when A ∉ τ (non-realizable diagrams
  // A(x) ∧ t(x), proof of Thm 3.4).
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    if (schema.Arity(r) != 1) continue;
    dl::Concept name = dl::Concept::Name(schema.RelationName(r));
    for (int t = 0; t < num_types; ++t) {
      if (!reasoner->TypeContains(t, name)) {
        add_rule({}, {ddlog::Atom{r, {0}}, ddlog::Atom{type_pred[t], {0}}});
      }
    }
  }

  // Edge clashes: ⊥ ← R(x,y), T1(x), T2(y) for incompatible pairs
  // (diagrams t1(x) ∧ R(x,y) ∧ t2(y)).
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    if (schema.Arity(r) != 2) continue;
    dl::Role role = dl::Role::Named(schema.RelationName(r));
    for (int t1 = 0; t1 < num_types; ++t1) {
      for (int t2 = 0; t2 < num_types; ++t2) {
        if (!reasoner->EdgeCompatible(t1, t2, role)) {
          add_rule({}, {ddlog::Atom{r, {0, 1}},
                        ddlog::Atom{type_pred[t1], {0}},
                        ddlog::Atom{type_pred[t2], {1}}});
        }
      }
    }
  }

  // Cross-branch clashes (only with the universal role; these are the
  // disconnected diagrams t1(x) ∧ t2(y) of Thm 3.12).
  if (reasoner->NumBranches() > 1) {
    for (int t1 = 0; t1 < num_types; ++t1) {
      for (int t2 = t1 + 1; t2 < num_types; ++t2) {
        if (reasoner->BranchOf(t1) != reasoner->BranchOf(t2)) {
          add_rule({}, {ddlog::Atom{type_pred[t1], {0}},
                        ddlog::Atom{type_pred[t2], {1}}});
        }
      }
    }
  }

  // Goal rules (AQ only; the BAQ program encodes certainty as guess
  // unsatisfiability — see header).
  if (aq.has_value()) {
    dl::Concept a0 = dl::Concept::Name(concept_name);
    for (int t = 0; t < num_types; ++t) {
      if (reasoner->TypeContains(t, a0)) {
        add_rule({ddlog::Atom{goal, {0}}},
                 {ddlog::Atom{type_pred[t], {0}}});
      }
    }
  }
  return program;
}

base::Result<OntologyMediatedQuery> MddlogToOmq(
    const ddlog::Program& program) {
  OBDA_RETURN_IF_ERROR(program.Validate());
  if (!program.IsMonadic()) {
    return base::InvalidArgumentError(
        "Thm 3.3(2) requires a monadic program");
  }
  if (!program.edb_schema().IsBinary()) {
    return base::InvalidArgumentError("EDB schema must be binary");
  }
  const int arity = program.QueryArity();

  // Fresh complement names; every non-goal IDB keeps its own name as a
  // concept name.
  dl::Ontology ontology;
  dl::Concept dom = dl::Concept::Name("ObdaDom");
  ontology.AddInclusion(dl::Concept::Top(), dom);
  auto bar_name = [&program](ddlog::PredId p) {
    return "Not_" + program.PredicateName(p);
  };
  for (ddlog::PredId p = static_cast<ddlog::PredId>(program.NumEdb());
       p < program.NumPredicates(); ++p) {
    if (p == program.goal()) continue;
    dl::Concept pc = dl::Concept::Name(program.PredicateName(p));
    dl::Concept pb = dl::Concept::Name(bar_name(p));
    ontology.AddInclusion(dl::Concept::Top(), dl::Concept::Or(pc, pb));
    ontology.AddInclusion(dl::Concept::And(pc, pb), dl::Concept::Bottom());
  }

  auto query_schema = QuerySchema(program.edb_schema(), ontology);
  if (!query_schema.ok()) return query_schema.status();

  fo::UnionOfCq query(*query_schema, arity);

  auto rel_of = [&](const std::string& name) {
    auto id = query_schema->FindRelation(name);
    OBDA_CHECK(id.has_value());
    return *id;
  };

  for (const ddlog::Rule& rule : program.rules()) {
    const bool is_goal_rule =
        rule.head.size() == 1 && rule.head[0].pred == program.goal();
    if (is_goal_rule) {
      // Type (i): the goal-rule body as a CQ, answer variables = the head
      // variables of goal.
      const std::vector<ddlog::VarId>& head_vars = rule.head[0].vars;
      // Repeated head variables would need equality atoms; unsupported.
      std::vector<ddlog::VarId> sorted = head_vars;
      std::sort(sorted.begin(), sorted.end());
      if (std::adjacent_find(sorted.begin(), sorted.end()) !=
          sorted.end()) {
        return base::UnimplementedError(
            "goal rules with repeated head variables require equality "
            "atoms (handled in the MMSNP layer)");
      }
      fo::ConjunctiveQuery cq(*query_schema, arity);
      std::vector<fo::QVar> var_map(static_cast<std::size_t>(rule.NumVars()),
                                    -1);
      for (int i = 0; i < arity; ++i) var_map[head_vars[i]] = i;
      for (ddlog::VarId v = 0; v < rule.NumVars(); ++v) {
        if (var_map[v] < 0) var_map[v] = cq.AddVariable();
      }
      for (const ddlog::Atom& a : rule.body) {
        std::vector<fo::QVar> vars;
        for (ddlog::VarId v : a.vars) vars.push_back(var_map[v]);
        cq.AddAtom(rel_of(program.PredicateName(a.pred)), vars);
      }
      query.AddDisjunct(std::move(cq));
    } else {
      // Type (ii): rule violation — body plus barred heads plus Dom atoms
      // on fresh answer variables.
      fo::ConjunctiveQuery cq(*query_schema, arity);
      std::vector<fo::QVar> var_map(static_cast<std::size_t>(rule.NumVars()),
                                    -1);
      for (ddlog::VarId v = 0; v < rule.NumVars(); ++v) {
        var_map[v] = cq.AddVariable();
      }
      for (const ddlog::Atom& a : rule.body) {
        std::vector<fo::QVar> vars;
        for (ddlog::VarId v : a.vars) vars.push_back(var_map[v]);
        cq.AddAtom(rel_of(program.PredicateName(a.pred)), vars);
      }
      for (const ddlog::Atom& a : rule.head) {
        cq.AddAtom(rel_of(bar_name(a.pred)), {var_map[a.vars[0]]});
      }
      for (int i = 0; i < arity; ++i) {
        cq.AddAtom(rel_of("ObdaDom"), {i});
      }
      query.AddDisjunct(std::move(cq));
    }
  }
  return OntologyMediatedQuery::Create(program.edb_schema(),
                                       std::move(ontology),
                                       std::move(query));
}

base::Result<OntologyMediatedQuery> SimpleMddlogToOmq(
    const ddlog::Program& program) {
  OBDA_RETURN_IF_ERROR(program.Validate());
  if (!program.IsMonadic() || !program.IsSimple()) {
    return base::InvalidArgumentError(
        "Thm 3.4(2) requires a simple monadic program");
  }
  if (!program.edb_schema().IsBinary()) {
    return base::InvalidArgumentError("EDB schema must be binary");
  }
  const int goal_arity = program.QueryArity();
  if (goal_arity > 1) {
    return base::InvalidArgumentError("goal must be unary or Boolean");
  }

  dl::Ontology ontology;
  dl::Concept goal_concept = dl::Concept::Name("goal");
  ontology.AddInclusion(goal_concept, dl::Concept::Top());

  for (const ddlog::Rule& rule : program.rules()) {
    const int num_vars = rule.NumVars();
    const bool boolean_goal_head = rule.head.size() == 1 &&
                                   rule.head[0].pred == program.goal() &&
                                   goal_arity == 0;
    // Per-variable conjuncts.
    std::vector<std::vector<dl::Concept>> conjuncts(
        static_cast<std::size_t>(num_vars));
    const ddlog::Atom* edb_binary = nullptr;
    for (const ddlog::Atom& a : rule.body) {
      if (program.IsEdb(a.pred)) {
        if (a.vars.size() == 2) {
          OBDA_CHECK(edb_binary == nullptr);  // IsSimple
          edb_binary = &a;
        } else {
          conjuncts[a.vars[0]].push_back(
              dl::Concept::Name(program.PredicateName(a.pred)));
        }
      } else {
        conjuncts[a.vars[0]].push_back(
            dl::Concept::Name(program.PredicateName(a.pred)));
      }
    }
    if (!boolean_goal_head) {
      for (const ddlog::Atom& a : rule.head) {
        conjuncts[a.vars[0]].push_back(dl::Concept::Not(
            dl::Concept::Name(program.PredicateName(a.pred))));
      }
    }
    auto concept_of = [&conjuncts](int v) {
      return dl::Concept::AndAll(conjuncts[static_cast<std::size_t>(v)]);
    };
    std::vector<bool> used(static_cast<std::size_t>(num_vars), false);
    dl::Concept lhs;
    if (edb_binary != nullptr) {
      int u = edb_binary->vars[0];
      int v = edb_binary->vars[1];
      lhs = dl::Concept::And(
          concept_of(u),
          dl::Concept::Exists(
              dl::Role::Named(program.PredicateName(edb_binary->pred)),
              concept_of(v)));
      used[u] = used[v] = true;
    } else {
      OBDA_CHECK_GT(num_vars, 0);
      lhs = concept_of(0);
      used[0] = true;
    }
    // Remaining variables (disconnected parts) via the universal role
    // (Thm 3.12(2)).
    for (int w = 0; w < num_vars; ++w) {
      if (used[w]) continue;
      lhs = dl::Concept::And(
          lhs, dl::Concept::Exists(dl::Role::Universal(), concept_of(w)));
    }
    ontology.AddInclusion(lhs, boolean_goal_head ? goal_concept
                                                 : dl::Concept::Bottom());
  }

  if (goal_arity == 0) {
    return OntologyMediatedQuery::WithBooleanAtomicQuery(
        program.edb_schema(), std::move(ontology), "goal");
  }
  return OntologyMediatedQuery::WithAtomicQuery(program.edb_schema(),
                                                std::move(ontology),
                                                "goal");
}

}  // namespace obda::core
