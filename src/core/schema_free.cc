#include "core/schema_free.h"

#include "base/check.h"

namespace obda::core {

base::Result<OntologyMediatedQuery> CspToSchemaFreeOmq(
    const data::Instance& b) {
  const data::Schema& schema = b.schema();
  if (!schema.IsBinary()) {
    return base::InvalidArgumentError("requires a binary schema");
  }
  const std::size_t n = b.UniverseSize();
  dl::Ontology ontology;
  dl::Concept goal = dl::Concept::Name("Goal");
  // H_d = ∀R_d.A_d: freely switchable guards (Fact 1, proof of Thm 6.1).
  auto h_of = [&b](data::ConstId d) {
    const std::string& name = b.ConstantName(d);
    return dl::Concept::Forall(dl::Role::Named("Pick_" + name),
                               dl::Concept::Name("Chose_" + name));
  };
  {
    std::vector<dl::Concept> all;
    for (data::ConstId d = 0; d < n; ++d) all.push_back(h_of(d));
    ontology.AddInclusion(dl::Concept::Top(), dl::Concept::OrAll(all));
  }
  for (data::ConstId d = 0; d < n; ++d) {
    for (data::ConstId e = d + 1; e < n; ++e) {
      ontology.AddInclusion(dl::Concept::And(h_of(d), h_of(e)), goal);
    }
  }
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    if (schema.Arity(r) == 1) {
      dl::Concept name = dl::Concept::Name(schema.RelationName(r));
      for (data::ConstId d = 0; d < n; ++d) {
        if (!b.HasFact(r, {d})) {
          ontology.AddInclusion(dl::Concept::And(h_of(d), name), goal);
        }
      }
    } else if (schema.Arity(r) == 2) {
      dl::Role role = dl::Role::Named(schema.RelationName(r));
      for (data::ConstId d = 0; d < n; ++d) {
        for (data::ConstId e = 0; e < n; ++e) {
          if (!b.HasFact(r, {d, e})) {
            ontology.AddInclusion(
                dl::Concept::And(h_of(d),
                                 dl::Concept::Exists(role, h_of(e))),
                goal);
          }
        }
      }
    }
  }
  // Schema-free: the data schema is the FULL signature.
  auto full = QuerySchema(schema, ontology);
  if (!full.ok()) return full.status();
  return OntologyMediatedQuery::WithBooleanAtomicQuery(*full, ontology,
                                                       "Goal");
}

base::Result<OntologyMediatedQuery> AddEmptinessAxiomsForNonSchemaSymbols(
    const OntologyMediatedQuery& q1, const OntologyMediatedQuery& q2) {
  // Union signature as the new common data schema.
  auto s1 = QuerySchema(q1.data_schema(), q1.ontology());
  if (!s1.ok()) return s1.status();
  auto s2 = QuerySchema(q2.data_schema(), q2.ontology());
  if (!s2.ok()) return s2.status();
  auto union_schema = data::Schema::Union(*s1, *s2);
  if (!union_schema.ok()) return union_schema.status();

  dl::Ontology ontology = q2.ontology();
  // Emptiness sentences for q1's non-schema symbols (Thm 6.2: L "can
  // express emptiness").
  for (const std::string& a : q1.ontology().ConceptNames()) {
    if (q1.data_schema().FindRelation(a).has_value()) continue;
    ontology.AddInclusion(dl::Concept::Name(a), dl::Concept::Bottom());
  }
  for (const std::string& r : q1.ontology().RoleNames()) {
    if (q1.data_schema().FindRelation(r).has_value()) continue;
    ontology.AddInclusion(
        dl::Concept::Top(),
        dl::Concept::Forall(dl::Role::Named(r), dl::Concept::Bottom()));
    ontology.AddInclusion(
        dl::Concept::Exists(dl::Role::Named(r), dl::Concept::Top()),
        dl::Concept::Bottom());
  }

  // Rebase the query of q2 onto the union schema (atoms match by name).
  auto query_schema = QuerySchema(*union_schema, ontology);
  if (!query_schema.ok()) return query_schema.status();
  fo::UnionOfCq rebased(*query_schema, q2.arity());
  for (const fo::ConjunctiveQuery& disjunct : q2.query().disjuncts()) {
    fo::ConjunctiveQuery cq(*query_schema, disjunct.arity());
    while (cq.num_vars() < disjunct.num_vars()) cq.AddVariable();
    for (const fo::QueryAtom& a : disjunct.atoms()) {
      auto id = query_schema->FindRelation(
          disjunct.schema().RelationName(a.rel));
      OBDA_CHECK(id.has_value());
      cq.AddAtom(*id, a.vars);
    }
    rebased.AddDisjunct(std::move(cq));
  }
  return OntologyMediatedQuery::Create(*union_schema, std::move(ontology),
                                       std::move(rebased));
}

}  // namespace obda::core
