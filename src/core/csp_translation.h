#ifndef OBDA_CORE_CSP_TRANSLATION_H_
#define OBDA_CORE_CSP_TRANSLATION_H_

#include "base/status.h"
#include "core/omq.h"
#include "csp/query.h"

namespace obda::core {

/// Compiles an OMQ whose actual query is an atomic query A0(x) or a
/// Boolean atomic query ∃x A0(x) into an equivalent (generalized, marked)
/// coCSP query (paper Thm 4.6).
///
/// Construction: the type-elimination reasoner is run over O seeded with
/// every data-schema concept name (and A0). Each branch (U-pattern)
/// yields a template whose elements are the branch's surviving types,
/// with A(τ) for every schema concept name A ∈ τ and R(τ1, τ2) for every
/// schema role with EdgeCompatible(τ1, τ2, R). Then:
///  - AQ case: one marked template (B_branch, τ) per type τ with A0 ∉ τ
///    (paper Thm 4.6(1)/(2)); d̄ is a certain answer iff no marked
///    homomorphism exists.
///  - BAQ case: the reasoner runs over O ∪ {A0 ⊑ ⊥} (no element — named
///    or anonymous — may satisfy A0) and each branch yields one unmarked
///    template (paper Thm 4.6(3)/(4)).
///
/// The template construction is exponential in |O| (paper: "can be
/// constructed in exponential time"). Functional roles are rejected
/// (DESIGN.md §5.5). Transitive roles, role hierarchies, inverse roles
/// and the universal role are handled natively by the reasoner.
/// `max_template_elements` bounds the per-branch type count (the
/// template stores O(elements²) role facts); exceeding it returns
/// ResourceExhausted.
base::Result<csp::CoCspQuery> CompileToCsp(const OntologyMediatedQuery& omq,
                                           int max_template_elements = 1024);

/// Certain answers of an AQ/BAQ OMQ via the CSP compilation.
base::Result<std::vector<std::vector<data::ConstId>>> CertainAnswersViaCsp(
    const OntologyMediatedQuery& omq, const data::Instance& instance);

/// The inverse direction of Thm 4.6(4): from a template B, an OMQ
/// (S, O, ∃x.Goal(x)) from (ALC, BAQ) equivalent to coCSP(B), following
/// the proof's Π_B program read as ALC axioms (cf. also Thm 6.1). S is
/// B's schema; O uses fresh concept names A_d for the elements of B.
base::Result<OntologyMediatedQuery> CspToOmq(const data::Instance& b);

}  // namespace obda::core

#endif  // OBDA_CORE_CSP_TRANSLATION_H_
