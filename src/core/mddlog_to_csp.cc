#include "core/mddlog_to_csp.h"

#include <set>
#include <string>
#include <vector>

#include "base/check.h"

namespace obda::core {

namespace {

/// A tiny model-checking helper for the singleton/pair instances of the
/// Thm 4.6 proof: facts are given as per-element sets of unary predicate
/// ids plus at most one binary EDB fact (elem0 -> elem1).
struct TinyModel {
  int num_elements = 1;
  /// unary[e] = set of predicates (EDB and IDB) true at element e.
  std::vector<std::set<ddlog::PredId>> unary;
  /// Binary EDB fact rel(0, 1) present?
  bool has_edge = false;
  ddlog::PredId edge_rel = ddlog::kInvalidPred;
};

/// Checks whether the tiny model satisfies every rule of the program
/// (substitutions range over the model's elements).
bool SatisfiesRules(const ddlog::Program& program, const TinyModel& m) {
  for (const ddlog::Rule& rule : program.rules()) {
    const int nv = rule.NumVars();
    std::vector<int> assign(static_cast<std::size_t>(std::max(nv, 1)), 0);
    // Odometer over assignments.
    for (;;) {
      bool body_holds = true;
      for (const ddlog::Atom& a : rule.body) {
        if (a.vars.size() == 1) {
          if (m.unary[assign[a.vars[0]]].count(a.pred) == 0) {
            body_holds = false;
            break;
          }
        } else if (a.vars.size() == 2) {
          // Binary atoms are EDB (monadic program).
          if (!m.has_edge || a.pred != m.edge_rel ||
              assign[a.vars[0]] != 0 || assign[a.vars[1]] != 1) {
            body_holds = false;
            break;
          }
        } else {
          // 0-ary body atoms never appear in our programs.
          body_holds = false;
          break;
        }
      }
      if (body_holds) {
        bool head_holds = false;
        for (const ddlog::Atom& h : rule.head) {
          if (h.vars.empty()) {
            // Boolean goal head: treat goal as absent (we check
            // goal-avoiding models).
            continue;
          }
          if (m.unary[assign[h.vars[0]]].count(h.pred) > 0) {
            head_holds = true;
            break;
          }
        }
        if (!head_holds) return false;
      }
      int pos = nv - 1;
      while (pos >= 0 && ++assign[pos] == m.num_elements) {
        assign[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
  }
  return true;
}

}  // namespace

base::Result<csp::CoCspQuery> SimpleMddlogToCsp(
    const ddlog::Program& program) {
  OBDA_RETURN_IF_ERROR(program.Validate());
  if (!program.IsMonadic() || !program.IsSimple() ||
      !program.IsConnected()) {
    return base::InvalidArgumentError(
        "Thm 4.6 direct construction requires a connected simple monadic "
        "program (route disconnected programs through SimpleMddlogToOmq)");
  }
  const int goal_arity = program.QueryArity();
  if (goal_arity > 1) {
    return base::InvalidArgumentError("goal must be unary or Boolean");
  }

  // The type alphabet: unary EDBs and non-goal unary IDBs, plus goal when
  // it is unary.
  std::vector<ddlog::PredId> alphabet;
  std::vector<ddlog::PredId> unary_edb;
  for (ddlog::PredId p = 0; p < program.NumPredicates(); ++p) {
    const bool unary = program.Arity(p) == 1;
    if (program.IsEdb(p)) {
      if (unary) {
        alphabet.push_back(p);
        unary_edb.push_back(p);
      }
    } else if (unary) {
      alphabet.push_back(p);
    }
  }
  if (alphabet.size() > 20) {
    return base::ResourceExhaustedError("type alphabet too large");
  }

  // Realizable types: singleton models.
  std::vector<std::set<ddlog::PredId>> types;
  const std::uint32_t limit = 1u << alphabet.size();
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    TinyModel m;
    m.num_elements = 1;
    m.unary.resize(1);
    for (std::size_t i = 0; i < alphabet.size(); ++i) {
      if ((mask >> i) & 1u) m.unary[0].insert(alphabet[i]);
    }
    // Point 4 (Boolean): goal rules treat goal() as absent, so types
    // whose singleton fires a goal rule are rejected — exactly the
    // proof's "realizable and goal-free" set. Point 2 (unary): goal is
    // part of the alphabet and all realizable types become elements.
    if (SatisfiesRules(program, m)) types.push_back(m.unary[0]);
  }

  // Build B_T.
  csp::CoCspQuery out(program.edb_schema(), goal_arity);
  data::Instance b(program.edb_schema());
  std::vector<data::ConstId> element(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    element[i] = b.AddConstant("t" + std::to_string(i));
  }
  for (std::size_t i = 0; i < types.size(); ++i) {
    for (ddlog::PredId p : unary_edb) {
      if (types[i].count(p) > 0) {
        b.AddFact(static_cast<data::RelationId>(p), {element[i]});
      }
    }
  }
  // Binary EDB relations: R-coherent pairs via two-element models.
  for (data::RelationId r = 0; r < program.edb_schema().NumRelations();
       ++r) {
    if (program.edb_schema().Arity(r) != 2) continue;
    for (std::size_t i = 0; i < types.size(); ++i) {
      for (std::size_t j = 0; j < types.size(); ++j) {
        TinyModel m;
        m.num_elements = 2;
        m.unary = {types[i], types[j]};
        m.has_edge = true;
        m.edge_rel = r;
        if (SatisfiesRules(program, m)) {
          b.AddFact(r, {element[i], element[j]});
        }
      }
    }
  }

  if (goal_arity == 0) {
    out.AddTemplate(data::MarkedInstance{std::move(b), {}});
  } else {
    for (std::size_t i = 0; i < types.size(); ++i) {
      if (types[i].count(program.goal()) > 0) continue;
      out.AddTemplate(data::MarkedInstance{b, {element[i]}});
    }
  }
  return out;
}

}  // namespace obda::core
