#include "core/consistency.h"

#include "core/csp_translation.h"
#include "core/omq.h"

namespace obda::core {

base::Result<bool> IsConsistent(const dl::Ontology& ontology,
                                const data::Instance& instance,
                                int max_template_elements) {
  // Reuse the BAQ compilation with a fresh, never-derivable marker: the
  // certain answer of ∃x.Marker(x) is "true" exactly on inconsistent
  // instances.
  dl::Ontology extended = ontology;
  dl::Concept marker = dl::Concept::Name("ObdaConsistencyMarker");
  extended.AddInclusion(marker, dl::Concept::Top());
  auto omq = OntologyMediatedQuery::WithBooleanAtomicQuery(
      instance.schema(), extended, "ObdaConsistencyMarker");
  if (!omq.ok()) return omq.status();
  auto csp = CompileToCsp(*omq, max_template_elements);
  if (!csp.ok()) return csp.status();
  return !csp->IsAnswer(instance, {});
}

}  // namespace obda::core
