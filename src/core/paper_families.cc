#include "core/paper_families.h"

#include "base/check.h"
#include "dl/parser.h"

namespace obda::core {

data::Instance CountingInstance(int k) {
  OBDA_CHECK_GE(k, 1);
  data::Schema s;
  s.AddRelation("R", 2);
  s.AddRelation("Y0", 1);
  s.AddRelation("Y1", 1);
  s.AddRelation("Y2", 1);
  data::Instance d(s);
  std::vector<data::ConstId> a;
  for (int i = 0; i <= 2 * k; ++i) {
    a.push_back(d.AddConstant("a" + std::to_string(i)));
  }
  for (int i = 1; i < 2 * k; i += 2) {
    d.AddFact(*s.FindRelation("R"), {a[i], a[i - 1]});
    d.AddFact(*s.FindRelation("R"), {a[i], a[i + 1]});
  }
  for (int i = 0; i <= 2 * k; i += 2) {
    int j = (i / 2) % 3;
    d.AddFact(*s.FindRelation("Y" + std::to_string(j)), {a[i]});
  }
  return d;
}

base::Result<OntologyMediatedQuery> SuccinctnessFamilyOmq(int i) {
  OBDA_CHECK_GE(i, 1);
  data::Schema s;
  for (int j = 1; j <= i; ++j) {
    s.AddRelation("A" + std::to_string(j), 1);
  }
  s.AddRelation("R", 2);
  dl::Ontology o;
  std::vector<dl::Concept> all;
  for (int j = 1; j <= i; ++j) {
    all.push_back(dl::Concept::Name("A" + std::to_string(j)));
  }
  o.AddInclusion(
      dl::Concept::Exists(dl::Role::Named("R"), dl::Concept::AndAll(all)),
      dl::Concept::Name("Goal"));
  return OntologyMediatedQuery::WithAtomicQuery(s, o, "Goal");
}

namespace {

data::Schema Thm310Schema() {
  data::Schema s;
  s.AddRelation("R", 2);
  s.AddRelation("S", 2);
  return s;
}

}  // namespace

data::Instance Thm310YesInstance(int m) {
  data::Schema s = Thm310Schema();
  data::Instance d(s);
  data::ConstId e = d.AddConstant("e");
  data::ConstId f = d.AddConstant("f");
  std::vector<data::ConstId> as;
  std::vector<data::ConstId> bs;
  for (int i = 1; i <= m; ++i) {
    as.push_back(d.AddConstant("a" + std::to_string(i)));
    bs.push_back(d.AddConstant("b" + std::to_string(i)));
  }
  auto r = *s.FindRelation("R");
  auto srel = *s.FindRelation("S");
  d.AddFact(r, {e, as[0]});
  d.AddFact(srel, {e, bs[0]});
  for (int i = 0; i + 1 < m; ++i) {
    d.AddFact(r, {as[i], as[i + 1]});
    d.AddFact(srel, {bs[i], bs[i + 1]});
  }
  d.AddFact(r, {as[m - 1], f});
  d.AddFact(srel, {bs[m - 1], f});
  return d;
}

data::Instance Thm310NoInstance(int m, int m_prime) {
  data::Schema s = Thm310Schema();
  data::Instance d(s);
  auto r = *s.FindRelation("R");
  auto srel = *s.FindRelation("S");
  std::vector<data::ConstId> e(m_prime);
  std::vector<data::ConstId> f(m_prime);
  for (int i = 0; i < m_prime; ++i) {
    e[i] = d.AddConstant("e" + std::to_string(i + 1));
    f[i] = d.AddConstant("f" + std::to_string(i + 1));
  }
  // R-columns: e^i -> a^i_1 -> ... -> a^i_m -> f^i.
  for (int i = 0; i < m_prime; ++i) {
    std::vector<data::ConstId> col;
    for (int j = 1; j <= m; ++j) {
      col.push_back(d.AddConstant("a" + std::to_string(i + 1) + "_" +
                                  std::to_string(j)));
    }
    d.AddFact(r, {e[i], col[0]});
    for (int j = 0; j + 1 < m; ++j) d.AddFact(r, {col[j], col[j + 1]});
    d.AddFact(r, {col[m - 1], f[i]});
  }
  // S-paths from e^i to f^j only for j < i.
  for (int i = 0; i < m_prime; ++i) {
    for (int j = 0; j < i; ++j) {
      std::vector<data::ConstId> path;
      for (int l = 1; l <= m; ++l) {
        path.push_back(d.AddConstant(
            "b" + std::to_string(i + 1) + "_" + std::to_string(j + 1) +
            "_" + std::to_string(l)));
      }
      d.AddFact(srel, {e[i], path[0]});
      for (int l = 0; l + 1 < m; ++l) {
        d.AddFact(srel, {path[l], path[l + 1]});
      }
      d.AddFact(srel, {path[m - 1], f[j]});
    }
  }
  return d;
}

base::Result<OntologyMediatedQuery> Thm310Omq() {
  data::Schema s = Thm310Schema();
  auto o = dl::ParseOntology("trans(R)\ntrans(S)");
  if (!o.ok()) return o.status();
  auto qs = QuerySchema(s, *o);
  if (!qs.ok()) return qs.status();
  fo::ConjunctiveQuery cq(*qs, 0);
  fo::QVar x = cq.AddVariable();
  fo::QVar y = cq.AddVariable();
  OBDA_RETURN_IF_ERROR(cq.AddAtomByName("R", {x, y}));
  OBDA_RETURN_IF_ERROR(cq.AddAtomByName("S", {x, y}));
  fo::UnionOfCq q(*qs, 0);
  q.AddDisjunct(cq);
  return OntologyMediatedQuery::Create(s, *o, q);
}

base::Result<OntologyMediatedQuery> AlcfCounterexampleOmq() {
  data::Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto o = dl::ParseOntology("func(R)\nA [= A");
  if (!o.ok()) return o.status();
  return OntologyMediatedQuery::WithAtomicQuery(s, *o, "A");
}

data::Instance AlcfInconsistentInstance() {
  data::Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  data::Instance d(s);
  data::ConstId a = d.AddConstant("a");
  data::ConstId b1 = d.AddConstant("b1");
  data::ConstId b2 = d.AddConstant("b2");
  d.AddFact(*s.FindRelation("R"), {a, b1});
  d.AddFact(*s.FindRelation("R"), {a, b2});
  return d;
}

data::Instance AlcfConsistentImage() {
  data::Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  data::Instance d(s);
  data::ConstId a = d.AddConstant("a");
  data::ConstId b = d.AddConstant("b");
  d.AddFact(*s.FindRelation("R"), {a, b});
  return d;
}

base::Result<OntologyMediatedQuery> ChainOmq(int n) {
  OBDA_CHECK_GE(n, 1);
  data::Schema s;
  s.AddRelation("A0", 1);
  s.AddRelation("R", 2);
  dl::Ontology o;
  for (int i = 0; i < n; ++i) {
    o.AddInclusion(dl::Concept::Name("A" + std::to_string(i)),
                   dl::Concept::Exists(
                       dl::Role::Named("R"),
                       dl::Concept::Name("A" + std::to_string(i + 1))));
  }
  o.AddInclusion(dl::Concept::Name("A" + std::to_string(n)),
                 dl::Concept::Name("Goal"));
  return OntologyMediatedQuery::WithAtomicQuery(s, o, "Goal");
}

}  // namespace obda::core
