#ifndef OBDA_CORE_PAPER_FAMILIES_H_
#define OBDA_CORE_PAPER_FAMILIES_H_

#include "base/status.h"
#include "core/omq.h"
#include "data/instance.h"

namespace obda::core {

/// The counting instance C_k of Fig. 1 (proof of Thm 3.7): an R⁻;R-path
/// of length k — elements a0..a_{2k} with R(ai, ai−1) and R(ai, ai+1)
/// for odd i, and Y_{(i/2 mod 3)}(ai) for even i. Schema
/// {R/2, Y0/1, Y1/1, Y2/1}.
data::Instance CountingInstance(int k);

/// A succinctness family in the spirit of Thm 3.5: Q_i is an (ALC, AQ)
/// OMQ of size polynomial in i whose type space — and therefore any
/// type-based MDDlog translation — has 2^Θ(i) types: the data schema has
/// i independent unary relations A1..Ai, and the ontology derives Goal
/// from their conjunction reached through an R-edge.
base::Result<OntologyMediatedQuery> SuccinctnessFamilyOmq(int i);

/// The instance pair of the (S,UCQ) separation (proof of Thm 3.10):
/// D1 has an R-path and an S-path of length m+1 sharing both endpoints
/// (the transitive-closure query ∃xy R⁺(x,y) ∧ S⁺(x,y) is true);
/// D0 has m' R-columns and S-paths connecting e^i to f^j only for j < i,
/// so no pair is connected by both (query false). Schema {R/2, S/2}.
data::Instance Thm310YesInstance(int m);
data::Instance Thm310NoInstance(int m, int m_prime);

/// The (S,UCQ) ontology of Thm 3.10: O = {trans(R), trans(S)} with
/// q = ∃x,y R(x,y) ∧ S(x,y). Returned as an OMQ over {R/2, S/2}.
base::Result<OntologyMediatedQuery> Thm310Omq();

/// The (ALCF,UCQ) homomorphism-preservation counterexample (Thm 3.10):
/// O = {func(R)}, q = A(x), with D = {R(a,b1), R(a,b2)} mapping into
/// D' = {R(a,b)} while the certain answers do not transport.
base::Result<OntologyMediatedQuery> AlcfCounterexampleOmq();
data::Instance AlcfInconsistentInstance();
data::Instance AlcfConsistentImage();

/// A "chain" ontology family used by the containment/template-size
/// benches: A0 ⊑ ∃R.A1, ..., A_{n-1} ⊑ ∃R.A_n, A_n ⊑ Goal, over the
/// data schema {A0/1, R/2}. Template sizes grow exponentially with n.
base::Result<OntologyMediatedQuery> ChainOmq(int n);

}  // namespace obda::core

#endif  // OBDA_CORE_PAPER_FAMILIES_H_
