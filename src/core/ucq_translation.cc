#include "core/ucq_translation.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "base/check.h"
#include "dl/reasoner.h"
#include "dl/transform.h"
#include "fo/tree.h"

namespace obda::core {

namespace {

/// A node of a rooted tree query: required unary relation names at the
/// node plus required child edge-rooted queries (indices into the
/// compiler's edge-query table).
struct RootedNode {
  std::vector<std::string> unary;
  std::vector<int> children;
};

/// An edge-rooted tree query {S(x,y)} ∪ subtree(y) (a member of tree(q)).
struct EdgeQuery {
  std::string rel;
  RootedNode sub;
};

/// A Boolean tree component of a disjunct.
struct BoolComp {
  RootedNode root;
};

/// A decorated type: reasoner type + flag bitmask. Bit i (< num_edges)
/// is the truth flag of edge query i; bit num_edges + j is the
/// strictly-inside-tree flag of Boolean component j.
struct Decorated {
  dl::TypeId type;
  std::uint32_t mask;
};

class UcqCompiler {
 public:
  explicit UcqCompiler(const OntologyMediatedQuery& omq) : omq_(omq) {}

  base::Result<ddlog::Program> Run() {
    const dl::DlFeatures features = omq_.ontology().Features();
    if (features.inverse_roles) {
      return base::UnimplementedError(
          "eliminate inverse roles first (EliminateInverseRolesInOmq, "
          "Thm 3.6(1))");
    }
    if (features.transitive_roles || features.functional_roles ||
        features.universal_role) {
      return base::UnimplementedError(
          "the UCQ→MDDlog translation supports ALCH (paper Thm 3.3/3.6; "
          "S/F are beyond MDDlog by Thm 3.10, U is supported on the AQ "
          "path only)");
    }

    OBDA_RETURN_IF_ERROR(BuildReasoner());
    OBDA_RETURN_IF_ERROR(AnalyseQuery());
    if (edges_.size() + bools_.size() > 20) {
      return base::ResourceExhaustedError("too many tree-query flags");
    }
    EliminateDecorated();
    return BuildProgram();
  }

 private:
  // --- Reasoner ------------------------------------------------------------

  base::Status BuildReasoner() {
    std::vector<dl::Concept> seeds;
    const data::Schema& qs = omq_.query().schema();
    for (data::RelationId r = 0; r < qs.NumRelations(); ++r) {
      if (qs.Arity(r) == 1) {
        seeds.push_back(dl::Concept::Name(qs.RelationName(r)));
      }
    }
    auto reasoner = dl::TypeReasoner::Create(omq_.ontology(), seeds);
    if (!reasoner.ok()) return reasoner.status();
    reasoner_ = std::make_unique<dl::TypeReasoner>(std::move(*reasoner));
    return base::Status::Ok();
  }

  // --- Query analysis -------------------------------------------------------

  /// Registers the subtree of `cq` rooted at `v` (must be tree-shaped
  /// below v) and returns its node description.
  RootedNode BuildNode(const fo::ConjunctiveQuery& cq, fo::QVar v) {
    RootedNode node;
    for (const fo::QueryAtom& a : cq.atoms()) {
      if (a.vars.size() == 1 && a.vars[0] == v) {
        node.unary.push_back(cq.schema().RelationName(a.rel));
      }
      if (a.vars.size() == 2 && a.vars[0] == v) {
        RootedNode child = BuildNode(cq, a.vars[1]);
        node.children.push_back(
            RegisterEdge(cq.schema().RelationName(a.rel), std::move(child)));
      }
    }
    std::sort(node.unary.begin(), node.unary.end());
    std::sort(node.children.begin(), node.children.end());
    return node;
  }

  static std::string NodeKey(const RootedNode& n) {
    std::string key = "[";
    for (const auto& u : n.unary) key += u + ",";
    key += ";";
    for (int c : n.children) key += std::to_string(c) + ",";
    key += "]";
    return key;
  }

  int RegisterEdge(const std::string& rel, RootedNode sub) {
    std::string key = rel + NodeKey(sub);
    auto it = edge_index_.find(key);
    if (it != edge_index_.end()) return it->second;
    int index = static_cast<int>(edges_.size());
    edges_.push_back(EdgeQuery{rel, std::move(sub)});
    edge_index_.emplace(std::move(key), index);
    return index;
  }

  int RegisterBool(RootedNode root) {
    std::string key = NodeKey(root);
    auto it = bool_index_.find(key);
    if (it != bool_index_.end()) return it->second;
    int index = static_cast<int>(bools_.size());
    bools_.push_back(BoolComp{std::move(root)});
    bool_index_.emplace(std::move(key), index);
    return index;
  }

  /// One goal-rule blueprint: a decomposition of a disjunct.
  struct GoalRuleSpec {
    /// Number of core rule variables.
    int num_core_vars = 0;
    /// Answer tuple: indices into core rule variables.
    std::vector<int> answer;
    /// Core EDB binary atoms (schema relation, u, v).
    std::vector<std::tuple<data::RelationId, int, int>> edb_atoms;
    /// Required unary names per core variable.
    std::vector<std::pair<int, std::string>> unary_atoms;
    /// Required edge-query flags per core variable.
    std::vector<std::pair<int, int>> flag_atoms;
    /// Boolean components witnessed by fresh variables.
    std::vector<int> bool_comps;
  };

  /// Enumerates the decompositions of every disjunct into core + hanging
  /// tree parts, registering edge queries and Boolean components.
  base::Status AnalyseQuery() {
    for (const fo::ConjunctiveQuery& disjunct : omq_.query().disjuncts()) {
      const int nv = disjunct.num_vars();
      const int arity = disjunct.arity();
      if (nv - arity > 14) {
        return base::ResourceExhaustedError("too many query variables");
      }
      const std::uint32_t limit = 1u << (nv - arity);
      for (std::uint32_t pick = 0; pick < limit; ++pick) {
        // Core variable set: answer vars plus picked existentials.
        std::vector<bool> core(static_cast<std::size_t>(nv), false);
        for (int i = 0; i < arity; ++i) core[i] = true;
        for (int i = 0; i < nv - arity; ++i) {
          if ((pick >> i) & 1u) core[arity + i] = true;
        }
        AnalyseDecomposition(disjunct, core);
      }
    }
    return base::Status::Ok();
  }

  /// Attempts one decomposition; appends a GoalRuleSpec if admissible.
  void AnalyseDecomposition(const fo::ConjunctiveQuery& q,
                            const std::vector<bool>& core) {
    const int nv = q.num_vars();
    // Union-find over non-core variables (component structure).
    std::vector<int> parent(static_cast<std::size_t>(nv));
    for (int i = 0; i < nv; ++i) parent[i] = i;
    std::function<int(int)> find = [&](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (const fo::QueryAtom& a : q.atoms()) {
      if (a.vars.size() == 2 && !core[a.vars[0]] && !core[a.vars[1]]) {
        parent[find(a.vars[0])] = find(a.vars[1]);
      }
    }
    // Cross atoms: R(u,v) with u core, v non-core is fine; the converse
    // direction cannot match a forest model — abandon this decomposition.
    // Also map each non-core component to its attach (core) variables.
    std::map<int, std::set<int>> attach;  // component root -> core vars
    for (const fo::QueryAtom& a : q.atoms()) {
      if (a.vars.size() != 2) continue;
      bool c0 = core[a.vars[0]];
      bool c1 = core[a.vars[1]];
      if (!c0 && c1) return;  // tree-to-core edge: impossible shape
      if (c0 && !c1) attach[find(a.vars[1])].insert(a.vars[0]);
      if (c0 && c1) {
        // Core binary atoms must be data-schema relations: the ontology
        // never forces edges between named elements, so other relations
        // cannot contribute to certain answers.
        const std::string& rel = q.schema().RelationName(a.rel);
        if (!omq_.data_schema().FindRelation(rel).has_value()) return;
      }
    }
    // Unify the attach variables of each component (they co-map to the
    // tree root).
    for (const auto& [comp, vars] : attach) {
      (void)comp;
      int first = *vars.begin();
      for (int v : vars) parent[find(v)] = find(first);
    }
    // Re-find after unification; assign rule variables to core classes.
    std::vector<int> rule_var(static_cast<std::size_t>(nv), -1);
    int num_core_vars = 0;
    for (int v = 0; v < nv; ++v) {
      if (!core[v]) continue;
      int root = find(v);
      // The class representative among core vars.
      if (rule_var[root] < 0) rule_var[root] = num_core_vars++;
      rule_var[v] = rule_var[root];
    }

    GoalRuleSpec spec;
    spec.num_core_vars = num_core_vars;
    for (int i = 0; i < q.arity(); ++i) spec.answer.push_back(rule_var[i]);

    // Core atoms.
    for (const fo::QueryAtom& a : q.atoms()) {
      if (a.vars.size() == 1 && core[a.vars[0]]) {
        spec.unary_atoms.emplace_back(rule_var[a.vars[0]],
                                      q.schema().RelationName(a.rel));
      }
      if (a.vars.size() == 2 && core[a.vars[0]] && core[a.vars[1]]) {
        auto rel =
            omq_.data_schema().FindRelation(q.schema().RelationName(a.rel));
        OBDA_CHECK(rel.has_value());
        spec.edb_atoms.emplace_back(*rel, rule_var[a.vars[0]],
                                    rule_var[a.vars[1]]);
      }
    }

    // Hanging components.
    std::set<int> seen_comps;
    for (int v = 0; v < nv; ++v) {
      if (core[v]) continue;
      int comp = find(v);
      if (!seen_comps.insert(comp).second) continue;
      // Build the hanging query: root (if attached) + component atoms.
      auto attach_it = attach.find(comp);
      const bool attached = attach_it != attach.end();
      fo::ConjunctiveQuery hang(q.schema(), attached ? 1 : 0);
      std::vector<fo::QVar> hv(static_cast<std::size_t>(nv), -1);
      auto hang_var = [&](int v2) {
        if (hv[v2] < 0) hv[v2] = hang.AddVariable();
        return hv[v2];
      };
      for (const fo::QueryAtom& a : q.atoms()) {
        if (a.vars.size() == 1 && !core[a.vars[0]] &&
            find(a.vars[0]) == comp) {
          hang.AddAtom(a.rel, {hang_var(a.vars[0])});
        }
        if (a.vars.size() != 2) continue;
        bool in0 = !core[a.vars[0]] && find(a.vars[0]) == comp;
        bool in1 = !core[a.vars[1]] && find(a.vars[1]) == comp;
        if (in0 && in1) {
          hang.AddAtom(a.rel, {hang_var(a.vars[0]), hang_var(a.vars[1])});
        } else if (in1 && core[a.vars[0]]) {
          // Cross atom: root (answer var 0) to component variable.
          hang.AddAtom(a.rel, {0, hang_var(a.vars[1])});
        }
      }
      fo::ConjunctiveQuery reduced = fo::EliminateForks(hang);
      if (!fo::IsTreeShaped(reduced)) return;  // cannot match any forest
      if (attached) {
        // Root description: unary atoms at the root plus child edges.
        for (const fo::QueryAtom& a : reduced.atoms()) {
          if (a.vars.size() == 1 && a.vars[0] == 0) {
            spec.unary_atoms.emplace_back(
                rule_var[*attach_it->second.begin()],
                reduced.schema().RelationName(a.rel));
          }
          if (a.vars.size() == 2 && a.vars[0] == 0) {
            RootedNode child = BuildNode(reduced, a.vars[1]);
            int edge = RegisterEdge(
                reduced.schema().RelationName(a.rel), std::move(child));
            spec.flag_atoms.emplace_back(
                rule_var[*attach_it->second.begin()], edge);
          }
        }
      } else {
        // Boolean component: find the tree root (in-degree 0).
        std::vector<int> indeg(static_cast<std::size_t>(reduced.num_vars()),
                               0);
        for (const fo::QueryAtom& a : reduced.atoms()) {
          if (a.vars.size() == 2) ++indeg[a.vars[1]];
        }
        fo::QVar root = -1;
        for (fo::QVar w = 0; w < reduced.num_vars(); ++w) {
          if (indeg[w] == 0) root = w;
        }
        OBDA_CHECK_GE(root, 0);
        spec.bool_comps.push_back(RegisterBool(BuildNode(reduced, root)));
      }
    }
    specs_.push_back(std::move(spec));
  }

  // --- Decorated type elimination --------------------------------------------

  bool NodeValue(const RootedNode& node, const Decorated& d) const {
    for (const std::string& a : node.unary) {
      if (!reasoner_->TypeContains(d.type, dl::Concept::Name(a))) {
        return false;
      }
    }
    for (int c : node.children) {
      if (((d.mask >> c) & 1u) == 0) return false;
    }
    return true;
  }

  bool EdgeFlagBit(std::uint32_t mask, int e) const {
    return ((mask >> e) & 1u) != 0;
  }
  bool BoolFlagBit(std::uint32_t mask, int c) const {
    return ((mask >> (edges_.size() + c)) & 1u) != 0;
  }

  /// True if `to` may serve as the R-successor of `from` in a tree:
  /// every tree match the edge creates is covered by `from`'s flags.
  bool TreeEdgeAllowed(const Decorated& from, const Decorated& to,
                       const dl::Role& role) const {
    std::vector<dl::Role> supers = omq_.ontology().SuperRoles(role);
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (EdgeFlagBit(from.mask, static_cast<int>(e))) continue;
      bool rel_matches = false;
      for (const dl::Role& s : supers) {
        if (!s.inverse && s.name == edges_[e].rel) rel_matches = true;
      }
      if (rel_matches && NodeValue(edges_[e].sub, to)) return false;
    }
    for (std::size_t c = 0; c < bools_.size(); ++c) {
      if (BoolFlagBit(from.mask, static_cast<int>(c))) continue;
      if (BoolFlagBit(to.mask, static_cast<int>(c)) ||
          NodeValue(bools_[c].root, to)) {
        return false;
      }
    }
    return true;
  }

  void EliminateDecorated() {
    const std::uint32_t mask_limit =
        1u << (edges_.size() + bools_.size());
    std::vector<Decorated> current;
    for (dl::TypeId t = 0;
         t < static_cast<dl::TypeId>(reasoner_->NumSurvivingTypes()); ++t) {
      for (std::uint32_t m = 0; m < mask_limit; ++m) {
        current.push_back(Decorated{t, m});
      }
    }
    // Quantified existentials of the closure.
    struct Exist {
      dl::Concept concept_;
      dl::Role role;
      dl::Concept filler;
    };
    std::vector<Exist> exists;
    for (const dl::Concept& c : reasoner_->closure()) {
      if (c.kind() == dl::Concept::Kind::kExists &&
          !c.role().IsUniversal()) {
        exists.push_back(Exist{c, c.role(), c.child()});
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<Decorated> next;
      for (const Decorated& d : current) {
        bool ok = true;
        for (const Exist& e : exists) {
          if (!reasoner_->TypeContains(d.type, e.concept_)) continue;
          bool witness = false;
          for (const Decorated& w : current) {
            if (!reasoner_->TypeContains(w.type, e.filler)) continue;
            if (!reasoner_->EdgeCompatible(d.type, w.type, e.role)) {
              continue;
            }
            if (!TreeEdgeAllowed(d, w, e.role)) continue;
            witness = true;
            break;
          }
          if (!witness) {
            ok = false;
            break;
          }
        }
        if (ok) next.push_back(d);
      }
      if (next.size() != current.size()) {
        changed = true;
        current = std::move(next);
      }
    }
    decorated_ = std::move(current);
  }

  // --- Program construction ---------------------------------------------------

  base::Result<ddlog::Program> BuildProgram() {
    const data::Schema& schema = omq_.data_schema();
    ddlog::Program program(schema);
    auto add_rule = [&program](std::vector<ddlog::Atom> head,
                               std::vector<ddlog::Atom> body) {
      ddlog::Rule rule;
      rule.head = std::move(head);
      rule.body = std::move(body);
      OBDA_CHECK(program.AddRule(std::move(rule)).ok());
    };

    const int n = static_cast<int>(decorated_.size());
    std::vector<ddlog::PredId> dt(n);
    for (int i = 0; i < n; ++i) {
      dt[i] = program.AddIdbPredicate("DT" + std::to_string(i), 1);
    }
    ddlog::PredId goal = program.AddIdbPredicate("goal", omq_.arity());
    program.SetGoal(goal);
    ddlog::PredId adom = program.EnsureAdom();

    // Guess rule.
    {
      std::vector<ddlog::Atom> head;
      for (int i = 0; i < n; ++i) head.push_back({dt[i], {0}});
      add_rule(std::move(head), {{adom, {0}}});
    }

    // Unary clash rules (schema concept facts force type membership).
    for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
      if (schema.Arity(r) != 1) continue;
      dl::Concept name = dl::Concept::Name(schema.RelationName(r));
      for (int i = 0; i < n; ++i) {
        if (!reasoner_->TypeContains(decorated_[i].type, name)) {
          add_rule({}, {{r, {0}}, {dt[i], {0}}});
        }
      }
    }

    // Helper predicates.
    std::set<std::string> unary_names;
    for (const GoalRuleSpec& s : specs_) {
      for (const auto& [v, a] : s.unary_atoms) {
        (void)v;
        unary_names.insert(a);
      }
    }
    std::map<std::string, ddlog::PredId> has_concept;
    for (const std::string& a : unary_names) {
      ddlog::PredId p = program.AddIdbPredicate("HasC_" + a, 1);
      has_concept[a] = p;
      dl::Concept name = dl::Concept::Name(a);
      for (int i = 0; i < n; ++i) {
        if (reasoner_->TypeContains(decorated_[i].type, name)) {
          add_rule({{p, {0}}}, {{dt[i], {0}}});
        }
      }
    }
    std::vector<ddlog::PredId> f_pred(edges_.size());
    std::vector<ddlog::PredId> nv_pred(edges_.size());
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      f_pred[e] = program.AddIdbPredicate("F" + std::to_string(e), 1);
      nv_pred[e] = program.AddIdbPredicate("NV" + std::to_string(e), 1);
      for (int i = 0; i < n; ++i) {
        if (EdgeFlagBit(decorated_[i].mask, static_cast<int>(e))) {
          add_rule({{f_pred[e], {0}}}, {{dt[i], {0}}});
        }
        if (NodeValue(edges_[e].sub, decorated_[i])) {
          add_rule({{nv_pred[e], {0}}}, {{dt[i], {0}}});
        }
      }
    }
    std::vector<ddlog::PredId> bwit_pred(bools_.size());
    for (std::size_t c = 0; c < bools_.size(); ++c) {
      bwit_pred[c] =
          program.AddIdbPredicate("BWit" + std::to_string(c), 1);
      for (int i = 0; i < n; ++i) {
        if (BoolFlagBit(decorated_[i].mask, static_cast<int>(c)) ||
            NodeValue(bools_[c].root, decorated_[i])) {
          add_rule({{bwit_pred[c], {0}}}, {{dt[i], {0}}});
        }
      }
    }

    // Edge rules: base coherence + flag forcing through data edges.
    for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
      if (schema.Arity(r) != 2) continue;
      dl::Role role = dl::Role::Named(schema.RelationName(r));
      std::vector<dl::Role> supers = omq_.ontology().SuperRoles(role);
      // Base type compatibility on underlying reasoner types (every
      // decorated variant of an incompatible pair is forbidden).
      std::set<dl::TypeId> live_types;
      for (const Decorated& d : decorated_) live_types.insert(d.type);
      for (dl::TypeId ta : live_types) {
        for (dl::TypeId tb : live_types) {
          if (reasoner_->EdgeCompatible(ta, tb, role)) continue;
          for (int i2 = 0; i2 < n; ++i2) {
            if (decorated_[i2].type != ta) continue;
            for (int j2 = 0; j2 < n; ++j2) {
              if (decorated_[j2].type != tb) continue;
              add_rule({}, {{r, {0, 1}}, {dt[i2], {0}}, {dt[j2], {1}}});
            }
          }
        }
      }
      // Flag forcing: R(x,y) ∧ DT_i(x) ∧ NV_e(y) with flag e unset at i.
      for (std::size_t e = 0; e < edges_.size(); ++e) {
        bool rel_matches = false;
        for (const dl::Role& s : supers) {
          if (!s.inverse && s.name == edges_[e].rel) rel_matches = true;
        }
        if (!rel_matches) continue;
        for (int i = 0; i < n; ++i) {
          if (!EdgeFlagBit(decorated_[i].mask, static_cast<int>(e))) {
            add_rule({}, {{r, {0, 1}},
                          {dt[i], {0}},
                          {nv_pred[e], {1}}});
          }
        }
      }
    }

    // Goal rules from decomposition specs.
    for (const GoalRuleSpec& s : specs_) {
      std::vector<ddlog::Atom> body;
      int next_var = s.num_core_vars;
      for (const auto& [rel, u, v] : s.edb_atoms) {
        body.push_back({rel, {u, v}});
      }
      for (const auto& [v, a] : s.unary_atoms) {
        body.push_back({has_concept.at(a), {v}});
      }
      for (const auto& [v, e] : s.flag_atoms) {
        body.push_back({f_pred[e], {v}});
      }
      for (int c : s.bool_comps) {
        body.push_back({bwit_pred[c], {next_var++}});
      }
      // Ground every core variable in adom (covers variables with no
      // other body atom and enforces answers ⊆ adom^n).
      for (int v = 0; v < s.num_core_vars; ++v) {
        body.push_back({adom, {v}});
      }
      if (body.empty()) body.push_back({adom, {next_var++}});
      std::vector<ddlog::VarId> head_vars;
      for (int a : s.answer) head_vars.push_back(a);
      add_rule({{goal, std::move(head_vars)}}, std::move(body));
    }
    return program;
  }

  const OntologyMediatedQuery& omq_;
  std::unique_ptr<dl::TypeReasoner> reasoner_;
  std::vector<EdgeQuery> edges_;
  std::map<std::string, int> edge_index_;
  std::vector<BoolComp> bools_;
  std::map<std::string, int> bool_index_;
  std::vector<GoalRuleSpec> specs_;
  std::vector<Decorated> decorated_;
};

}  // namespace

base::Result<ddlog::Program> CompileUcqToMddlog(
    const OntologyMediatedQuery& omq) {
  UcqCompiler compiler(omq);
  return compiler.Run();
}

base::Result<OntologyMediatedQuery> EliminateInverseRolesInOmq(
    const OntologyMediatedQuery& omq) {
  const dl::DlFeatures features = omq.ontology().Features();
  if (features.transitive_roles || features.functional_roles) {
    return base::UnimplementedError(
        "eliminate transitivity first; functional roles unsupported");
  }
  dl::InverseElimination elim =
      dl::EliminateInverseRoles(omq.ontology());
  auto query_schema = QuerySchema(omq.data_schema(), elim.ontology);
  if (!query_schema.ok()) return query_schema.status();

  fo::UnionOfCq rewritten(*query_schema, omq.arity());
  for (const fo::ConjunctiveQuery& disjunct : omq.query().disjuncts()) {
    // Each binary atom R(x,y) becomes a 2-way choice R(x,y) | Rinv(y,x);
    // distribute over all atoms (single-exponential, as the paper says).
    std::vector<std::size_t> binary_atoms;
    for (std::size_t i = 0; i < disjunct.atoms().size(); ++i) {
      if (disjunct.atoms()[i].vars.size() == 2) binary_atoms.push_back(i);
    }
    if (binary_atoms.size() > 16) {
      return base::ResourceExhaustedError("too many binary atoms");
    }
    const std::uint32_t limit = 1u << binary_atoms.size();
    for (std::uint32_t choice = 0; choice < limit; ++choice) {
      fo::ConjunctiveQuery cq(*query_schema, disjunct.arity());
      while (cq.num_vars() < disjunct.num_vars()) cq.AddVariable();
      for (std::size_t i = 0; i < disjunct.atoms().size(); ++i) {
        const fo::QueryAtom& a = disjunct.atoms()[i];
        const std::string& rel = disjunct.schema().RelationName(a.rel);
        if (a.vars.size() != 2) {
          auto id = query_schema->FindRelation(rel);
          OBDA_CHECK(id.has_value());
          cq.AddAtom(*id, a.vars);
          continue;
        }
        std::size_t pos =
            std::find(binary_atoms.begin(), binary_atoms.end(), i) -
            binary_atoms.begin();
        bool inverted = ((choice >> pos) & 1u) != 0;
        if (inverted) {
          auto inv_it = elim.inverse_name.find(rel);
          OBDA_CHECK(inv_it != elim.inverse_name.end());
          auto id = query_schema->FindRelation(inv_it->second);
          if (!id.has_value()) {
            // The inverse name may be absent when R never occurs in O;
            // Rinv edges then never exist, so skip this choice.
            goto next_choice;
          }
          cq.AddAtom(*id, {a.vars[1], a.vars[0]});
        } else {
          auto id = query_schema->FindRelation(rel);
          OBDA_CHECK(id.has_value());
          cq.AddAtom(*id, a.vars);
        }
      }
      rewritten.AddDisjunct(std::move(cq));
    next_choice:;
    }
  }
  return OntologyMediatedQuery::Create(omq.data_schema(), elim.ontology,
                                       std::move(rewritten));
}

}  // namespace obda::core
