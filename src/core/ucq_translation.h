#ifndef OBDA_CORE_UCQ_TRANSLATION_H_
#define OBDA_CORE_UCQ_TRANSLATION_H_

#include "base/status.h"
#include "core/omq.h"
#include "ddlog/program.h"

namespace obda::core {

/// Compiles an (ALCH, UCQ) ontology-mediated query into an equivalent
/// MDDlog program (paper Thm 3.3, with the H extension of Thm 3.6(2)).
///
/// Implementation (proof of Thm 3.3, executable reading):
///  * The UCQ is analysed into *edge-rooted tree queries* ({R(x,y)} ∪
///    q̂|y, the members of tree(q)) and *Boolean tree components*;
///    fork elimination (fo::EliminateForks) normalises subqueries.
///  * Types are the reasoner types *decorated* with one flag per
///    edge-rooted query ("this query holds at the element") and per
///    Boolean component ("the component matches strictly inside the tree
///    hanging at the element"). A decorated type elimination keeps
///    exactly the types realizable as roots of tree models whose tree
///    matches are covered by the claimed flags.
///  * The program guesses a decorated type per element; constraint rules
///    reject EDB-incoherent guesses and force flags implied through data
///    edges; goal rules enumerate, per disjunct, the decompositions into
///    a core part (mapped to data elements) and hanging tree parts
///    (covered by flags) — the paper's "diagrams that imply q(x')".
///
/// Restrictions (all per the paper's own development): inverse roles must
/// be eliminated first (EliminateInverseRolesInOmq below, Thm 3.6(1));
/// transitive roles are not expressible in MDDlog at all for UCQs
/// (Thm 3.10), nor are functional roles; the universal role is supported
/// only on the AQ path. The produced program is monadic; sizes are
/// exponential in |O| + |q| as the theorem states. The equivalence holds
/// on nonempty instances (the paper's implicit convention).
base::Result<ddlog::Program> CompileUcqToMddlog(
    const OntologyMediatedQuery& omq);

/// Applies Thm 3.6(1) to a whole OMQ: eliminates inverse roles from the
/// ontology (dl::EliminateInverseRoles) and rewrites every query atom
/// R(x,y) into the disjunction R(x,y) ∨ Rinv(y,x), distributing over the
/// UCQ (the paper's single-exponential query blowup).
base::Result<OntologyMediatedQuery> EliminateInverseRolesInOmq(
    const OntologyMediatedQuery& omq);

}  // namespace obda::core

#endif  // OBDA_CORE_UCQ_TRANSLATION_H_
