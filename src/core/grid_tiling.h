#ifndef OBDA_CORE_GRID_TILING_H_
#define OBDA_CORE_GRID_TILING_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "dl/ontology.h"

namespace obda::core {

/// An instance of the exponential grid tiling problem (proof of Thm 5.7):
/// tile types, horizontal/vertical matching relations, and the initial
/// tiles T_{0,0}..T_{k,0} placed along the bottom row.
struct TilingSystem {
  /// Number of counter bits: the grid is 2^n × 2^n.
  int n = 1;
  std::vector<std::string> tiles;
  /// Allowed horizontal neighbours (left tile index, right tile index).
  std::vector<std::pair<int, int>> horizontal;
  /// Allowed vertical neighbours (lower, upper).
  std::vector<std::pair<int, int>> vertical;
  /// Initial tiles for positions (0,0), (1,0), ... (indices into tiles).
  std::vector<int> initial;

  /// Brute-force solver (for ground truth on tiny n).
  bool HasSolution() const;
};

/// The reduction of the Thm 5.7 NExpTime-hardness proof, materialized:
/// the schema S_grid (H, V, counter bits X_i/NotX_i, Y_i/NotY_i), the
/// counting ontology O2, and its tiling extension O1 (tile concepts,
/// clash detection feeding E, E-propagation along H and V).
struct GridReduction {
  data::Schema schema;
  dl::Ontology o1;
  dl::Ontology o2;
};

/// Builds O1/O2/S_grid for the tiling system.
GridReduction BuildGridReduction(const TilingSystem& system);

/// The instance D_grid: the full 2^n × 2^n grid with correctly counting
/// coordinate bits (the proof's canonical consistent instance).
data::Instance GridInstance(int n, const data::Schema& schema);

}  // namespace obda::core

#endif  // OBDA_CORE_GRID_TILING_H_
