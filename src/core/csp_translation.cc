#include "core/csp_translation.h"

#include <string>
#include <vector>

#include "base/check.h"
#include "dl/reasoner.h"

namespace obda::core {

namespace {

/// Builds the branch template: elements are the branch's surviving types.
data::Instance BranchTemplate(const dl::TypeReasoner& reasoner, int branch,
                              const data::Schema& data_schema) {
  data::Instance b(data_schema);
  const std::vector<dl::TypeId>& types = reasoner.BranchTypes(branch);
  std::vector<data::ConstId> element(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    element[i] = b.AddConstant("t" + std::to_string(types[i]));
  }
  for (data::RelationId r = 0; r < data_schema.NumRelations(); ++r) {
    const int arity = data_schema.Arity(r);
    if (arity == 1) {
      dl::Concept name = dl::Concept::Name(data_schema.RelationName(r));
      for (std::size_t i = 0; i < types.size(); ++i) {
        if (reasoner.TypeContains(types[i], name)) {
          b.AddFact(r, {element[i]});
        }
      }
    } else if (arity == 2) {
      dl::Role role = dl::Role::Named(data_schema.RelationName(r));
      for (std::size_t i = 0; i < types.size(); ++i) {
        for (std::size_t j = 0; j < types.size(); ++j) {
          if (reasoner.EdgeCompatible(types[i], types[j], role)) {
            b.AddFact(r, {element[i], element[j]});
          }
        }
      }
    }
  }
  return b;
}

}  // namespace

base::Result<csp::CoCspQuery> CompileToCsp(
    const OntologyMediatedQuery& omq, int max_template_elements) {
  if (!omq.ontology().functional_roles().empty()) {
    return base::UnimplementedError(
        "functional roles are not supported by the CSP compilation "
        "(DESIGN.md §5.5)");
  }
  auto aq = omq.AtomicQueryConcept();
  auto baq = omq.BooleanAtomicQueryConcept();
  if (!aq.has_value() && !baq.has_value()) {
    return base::InvalidArgumentError(
        "CompileToCsp requires an atomic or Boolean atomic query "
        "(Thm 4.6); use the MDDlog translation for UCQs");
  }
  const std::string concept_name = aq.has_value() ? *aq : *baq;

  dl::Ontology ontology = omq.ontology();
  if (baq.has_value()) {
    // No element of any model may satisfy A0 (certain ∃x.A0(x) fails iff
    // D is consistent with O ∪ {A0 ⊑ ⊥}).
    ontology.AddInclusion(dl::Concept::Name(concept_name),
                          dl::Concept::Bottom());
  }

  std::vector<dl::Concept> seeds;
  seeds.push_back(dl::Concept::Name(concept_name));
  for (data::RelationId r = 0; r < omq.data_schema().NumRelations(); ++r) {
    if (omq.data_schema().Arity(r) == 1) {
      seeds.push_back(dl::Concept::Name(omq.data_schema().RelationName(r)));
    }
  }

  auto reasoner = dl::TypeReasoner::Create(ontology, seeds);
  if (!reasoner.ok()) return reasoner.status();

  csp::CoCspQuery out(omq.data_schema(), omq.arity());
  dl::Concept a0 = dl::Concept::Name(concept_name);
  for (int branch = 0; branch < reasoner->NumBranches(); ++branch) {
    if (reasoner->BranchTypes(branch).size() >
        static_cast<std::size_t>(max_template_elements)) {
      return base::ResourceExhaustedError(
          "template would have " +
          std::to_string(reasoner->BranchTypes(branch).size()) +
          " elements (max " + std::to_string(max_template_elements) + ")");
    }
    data::Instance b = BranchTemplate(*reasoner, branch,
                                      omq.data_schema());
    if (baq.has_value()) {
      out.AddTemplate(data::MarkedInstance{std::move(b), {}});
    } else {
      const std::vector<dl::TypeId>& types = reasoner->BranchTypes(branch);
      for (std::size_t i = 0; i < types.size(); ++i) {
        if (reasoner->TypeContains(types[i], a0)) continue;
        data::ConstId mark =
            *b.FindConstant("t" + std::to_string(types[i]));
        out.AddTemplate(data::MarkedInstance{b, {mark}});
      }
    }
  }
  return out;
}

base::Result<std::vector<std::vector<data::ConstId>>> CertainAnswersViaCsp(
    const OntologyMediatedQuery& omq, const data::Instance& instance) {
  auto csp_query = CompileToCsp(omq);
  if (!csp_query.ok()) return csp_query.status();
  return csp_query->Evaluate(instance);
}

base::Result<OntologyMediatedQuery> CspToOmq(const data::Instance& b) {
  const data::Schema& schema = b.schema();
  if (!schema.IsBinary()) {
    return base::InvalidArgumentError("CspToOmq requires a binary schema");
  }
  dl::Ontology ontology;
  const std::size_t n = b.UniverseSize();
  dl::Concept goal = dl::Concept::Name("Goal");
  auto a_of = [&b](data::ConstId d) {
    return dl::Concept::Name("Elem_" + b.ConstantName(d));
  };
  // ⊤ ⊑ ⊔_d A_d  (every element picks a template element).
  {
    std::vector<dl::Concept> all;
    for (data::ConstId d = 0; d < n; ++d) all.push_back(a_of(d));
    ontology.AddInclusion(dl::Concept::Top(), dl::Concept::OrAll(all));
  }
  // A_d ⊓ A_d' ⊑ Goal for d != d'.
  for (data::ConstId d = 0; d < n; ++d) {
    for (data::ConstId e = d + 1; e < n; ++e) {
      ontology.AddInclusion(dl::Concept::And(a_of(d), a_of(e)), goal);
    }
  }
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    if (schema.Arity(r) == 1) {
      // A_d ⊓ B ⊑ Goal whenever B(d) ∉ B.
      dl::Concept name = dl::Concept::Name(schema.RelationName(r));
      for (data::ConstId d = 0; d < n; ++d) {
        if (!b.HasFact(r, {d})) {
          ontology.AddInclusion(dl::Concept::And(a_of(d), name), goal);
        }
      }
    } else if (schema.Arity(r) == 2) {
      // A_d ⊓ ∃R.A_d' ⊑ Goal whenever R(d,d') ∉ B.
      dl::Role role = dl::Role::Named(schema.RelationName(r));
      for (data::ConstId d = 0; d < n; ++d) {
        for (data::ConstId e = 0; e < n; ++e) {
          if (!b.HasFact(r, {d, e})) {
            ontology.AddInclusion(
                dl::Concept::And(a_of(d), dl::Concept::Exists(role,
                                                              a_of(e))),
                goal);
          }
        }
      }
    }
  }
  return OntologyMediatedQuery::WithBooleanAtomicQuery(schema, ontology,
                                                       "Goal");
}

}  // namespace obda::core
