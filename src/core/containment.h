#ifndef OBDA_CORE_CONTAINMENT_H_
#define OBDA_CORE_CONTAINMENT_H_

#include "base/status.h"
#include "core/omq.h"

namespace obda::core {

/// Decides query containment Q1 ⊆ Q2 for AQ/BAQ ontology-mediated
/// queries over the same data schema (paper Thm 5.7, the NExpTime
/// procedure): compile both to generalized marked coCSPs (exponential,
/// Thm 4.6) and check template homomorphisms (NP in template size):
/// cert1 ⊆ cert2 iff every Q2-template maps into some Q1-template.
base::Result<bool> OmqContained(const OntologyMediatedQuery& q1,
                                const OntologyMediatedQuery& q2);

/// Verdict of the bounded containment check for UCQ-based OMQs.
enum class ContainmentVerdict {
  /// A concrete counterexample instance was found: definitely NOT
  /// contained (sound).
  kNotContained,
  /// No counterexample up to the bound (complete only within the bound;
  /// see DESIGN.md §5.4 — full MMSNP containment is out of scope).
  kContainedWithinBound,
};

struct ContainmentOptions {
  /// Counterexample instances are enumerated up to this many elements.
  int max_elements = 3;
  /// And at most this many facts.
  int max_facts = 4;
  /// Bounded-model engine slack for evaluating both queries.
  int extra_elements = 4;
};

/// Bounded containment for arbitrary (UCQ) OMQs over a shared data
/// schema: enumerates small instances and compares certain answers via
/// the reference engine.
base::Result<ContainmentVerdict> OmqContainedBounded(
    const OntologyMediatedQuery& q1, const OntologyMediatedQuery& q2,
    const ContainmentOptions& options = ContainmentOptions());

}  // namespace obda::core

#endif  // OBDA_CORE_CONTAINMENT_H_
