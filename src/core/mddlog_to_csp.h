#ifndef OBDA_CORE_MDDLOG_TO_CSP_H_
#define OBDA_CORE_MDDLOG_TO_CSP_H_

#include "base/status.h"
#include "csp/query.h"
#include "ddlog/program.h"

namespace obda::core {

/// The direct template construction from the proof of Thm 4.6 (points 2
/// and 4): for a connected simple MDDlog program with unary or Boolean
/// goal, builds the canonical template B_T whose elements are the
/// realizable types (subsets of IDBs and unary EDBs validated on
/// singleton instances) with R-edges between R-coherent pairs (validated
/// on two-element instances).
///
///  * Boolean goal (point 4): one unmarked template over the goal-free
///    realizable types — plain coCSP.
///  * Unary goal (point 2): elements are ALL realizable types; one
///    marked template (B_T, τ) per goal-free τ — a generalized coCSP
///    with one marked element whose templates share their instance.
///
/// Disconnected programs (the ALCU case, point 1/3) route through
/// SimpleMddlogToOmq + CompileToCsp instead.
base::Result<csp::CoCspQuery> SimpleMddlogToCsp(
    const ddlog::Program& program);

}  // namespace obda::core

#endif  // OBDA_CORE_MDDLOG_TO_CSP_H_
