#include "core/grid_tiling.h"

#include <functional>

#include "base/check.h"

namespace obda::core {

bool TilingSystem::HasSolution() const {
  const int size = 1 << n;
  const int num_tiles = static_cast<int>(tiles.size());
  std::vector<int> grid(static_cast<std::size_t>(size) * size, -1);
  auto h_ok = [this](int l, int r) {
    for (auto& [a, b] : horizontal) {
      if (a == l && b == r) return true;
    }
    return false;
  };
  auto v_ok = [this](int low, int up) {
    for (auto& [a, b] : vertical) {
      if (a == low && b == up) return true;
    }
    return false;
  };
  std::function<bool(int)> place = [&](int pos) -> bool {
    if (pos == size * size) return true;
    int x = pos % size;
    int y = pos / size;
    for (int t = 0; t < num_tiles; ++t) {
      if (y == 0 && x < static_cast<int>(initial.size()) &&
          initial[x] != t) {
        continue;
      }
      if (x > 0 && !h_ok(grid[pos - 1], t)) continue;
      if (y > 0 && !v_ok(grid[pos - size], t)) continue;
      grid[pos] = t;
      if (place(pos + 1)) return true;
      grid[pos] = -1;
    }
    return false;
  };
  return place(0);
}

namespace {

using dl::Concept;
using dl::Role;

Concept Implies(const Concept& a, const Concept& b) {
  return Concept::Or(Concept::Not(a), b);
}

}  // namespace

GridReduction BuildGridReduction(const TilingSystem& system) {
  const int n = system.n;
  GridReduction out;
  out.schema.AddRelation("H", 2);
  out.schema.AddRelation("V", 2);
  std::vector<Concept> x_bit(n);
  std::vector<Concept> x_bar(n);
  std::vector<Concept> y_bit(n);
  std::vector<Concept> y_bar(n);
  for (int i = 0; i < n; ++i) {
    out.schema.AddRelation("X" + std::to_string(i), 1);
    out.schema.AddRelation("NotX" + std::to_string(i), 1);
    out.schema.AddRelation("Y" + std::to_string(i), 1);
    out.schema.AddRelation("NotY" + std::to_string(i), 1);
    x_bit[i] = Concept::Name("X" + std::to_string(i));
    x_bar[i] = Concept::Name("NotX" + std::to_string(i));
    y_bit[i] = Concept::Name("Y" + std::to_string(i));
    y_bar[i] = Concept::Name("NotY" + std::to_string(i));
  }
  Role h = Role::Named("H");
  Role v = Role::Named("V");

  // Def: both counters defined.
  std::vector<Concept> def_parts;
  for (int i = 0; i < n; ++i) {
    def_parts.push_back(Concept::Or(x_bit[i], x_bar[i]));
    def_parts.push_back(Concept::Or(y_bit[i], y_bar[i]));
  }
  Concept def = Concept::AndAll(def_parts);

  dl::Ontology& o2 = out.o2;
  // Bit/overbar disjointness.
  for (int i = 0; i < n; ++i) {
    o2.AddInclusion(x_bit[i], Concept::Not(x_bar[i]));
    o2.AddInclusion(y_bit[i], Concept::Not(y_bar[i]));
  }
  // Increment of X along H, of Y along V; preservation of the other
  // counter along each role.
  auto add_counter = [&](const std::vector<Concept>& bit,
                         const std::vector<Concept>& bar,
                         const Role& step, const Role& keep) {
    for (int k = 0; k < n; ++k) {
      // All lower bits 1: bit k flips.
      Concept flip = Concept::And(
          Implies(bit[k], Concept::Forall(step, Implies(def, bar[k]))),
          Implies(bar[k], Concept::Forall(step, Implies(def, bit[k]))));
      std::vector<Concept> lower_ones = {def};
      for (int j = 0; j < k; ++j) lower_ones.push_back(bit[j]);
      o2.AddInclusion(Concept::AndAll(lower_ones), flip);
      // Some lower bit 0: bit k is kept.
      if (k > 0) {
        Concept hold = Concept::And(
            Implies(bit[k], Concept::Forall(step, Implies(def, bit[k]))),
            Implies(bar[k], Concept::Forall(step, Implies(def, bar[k]))));
        std::vector<Concept> lower_zeros;
        for (int j = 0; j < k; ++j) lower_zeros.push_back(bar[j]);
        o2.AddInclusion(Concept::And(def, Concept::OrAll(lower_zeros)),
                        hold);
      }
      // Preservation along the other role.
      o2.AddInclusion(Concept::And(def, bit[k]),
                      Concept::Forall(keep, Implies(def, bit[k])));
      o2.AddInclusion(Concept::And(def, bar[k]),
                      Concept::Forall(keep, Implies(def, bar[k])));
    }
    // Maximum value: no Def-successor along `step`.
    std::vector<Concept> all_ones = {def};
    for (int i = 0; i < n; ++i) all_ones.push_back(bit[i]);
    o2.AddInclusion(Concept::AndAll(all_ones),
                    Concept::Forall(step, Implies(def, Concept::Bottom())));
  };
  add_counter(x_bit, x_bar, h, v);
  add_counter(y_bit, y_bar, v, h);

  // O1 = O2 + tiling layer.
  dl::Ontology& o1 = out.o1;
  for (const auto& ci : o2.inclusions()) o1.AddInclusion(ci.lhs, ci.rhs);
  Concept e = Concept::Name("E");
  std::vector<Concept> tile(system.tiles.size());
  for (std::size_t t = 0; t < system.tiles.size(); ++t) {
    tile[t] = Concept::Name("Tile_" + system.tiles[t]);
  }
  // Initial tiles at (i, 0).
  for (std::size_t i = 0; i < system.initial.size(); ++i) {
    std::vector<Concept> at;
    for (int b = 0; b < n; ++b) {
      at.push_back(((i >> b) & 1u) ? x_bit[b] : Concept::Not(x_bit[b]));
      at.push_back(Concept::Not(y_bit[b]));
    }
    o1.AddInclusion(Concept::AndAll(at), tile[system.initial[i]]);
  }
  // Completeness on Def.
  o1.AddInclusion(def, Concept::OrAll(tile));
  // Clashes raise E.
  for (std::size_t i = 0; i < tile.size(); ++i) {
    for (std::size_t j = 0; j < tile.size(); ++j) {
      if (i < j) {
        o1.AddInclusion(Concept::And(tile[i], tile[j]), e);
      }
      bool h_allowed = false;
      bool v_allowed = false;
      for (auto& [a, b] : system.horizontal) {
        if (a == static_cast<int>(i) && b == static_cast<int>(j)) {
          h_allowed = true;
        }
      }
      for (auto& [a, b] : system.vertical) {
        if (a == static_cast<int>(i) && b == static_cast<int>(j)) {
          v_allowed = true;
        }
      }
      if (!h_allowed) {
        o1.AddInclusion(
            Concept::And(tile[i], Concept::Exists(h, tile[j])), e);
      }
      if (!v_allowed) {
        o1.AddInclusion(
            Concept::And(tile[i], Concept::Exists(v, tile[j])), e);
      }
    }
  }
  // E propagates backwards along H and V.
  o1.AddInclusion(Concept::Exists(h, e), e);
  o1.AddInclusion(Concept::Exists(v, e), e);
  return out;
}

data::Instance GridInstance(int n, const data::Schema& schema) {
  const int size = 1 << n;
  data::Instance d(schema);
  std::vector<data::ConstId> cell(static_cast<std::size_t>(size) * size);
  for (int j = 0; j < size; ++j) {
    for (int i = 0; i < size; ++i) {
      cell[j * size + i] = d.AddConstant(
          "c" + std::to_string(i) + "_" + std::to_string(j));
    }
  }
  auto hr = *schema.FindRelation("H");
  auto vr = *schema.FindRelation("V");
  for (int j = 0; j < size; ++j) {
    for (int i = 0; i < size; ++i) {
      data::ConstId c = cell[j * size + i];
      if (i + 1 < size) d.AddFact(hr, {c, cell[j * size + i + 1]});
      if (j + 1 < size) d.AddFact(vr, {c, cell[(j + 1) * size + i]});
      for (int b = 0; b < n; ++b) {
        auto xb = *schema.FindRelation(
            ((i >> b) & 1) ? "X" + std::to_string(b)
                           : "NotX" + std::to_string(b));
        auto yb = *schema.FindRelation(
            ((j >> b) & 1) ? "Y" + std::to_string(b)
                           : "NotY" + std::to_string(b));
        d.AddFact(xb, {c});
        d.AddFact(yb, {c});
      }
    }
  }
  return d;
}

}  // namespace obda::core
