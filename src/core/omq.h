#ifndef OBDA_CORE_OMQ_H_
#define OBDA_CORE_OMQ_H_

#include <optional>
#include <string>

#include "base/status.h"
#include "data/instance.h"
#include "data/schema.h"
#include "dl/bounded_model.h"
#include "dl/ontology.h"
#include "fo/cq.h"

namespace obda::core {

/// An ontology-mediated query Q = (S, O, q) (paper §2): a data schema S,
/// a DL ontology O, and a UCQ q over S ∪ sig(O). Semantics: certain
/// answers certq,O(D) over S-instances D.
class OntologyMediatedQuery {
 public:
  /// Builds an OMQ. Fails if S is not binary, or q's schema is not the
  /// extension of S by sig(O) symbols (use `QuerySchema` to build it).
  static base::Result<OntologyMediatedQuery> Create(data::Schema data_schema,
                                                    dl::Ontology ontology,
                                                    fo::UnionOfCq query);

  /// Convenience: OMQ with the atomic query A(x) (AQ).
  static base::Result<OntologyMediatedQuery> WithAtomicQuery(
      data::Schema data_schema, dl::Ontology ontology,
      const std::string& concept_name);

  /// Convenience: OMQ with the Boolean atomic query ∃x A(x) (BAQ).
  static base::Result<OntologyMediatedQuery> WithBooleanAtomicQuery(
      data::Schema data_schema, dl::Ontology ontology,
      const std::string& concept_name);

  const data::Schema& data_schema() const { return data_schema_; }
  const dl::Ontology& ontology() const { return ontology_; }
  const fo::UnionOfCq& query() const { return query_; }
  int arity() const { return query_.arity(); }

  /// If the query is an atomic query A(x), returns A.
  std::optional<std::string> AtomicQueryConcept() const;
  /// If the query is a Boolean atomic query ∃x A(x), returns A.
  std::optional<std::string> BooleanAtomicQueryConcept() const;

  /// |Q| in the paper's symbol count (|O| + |q| + schema symbols).
  std::size_t SymbolSize() const;

  /// Reference semantics via the bounded countermodel engine (sound
  /// refutations; certainty complete relative to the bound). Used by the
  /// test harness to validate every translation.
  base::Result<std::vector<std::vector<data::ConstId>>>
  CertainAnswersBounded(const data::Instance& instance,
                        const dl::BoundedModelOptions& options =
                            dl::BoundedModelOptions()) const;

  std::string ToString() const;

 private:
  OntologyMediatedQuery(data::Schema data_schema, dl::Ontology ontology,
                        fo::UnionOfCq query)
      : data_schema_(std::move(data_schema)),
        ontology_(std::move(ontology)),
        query_(std::move(query)) {}

  data::Schema data_schema_;
  dl::Ontology ontology_;
  fo::UnionOfCq query_;
};

/// The schema S ∪ sig(O) over which OMQ queries are written: the data
/// schema extended by the ontology's concept names (unary) and role names
/// (binary). Fails on arity clashes.
base::Result<data::Schema> QuerySchema(const data::Schema& data_schema,
                                       const dl::Ontology& ontology);

}  // namespace obda::core

#endif  // OBDA_CORE_OMQ_H_
