#include "mmsnp/containment.h"

#include <algorithm>
#include <functional>

#include "base/check.h"

namespace obda::mmsnp {

namespace {

/// Enumerates instances over `schema` with `num_elements` elements and at
/// most `max_facts` facts; stops early when `visit` returns false.
bool EnumerateInstances(
    const data::Schema& schema, int num_elements, int max_facts,
    const std::function<bool(const data::Instance&)>& visit) {
  struct FactTemplate {
    data::RelationId rel;
    std::vector<data::ConstId> args;
  };
  std::vector<FactTemplate> all_facts;
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    const int arity = schema.Arity(r);
    if (arity == 0) continue;
    std::vector<data::ConstId> args(static_cast<std::size_t>(arity), 0);
    for (;;) {
      all_facts.push_back(FactTemplate{r, args});
      int pos = arity - 1;
      while (pos >= 0 &&
             ++args[pos] == static_cast<data::ConstId>(num_elements)) {
        args[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
  }
  std::vector<int> chosen;
  std::function<bool(std::size_t)> recurse = [&](std::size_t start) {
    {
      data::Instance d(schema);
      for (int i = 0; i < num_elements; ++i) {
        d.AddConstant("e" + std::to_string(i));
      }
      for (int f : chosen) {
        d.AddFact(all_facts[f].rel, all_facts[f].args);
      }
      if (!visit(d)) return false;
    }
    if (static_cast<int>(chosen.size()) == max_facts) return true;
    for (std::size_t f = start; f < all_facts.size(); ++f) {
      chosen.push_back(static_cast<int>(f));
      if (!recurse(f + 1)) return false;
      chosen.pop_back();
    }
    return true;
  };
  return recurse(0);
}

}  // namespace

base::Result<MmsnpContainment> ContainedBounded(
    const Formula& f1, const Formula& f2,
    const MmsnpContainmentOptions& options) {
  if (!f1.schema().LayoutCompatible(f2.schema())) {
    return base::InvalidArgumentError("schemas differ");
  }
  if (f1.num_free_vars() != f2.num_free_vars()) {
    return base::InvalidArgumentError("arity mismatch");
  }
  bool contained = true;
  base::Status failure = base::Status::Ok();
  for (int n = 1; n <= options.max_elements && contained; ++n) {
    EnumerateInstances(
        f1.schema(), n, options.max_facts,
        [&](const data::Instance& d) {
          auto a1 = f1.EvaluateCo(d);
          if (!a1.ok()) {
            failure = a1.status();
            return false;
          }
          auto a2 = f2.EvaluateCo(d);
          if (!a2.ok()) {
            failure = a2.status();
            return false;
          }
          for (const auto& t : *a1) {
            if (std::find(a2->begin(), a2->end(), t) == a2->end()) {
              contained = false;
              return false;
            }
          }
          return true;
        });
    if (!failure.ok()) return failure;
  }
  return contained ? MmsnpContainment::kContainedWithinBound
                   : MmsnpContainment::kNotContained;
}

}  // namespace obda::mmsnp
