#ifndef OBDA_MMSNP_CONTAINMENT_H_
#define OBDA_MMSNP_CONTAINMENT_H_

#include "base/status.h"
#include "mmsnp/formula.h"

namespace obda::mmsnp {

/// Verdict of the bounded containment check.
enum class MmsnpContainment {
  /// A counterexample instance was found: q_Φ1 ⊄ q_Φ2 (sound).
  kNotContained,
  /// No counterexample within the bound. The paper (after [Feder–Vardi
  /// 1998] and Prop 5.5) shows containment is decidable outright; the
  /// general decision procedure is 2NExpTime-scale machinery we replace
  /// by bounded search (DESIGN.md §5.4).
  kContainedWithinBound,
};

struct MmsnpContainmentOptions {
  int max_elements = 3;
  int max_facts = 4;
};

/// Bounded containment test for the coMMSNP queries of two formulas over
/// the same schema and arity: enumerates instances up to the bound and
/// compares q_Φ1(D) ⊆ q_Φ2(D). Prop 5.5's reduction (formulas →
/// sentences via markers) is available as SentenceWithMarkers and is
/// exercised by the tests.
base::Result<MmsnpContainment> ContainedBounded(
    const Formula& f1, const Formula& f2,
    const MmsnpContainmentOptions& options = MmsnpContainmentOptions());

}  // namespace obda::mmsnp

#endif  // OBDA_MMSNP_CONTAINMENT_H_
