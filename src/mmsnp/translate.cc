#include "mmsnp/translate.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/check.h"
#include "sat/solver.h"

namespace obda::mmsnp {

namespace {

/// Preprocessing step (i) of Prop 4.1: every free variable occurs in
/// every implication. Violating implications are replaced by the padded
/// family (one per input relation and position).
base::Result<std::vector<Implication>> PadFreeVariables(
    const Formula& formula) {
  const int k = formula.num_free_vars();
  std::vector<Implication> work = formula.implications();
  std::vector<Implication> done;
  while (!work.empty()) {
    Implication imp = std::move(work.back());
    work.pop_back();
    int missing = -1;
    std::vector<bool> present(static_cast<std::size_t>(k), false);
    for (const auto& atoms : {&imp.body, &imp.head}) {
      for (const Atom& a : *atoms) {
        for (int v : a.vars) {
          if (v < k) present[v] = true;
        }
      }
    }
    for (int y = 0; y < k; ++y) {
      if (!present[y]) {
        missing = y;
        break;
      }
    }
    if (missing < 0) {
      done.push_back(std::move(imp));
      continue;
    }
    bool padded = false;
    const data::Schema& s = formula.schema();
    for (data::RelationId r = 0; r < s.NumRelations(); ++r) {
      const int arity = s.Arity(r);
      for (int pos = 0; pos < arity; ++pos) {
        Implication copy = imp;
        Atom pad;
        pad.kind = AtomKind::kInput;
        pad.pred = r;
        int fresh = std::max(copy.NumVars(), k);
        for (int p = 0; p < arity; ++p) {
          pad.vars.push_back(p == pos ? missing : fresh++);
        }
        copy.body.push_back(std::move(pad));
        work.push_back(std::move(copy));
        padded = true;
      }
    }
    if (!padded) {
      return base::InvalidArgumentError(
          "cannot pad free variables: schema has no positive-arity "
          "relation");
    }
  }
  return done;
}

/// Preprocessing step (ii): equality atoms involving a non-free variable
/// are eliminated by substitution; only free-free equalities remain.
Implication MergeNonFreeEqualities(const Implication& imp, int k) {
  const int nv = std::max(imp.NumVars(), k);
  std::vector<int> parent(static_cast<std::size_t>(nv));
  for (int i = 0; i < nv; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);  // prefer free (lower) representatives
    parent[b] = a;
  };
  for (const Atom& a : imp.body) {
    if (a.kind != AtomKind::kEquality) continue;
    if (a.vars[0] < k && a.vars[1] < k) continue;  // free-free: keep
    unite(a.vars[0], a.vars[1]);
  }
  Implication out;
  auto rewrite = [&](const Atom& a) {
    Atom b = a;
    for (int& v : b.vars) v = find(v);
    return b;
  };
  for (const Atom& a : imp.body) {
    if (a.kind == AtomKind::kEquality &&
        !(a.vars[0] < k && a.vars[1] < k)) {
      continue;
    }
    out.body.push_back(rewrite(a));
  }
  for (const Atom& a : imp.head) out.head.push_back(rewrite(a));
  return out;
}

}  // namespace

base::Result<ddlog::Program> ToDdlog(const Formula& formula) {
  if (!formula.IsGuarded()) {
    return base::InvalidArgumentError(
        "formula is not guarded (not in GMSNP)");
  }
  const int k = formula.num_free_vars();
  auto padded = PadFreeVariables(formula);
  if (!padded.ok()) return padded.status();

  ddlog::Program program(formula.schema());
  std::vector<ddlog::PredId> pos_pred(formula.NumSoVars());
  std::vector<ddlog::PredId> neg_pred(formula.NumSoVars());
  for (SoVarId x = 0; x < formula.NumSoVars(); ++x) {
    pos_pred[x] = program.AddIdbPredicate(formula.SoVarName(x),
                                          formula.SoVarArity(x));
    neg_pred[x] = program.AddIdbPredicate("Not_" + formula.SoVarName(x),
                                          formula.SoVarArity(x));
  }
  ddlog::PredId goal = program.AddIdbPredicate("goal", k);
  program.SetGoal(goal);

  auto add_rule = [&program](std::vector<ddlog::Atom> head,
                             std::vector<ddlog::Atom> body) {
    ddlog::Rule rule;
    rule.head = std::move(head);
    rule.body = std::move(body);
    OBDA_CHECK(program.AddRule(std::move(rule)).ok());
  };

  // Guess rules. Monadic SO variables use adom (Prop 4.1); higher-arity
  // ones use the R(u)-guarded form of Thm 4.2.
  const bool monadic = formula.IsMonadic();
  ddlog::PredId adom = ddlog::kInvalidPred;
  if (monadic || k > 0) adom = program.EnsureAdom();
  for (SoVarId x = 0; x < formula.NumSoVars(); ++x) {
    const int arity = formula.SoVarArity(x);
    if (arity == 1) {
      if (adom == ddlog::kInvalidPred) adom = program.EnsureAdom();
      add_rule({{pos_pred[x], {0}}, {neg_pred[x], {0}}}, {{adom, {0}}});
    } else {
      const data::Schema& s = formula.schema();
      for (data::RelationId r = 0; r < s.NumRelations(); ++r) {
        const int r_arity = s.Arity(r);
        if (r_arity == 0) continue;
        // All maps from SO positions to R positions.
        std::vector<int> map(static_cast<std::size_t>(arity), 0);
        for (;;) {
          std::vector<ddlog::VarId> head_vars;
          for (int p = 0; p < arity; ++p) head_vars.push_back(map[p]);
          std::vector<ddlog::VarId> body_vars;
          for (int p = 0; p < r_arity; ++p) body_vars.push_back(p);
          add_rule({{pos_pred[x], head_vars}, {neg_pred[x], head_vars}},
                   {{r, body_vars}});
          int pos = arity - 1;
          while (pos >= 0 && ++map[pos] == r_arity) {
            map[pos] = 0;
            --pos;
          }
          if (pos < 0) break;
        }
      }
    }
    // Exclusivity.
    std::vector<ddlog::VarId> vars;
    for (int p = 0; p < arity; ++p) vars.push_back(p);
    add_rule({}, {{pos_pred[x], vars}, {neg_pred[x], vars}});
  }

  // Implication rules: ϑ → ⊥ with complemented heads, then a goal rule.
  for (const Implication& raw : *padded) {
    Implication imp = MergeNonFreeEqualities(raw, k);
    // Equivalence classes of free variables (remaining equalities).
    std::vector<int> rep(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) rep[i] = i;
    std::function<int(int)> find = [&](int x) {
      while (rep[x] != x) x = rep[x] = rep[rep[x]];
      return x;
    };
    for (const Atom& a : imp.body) {
      if (a.kind == AtomKind::kEquality) {
        int u = find(a.vars[0]);
        int v = find(a.vars[1]);
        if (u != v) rep[std::max(u, v)] = std::min(u, v);
      }
    }
    auto var_map = [&](int v) -> ddlog::VarId {
      return v < k ? find(v) : v;
    };
    std::vector<ddlog::Atom> body;
    for (const Atom& a : imp.body) {
      if (a.kind == AtomKind::kEquality) continue;
      ddlog::Atom out;
      out.pred = a.kind == AtomKind::kInput
                     ? static_cast<ddlog::PredId>(a.pred)
                     : pos_pred[a.pred];
      for (int v : a.vars) out.vars.push_back(var_map(v));
      body.push_back(std::move(out));
    }
    for (const Atom& a : imp.head) {
      ddlog::Atom out;
      out.pred = neg_pred[a.pred];
      for (int v : a.vars) out.vars.push_back(var_map(v));
      body.push_back(std::move(out));
    }
    std::vector<ddlog::VarId> goal_vars;
    for (int i = 0; i < k; ++i) goal_vars.push_back(find(i));
    add_rule({{goal, std::move(goal_vars)}}, std::move(body));
  }
  return program;
}

base::Result<Formula> FromDdlog(const ddlog::Program& program) {
  OBDA_RETURN_IF_ERROR(program.Validate());
  const int k = program.QueryArity();
  Formula formula(program.edb_schema(), k);
  std::map<ddlog::PredId, SoVarId> so_of;
  for (ddlog::PredId p = static_cast<ddlog::PredId>(program.NumEdb());
       p < program.NumPredicates(); ++p) {
    if (p == program.goal()) continue;
    so_of[p] = formula.AddSoVar(program.PredicateName(p),
                                program.Arity(p));
  }
  for (const ddlog::Rule& rule : program.rules()) {
    const bool goal_rule =
        rule.head.size() == 1 && rule.head[0].pred == program.goal();
    Implication imp;
    // Variable translation: goal-head variables become free variables.
    std::vector<int> var_map(static_cast<std::size_t>(rule.NumVars()), -1);
    int next_local = k;
    if (goal_rule) {
      for (int i = 0; i < k; ++i) {
        ddlog::VarId v = rule.head[0].vars[i];
        if (var_map[v] < 0) {
          var_map[v] = i;
        } else {
          // Repeated head variable: add y_first = y_i.
          Atom eq;
          eq.kind = AtomKind::kEquality;
          eq.vars = {var_map[v], i};
          imp.body.push_back(std::move(eq));
        }
      }
    }
    for (ddlog::VarId v = 0; v < rule.NumVars(); ++v) {
      if (var_map[v] < 0) var_map[v] = next_local++;
    }
    auto convert = [&](const ddlog::Atom& a) {
      Atom out;
      if (program.IsEdb(a.pred)) {
        out.kind = AtomKind::kInput;
        out.pred = a.pred;
      } else {
        out.kind = AtomKind::kSecondOrder;
        out.pred = so_of.at(a.pred);
      }
      for (ddlog::VarId v : a.vars) out.vars.push_back(var_map[v]);
      return out;
    };
    for (const ddlog::Atom& a : rule.body) imp.body.push_back(convert(a));
    if (!goal_rule) {
      for (const ddlog::Atom& a : rule.head) {
        imp.head.push_back(convert(a));
      }
    }
    OBDA_RETURN_IF_ERROR(formula.AddImplication(std::move(imp)));
  }
  return formula;
}

Formula SentenceWithMarkers(const Formula& formula) {
  const int k = formula.num_free_vars();
  data::Schema schema = formula.schema();
  std::vector<data::RelationId> marks;
  for (int i = 0; i < k; ++i) {
    marks.push_back(schema.AddRelation("Mark" + std::to_string(i + 1), 1));
  }
  Formula out(schema, 0);
  for (SoVarId x = 0; x < formula.NumSoVars(); ++x) {
    out.AddSoVar(formula.SoVarName(x), formula.SoVarArity(x));
  }
  for (const Implication& imp : formula.implications()) {
    Implication shifted = imp;  // variable ids keep their meaning; the
                                // formerly-free variables are now local
                                // (out has no free variables).
    for (int i = 0; i < k; ++i) {
      Atom mark;
      mark.kind = AtomKind::kInput;
      mark.pred = marks[i];
      mark.vars = {i};
      shifted.body.push_back(std::move(mark));
    }
    OBDA_CHECK(out.AddImplication(std::move(shifted)).ok());
  }
  return out;
}

// --- Forbidden pattern problems ---------------------------------------------

data::Schema ForbiddenPatternProblem::ColoredSchema() const {
  data::Schema out = schema;
  for (const std::string& c : colors) out.AddRelation(c, 1);
  return out;
}

namespace {

/// Enumerates all homomorphisms of `pattern`'s S-reduct into `target`
/// (both over the plain schema), invoking `emit` with each mapping.
void EnumerateHoms(const data::Instance& pattern,
                   const data::Instance& target, std::size_t next,
                   std::vector<data::ConstId>* mapping,
                   const std::function<void(const std::vector<
                                            data::ConstId>&)>& emit) {
  if (next == pattern.UniverseSize()) {
    emit(*mapping);
    return;
  }
  for (data::ConstId t = 0; t < target.UniverseSize(); ++t) {
    (*mapping)[next] = t;
    // Check all pattern facts fully assigned by elements <= next.
    bool ok = true;
    for (const data::FactRef& f : pattern.FactsOf(
             static_cast<data::ConstId>(next))) {
      auto tuple = pattern.Tuple(f.relation, f.tuple_index);
      bool assigned = true;
      std::vector<data::ConstId> image;
      for (data::ConstId c : tuple) {
        if (c > next) {
          assigned = false;
          break;
        }
        image.push_back((*mapping)[c]);
      }
      if (assigned && !target.HasFact(f.relation, image)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      EnumerateHoms(pattern, target, next + 1, mapping, emit);
    }
  }
}

}  // namespace

base::Result<bool> ForbiddenPatternProblem::InForb(
    const data::Instance& instance) const {
  OBDA_CHECK(instance.schema().LayoutCompatible(schema));
  const std::vector<data::ConstId> adom = instance.ActiveDomain();
  data::Instance restricted = instance.InducedSubinstance(adom);

  sat::Solver solver;
  const std::size_t n = restricted.UniverseSize();
  const std::size_t num_colors = colors.size();
  // col[e * num_colors + c]
  std::vector<sat::Var> col(n * num_colors);
  for (auto& v : col) v = solver.NewVar();
  for (std::size_t e = 0; e < n; ++e) {
    std::vector<sat::Lit> at_least;
    for (std::size_t c = 0; c < num_colors; ++c) {
      at_least.push_back(sat::Lit::Pos(col[e * num_colors + c]));
    }
    solver.AddClause(at_least);
    for (std::size_t c1 = 0; c1 < num_colors; ++c1) {
      for (std::size_t c2 = c1 + 1; c2 < num_colors; ++c2) {
        solver.AddClause({sat::Lit::Neg(col[e * num_colors + c1]),
                          sat::Lit::Neg(col[e * num_colors + c2])});
      }
    }
  }
  data::Schema colored = ColoredSchema();
  for (const data::Instance& pattern : patterns) {
    // Split the pattern into S-facts and color assignments.
    data::Instance reduct = pattern.ReductTo(schema);
    std::vector<int> color_of(pattern.UniverseSize(), -1);
    for (std::size_t c = 0; c < num_colors; ++c) {
      auto rel = pattern.schema().FindRelation(colors[c]);
      if (!rel.has_value()) continue;
      for (std::uint32_t i = 0; i < pattern.NumTuples(*rel); ++i) {
        color_of[pattern.Tuple(*rel, i)[0]] = static_cast<int>(c);
      }
    }
    std::vector<data::ConstId> mapping(pattern.UniverseSize());
    EnumerateHoms(reduct, restricted, 0, &mapping,
                  [&](const std::vector<data::ConstId>& h) {
                    std::vector<sat::Lit> clause;
                    for (std::size_t e = 0; e < h.size(); ++e) {
                      OBDA_CHECK_GE(color_of[e], 0);
                      clause.push_back(sat::Lit::Neg(
                          col[h[e] * num_colors + color_of[e]]));
                    }
                    solver.AddClause(std::move(clause));
                  });
  }
  sat::SatOutcome outcome = solver.Solve({}, 50'000'000);
  if (outcome == sat::SatOutcome::kBudget) {
    return base::ResourceExhaustedError("FPP evaluation budget");
  }
  return outcome == sat::SatOutcome::kSat;
}

base::Result<bool> ForbiddenPatternProblem::CoQuery(
    const data::Instance& instance) const {
  auto in_forb = InForb(instance);
  if (!in_forb.ok()) return in_forb.status();
  return !*in_forb;
}

base::Result<ddlog::Program> FppToMddlog(
    const ForbiddenPatternProblem& fpp) {
  ddlog::Program program(fpp.schema);
  std::vector<ddlog::PredId> color_pred;
  for (const std::string& c : fpp.colors) {
    color_pred.push_back(program.AddIdbPredicate(c, 1));
  }
  ddlog::PredId goal = program.AddIdbPredicate("goal", 0);
  program.SetGoal(goal);
  ddlog::PredId adom = program.EnsureAdom();
  auto add_rule = [&program](std::vector<ddlog::Atom> head,
                             std::vector<ddlog::Atom> body) {
    ddlog::Rule rule;
    rule.head = std::move(head);
    rule.body = std::move(body);
    OBDA_CHECK(program.AddRule(std::move(rule)).ok());
  };
  {
    std::vector<ddlog::Atom> head;
    for (ddlog::PredId c : color_pred) head.push_back({c, {0}});
    add_rule(std::move(head), {{adom, {0}}});
  }
  for (std::size_t c1 = 0; c1 < color_pred.size(); ++c1) {
    for (std::size_t c2 = c1 + 1; c2 < color_pred.size(); ++c2) {
      add_rule({}, {{color_pred[c1], {0}}, {color_pred[c2], {0}}});
    }
  }
  for (const data::Instance& pattern : fpp.patterns) {
    std::vector<ddlog::Atom> body;
    for (data::RelationId r = 0; r < pattern.schema().NumRelations();
         ++r) {
      const std::string& name = pattern.schema().RelationName(r);
      // Either an input relation or a color.
      ddlog::PredId pred;
      auto input = fpp.schema.FindRelation(name);
      if (input.has_value()) {
        pred = *input;
      } else {
        auto color = std::find(fpp.colors.begin(), fpp.colors.end(), name);
        OBDA_CHECK(color != fpp.colors.end());
        pred = color_pred[color - fpp.colors.begin()];
      }
      for (std::uint32_t i = 0; i < pattern.NumTuples(r); ++i) {
        ddlog::Atom atom;
        atom.pred = pred;
        for (data::ConstId c : pattern.Tuple(r, i)) {
          atom.vars.push_back(static_cast<ddlog::VarId>(c));
        }
        body.push_back(std::move(atom));
      }
    }
    add_rule({{goal, {}}}, std::move(body));
  }
  return program;
}

base::Result<ForbiddenPatternProblem> MddlogToFpp(
    const ddlog::Program& program, std::size_t max_colors) {
  OBDA_RETURN_IF_ERROR(program.Validate());
  if (!program.IsMonadic() || program.QueryArity() != 0) {
    return base::InvalidArgumentError(
        "Prop 3.2 requires a Boolean monadic program");
  }
  // Non-goal IDBs.
  std::vector<ddlog::PredId> idbs;
  for (ddlog::PredId p = static_cast<ddlog::PredId>(program.NumEdb());
       p < program.NumPredicates(); ++p) {
    if (p != program.goal()) idbs.push_back(p);
  }
  if ((1ull << idbs.size()) > max_colors) {
    return base::ResourceExhaustedError("too many colors (2^#IDB)");
  }
  ForbiddenPatternProblem fpp;
  fpp.schema = program.edb_schema();
  const std::size_t num_colors = 1ull << idbs.size();
  for (std::size_t t = 0; t < num_colors; ++t) {
    fpp.colors.push_back("Color" + std::to_string(t));
  }
  data::Schema colored = fpp.ColoredSchema();

  for (const ddlog::Rule& rule : program.rules()) {
    // Skip tautologous rules (same atom in head and body).
    bool tautologous = false;
    for (const ddlog::Atom& h : rule.head) {
      for (const ddlog::Atom& b : rule.body) {
        if (h.pred == b.pred && h.vars == b.vars) tautologous = true;
      }
    }
    if (tautologous) continue;
    const int nv = rule.NumVars();
    // Per-variable constraints on the color subset.
    std::vector<std::uint64_t> must(static_cast<std::size_t>(nv), 0);
    std::vector<std::uint64_t> forbid(static_cast<std::size_t>(nv), 0);
    auto idb_bit = [&idbs](ddlog::PredId p) -> int {
      auto it = std::find(idbs.begin(), idbs.end(), p);
      OBDA_CHECK(it != idbs.end());
      return static_cast<int>(it - idbs.begin());
    };
    for (const ddlog::Atom& a : rule.body) {
      if (!program.IsEdb(a.pred)) {
        must[a.vars[0]] |= 1ull << idb_bit(a.pred);
      }
    }
    bool is_goal_rule =
        rule.head.size() == 1 && rule.head[0].pred == program.goal();
    if (!is_goal_rule) {
      for (const ddlog::Atom& a : rule.head) {
        forbid[a.vars[0]] |= 1ull << idb_bit(a.pred);
      }
    }
    // Enumerate color choices per variable consistent with must/forbid.
    std::vector<std::uint64_t> choice(static_cast<std::size_t>(nv), 0);
    std::function<void(int)> emit = [&](int v) {
      if (v == nv) {
        data::Instance pattern(colored);
        for (int x = 0; x < nv; ++x) {
          pattern.AddConstant("d" + std::to_string(x));
        }
        for (const ddlog::Atom& a : rule.body) {
          if (!program.IsEdb(a.pred)) continue;
          std::vector<data::ConstId> args;
          for (ddlog::VarId var : a.vars) {
            args.push_back(static_cast<data::ConstId>(var));
          }
          pattern.AddFact(a.pred, args);
        }
        for (int x = 0; x < nv; ++x) {
          auto rel = colored.FindRelation(
              "Color" + std::to_string(choice[x]));
          OBDA_CHECK(rel.has_value());
          pattern.AddFact(*rel, {static_cast<data::ConstId>(x)});
        }
        fpp.patterns.push_back(std::move(pattern));
        return;
      }
      for (std::uint64_t t = 0; t < num_colors; ++t) {
        if ((t & must[v]) != must[v]) continue;
        if ((t & forbid[v]) != 0) continue;
        choice[v] = t;
        emit(v + 1);
      }
    };
    emit(0);
  }
  return fpp;
}

}  // namespace obda::mmsnp
