#include "mmsnp/formula.h"

#include <algorithm>
#include <map>

#include "base/check.h"
#include "base/hash.h"
#include "sat/solver.h"

namespace obda::mmsnp {

int Implication::NumVars() const {
  int max_var = -1;
  for (const auto& atoms : {&body, &head}) {
    for (const Atom& a : *atoms) {
      for (int v : a.vars) max_var = std::max(max_var, v);
    }
  }
  return max_var + 1;
}

SoVarId Formula::AddSoVar(std::string name, int arity) {
  SoVarId id = static_cast<SoVarId>(so_vars_.size());
  so_vars_.push_back(SoVarInfo{std::move(name), arity});
  return id;
}

const std::string& Formula::SoVarName(SoVarId v) const {
  OBDA_CHECK_LT(v, so_vars_.size());
  return so_vars_[v].name;
}

int Formula::SoVarArity(SoVarId v) const {
  OBDA_CHECK_LT(v, so_vars_.size());
  return so_vars_[v].arity;
}

base::Status Formula::AddImplication(Implication imp) {
  for (const Atom& a : imp.head) {
    if (a.kind == AtomKind::kInput) {
      return base::InvalidArgumentError("input atom in implication head");
    }
    if (a.kind == AtomKind::kEquality) {
      return base::InvalidArgumentError("equality atom in implication head");
    }
    OBDA_CHECK_LT(a.pred, so_vars_.size());
    OBDA_CHECK_EQ(static_cast<int>(a.vars.size()),
                  so_vars_[a.pred].arity);
  }
  for (const Atom& a : imp.body) {
    if (a.kind == AtomKind::kSecondOrder) {
      OBDA_CHECK_LT(a.pred, so_vars_.size());
      OBDA_CHECK_EQ(static_cast<int>(a.vars.size()),
                    so_vars_[a.pred].arity);
    } else if (a.kind == AtomKind::kInput) {
      OBDA_CHECK_LT(a.pred, schema_.NumRelations());
      OBDA_CHECK_EQ(static_cast<int>(a.vars.size()),
                    schema_.Arity(static_cast<data::RelationId>(a.pred)));
    } else {
      OBDA_CHECK_EQ(a.vars.size(), 2u);
    }
  }
  implications_.push_back(std::move(imp));
  return base::Status::Ok();
}

bool Formula::IsMonadic() const {
  for (const auto& v : so_vars_) {
    if (v.arity != 1) return false;
  }
  return true;
}

bool Formula::IsGuarded() const {
  for (const Implication& imp : implications_) {
    for (const Atom& h : imp.head) {
      bool guarded = false;
      for (const Atom& b : imp.body) {
        if (b.kind == AtomKind::kEquality) continue;
        bool covers = true;
        for (int v : h.vars) {
          if (std::find(b.vars.begin(), b.vars.end(), v) == b.vars.end()) {
            covers = false;
            break;
          }
        }
        if (covers) {
          guarded = true;
          break;
        }
      }
      if (!guarded) return false;
    }
  }
  return true;
}

namespace {

using AtomKey = std::vector<std::uint32_t>;

struct Grounder {
  const Formula& formula;
  const data::Instance& instance;
  std::vector<data::ConstId> adom;
  sat::Solver solver;
  std::map<AtomKey, sat::Var> so_atoms;

  explicit Grounder(const Formula& f, const data::Instance& d)
      : formula(f), instance(d), adom(d.ActiveDomain()) {}

  sat::Var VarFor(SoVarId so, const std::vector<data::ConstId>& args) {
    AtomKey key;
    key.push_back(so);
    for (data::ConstId c : args) key.push_back(c);
    auto it = so_atoms.find(key);
    if (it != so_atoms.end()) return it->second;
    sat::Var v = solver.NewVar();
    so_atoms.emplace(std::move(key), v);
    return v;
  }

  void GroundImplication(const Implication& imp,
                         const std::vector<data::ConstId>& answer) {
    std::vector<data::ConstId> assign(
        static_cast<std::size_t>(imp.NumVars()), data::kInvalidConst);
    const int num_free = formula.num_free_vars();
    for (int i = 0; i < num_free && i < imp.NumVars(); ++i) {
      assign[i] = answer[i];
    }
    Recurse(imp, num_free, &assign);
  }

  void Recurse(const Implication& imp, int next_var,
               std::vector<data::ConstId>* assign) {
    if (next_var >= imp.NumVars()) {
      EmitClause(imp, *assign);
      return;
    }
    for (data::ConstId c : adom) {
      (*assign)[next_var] = c;
      Recurse(imp, next_var + 1, assign);
    }
  }

  void EmitClause(const Implication& imp,
                  const std::vector<data::ConstId>& assign) {
    std::vector<sat::Lit> clause;
    for (const Atom& a : imp.body) {
      if (a.kind == AtomKind::kEquality) {
        if (assign[a.vars[0]] != assign[a.vars[1]]) return;  // satisfied
        continue;
      }
      std::vector<data::ConstId> args;
      args.reserve(a.vars.size());
      for (int v : a.vars) args.push_back(assign[v]);
      if (a.kind == AtomKind::kInput) {
        if (!instance.HasFact(static_cast<data::RelationId>(a.pred),
                              args)) {
          return;  // body false: implication satisfied
        }
      } else {
        clause.push_back(sat::Lit::Neg(VarFor(a.pred, args)));
      }
    }
    for (const Atom& a : imp.head) {
      std::vector<data::ConstId> args;
      args.reserve(a.vars.size());
      for (int v : a.vars) args.push_back(assign[v]);
      clause.push_back(sat::Lit::Pos(VarFor(a.pred, args)));
    }
    solver.AddClause(std::move(clause));
  }
};

}  // namespace

base::Result<bool> Formula::Satisfied(
    const data::Instance& instance,
    const std::vector<data::ConstId>& answer) const {
  OBDA_CHECK_EQ(static_cast<int>(answer.size()), num_free_vars_);
  Grounder grounder(*this, instance);
  if (grounder.adom.empty()) {
    // Paper convention: the empty instance satisfies every sentence.
    return true;
  }
  for (const Implication& imp : implications_) {
    grounder.GroundImplication(imp, answer);
  }
  sat::SatOutcome outcome = grounder.solver.Solve({}, 50'000'000);
  if (outcome == sat::SatOutcome::kBudget) {
    return base::ResourceExhaustedError("MMSNP evaluation budget");
  }
  return outcome == sat::SatOutcome::kSat;
}

base::Result<std::vector<std::vector<data::ConstId>>> Formula::EvaluateCo(
    const data::Instance& instance) const {
  std::vector<std::vector<data::ConstId>> out;
  const std::vector<data::ConstId> adom = instance.ActiveDomain();
  if (num_free_vars_ > 0 && adom.empty()) return out;
  std::vector<std::size_t> idx(static_cast<std::size_t>(num_free_vars_), 0);
  for (;;) {
    std::vector<data::ConstId> tuple;
    for (int i = 0; i < num_free_vars_; ++i) tuple.push_back(adom[idx[i]]);
    auto sat = Satisfied(instance, tuple);
    if (!sat.ok()) return sat.status();
    if (!*sat) out.push_back(tuple);
    int pos = num_free_vars_ - 1;
    while (pos >= 0 && ++idx[pos] == adom.size()) {
      idx[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Formula::SymbolSize() const {
  std::size_t size = so_vars_.size();
  for (const Implication& imp : implications_) {
    size += 1;
    for (const auto& atoms : {&imp.body, &imp.head}) {
      for (const Atom& a : *atoms) size += 3 + a.vars.size();
    }
  }
  return size;
}

std::string Formula::ToString() const {
  std::string out = "∃";
  for (const auto& v : so_vars_) out += v.name + " ";
  out += "∀x̄ :\n";
  auto atom_str = [this](const Atom& a) {
    std::string s;
    if (a.kind == AtomKind::kEquality) {
      return "x" + std::to_string(a.vars[0]) + "=x" +
             std::to_string(a.vars[1]);
    }
    if (a.kind == AtomKind::kSecondOrder) {
      s = so_vars_[a.pred].name;
    } else {
      s = schema_.RelationName(static_cast<data::RelationId>(a.pred));
    }
    s += "(";
    for (std::size_t i = 0; i < a.vars.size(); ++i) {
      if (i > 0) s += ",";
      s += "x" + std::to_string(a.vars[i]);
    }
    s += ")";
    return s;
  };
  for (const Implication& imp : implications_) {
    out += "  ";
    for (std::size_t i = 0; i < imp.body.size(); ++i) {
      if (i > 0) out += " ∧ ";
      out += atom_str(imp.body[i]);
    }
    out += " → ";
    if (imp.head.empty()) out += "⊥";
    for (std::size_t i = 0; i < imp.head.size(); ++i) {
      if (i > 0) out += " ∨ ";
      out += atom_str(imp.head[i]);
    }
    out += "\n";
  }
  return out;
}

}  // namespace obda::mmsnp
