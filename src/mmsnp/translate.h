#ifndef OBDA_MMSNP_TRANSLATE_H_
#define OBDA_MMSNP_TRANSLATE_H_

#include "base/status.h"
#include "ddlog/program.h"
#include "mmsnp/formula.h"

namespace obda::mmsnp {

/// Translates a (G)MSNP formula into an equivalent DDlog program
/// (Prop 4.1 for MMSNP → MDDlog; Thm 4.2 for GMSNP → frontier-guarded
/// DDlog): the coMMSNP query of the formula equals the certain-answer
/// query of the program. Preprocessing enforces the proof's conditions:
/// free variables occur in every implication (padding with input atoms)
/// and equality atoms relate free variables only (others are merged
/// away). Monadic input yields an MDDlog program; guarded non-monadic
/// input yields a frontier-guarded program with the R(u)-guarded guess
/// rules.
base::Result<ddlog::Program> ToDdlog(const Formula& formula);

/// The converse translation (Prop 4.1 / Thm 4.2): every monadic (resp.
/// frontier-guarded) DDlog program becomes an equivalent MMSNP (resp.
/// GMSNP) formula, with goal-rule head variables replaced by free
/// variables (adding equalities for repeated positions).
base::Result<Formula> FromDdlog(const ddlog::Program& program);

/// Prop 5.2-style sentence collapse: a sentence Φ' over the schema
/// extended with fresh unary markers Mark1..Markk such that
/// ā ∈ qΦ(D) iff () ∈ qΦ'(D ∪ {Markᵢ(aᵢ)}) — the polynomial equivalence
/// used to transfer dichotomies from sentences to formulas.
Formula SentenceWithMarkers(const Formula& formula);

/// A forbidden patterns problem (paper §3, before Prop 3.2): colors C and
/// a set of C-colored S-instances F; D ∈ Forb(F) iff some coloring of D
/// avoids every pattern.
struct ForbiddenPatternProblem {
  data::Schema schema;                  // input relations S
  std::vector<std::string> colors;      // unary color relations
  /// Patterns over schema ∪ colors (each pattern element carries exactly
  /// one color fact).
  std::vector<data::Instance> patterns;

  /// The schema ∪ colors signature patterns live in.
  data::Schema ColoredSchema() const;

  /// D ∈ Forb(F)? Decided by SAT over colorings, with pattern matches
  /// enumerated as homomorphisms of the S-reduct.
  base::Result<bool> InForb(const data::Instance& instance) const;

  /// The coFPP Boolean query: q(D) = 1 iff D ∉ Forb(F).
  base::Result<bool> CoQuery(const data::Instance& instance) const;
};

/// Prop 3.2 forward: an FPP becomes an equivalent Boolean MDDlog program
/// (color-guessing rules + exclusivity + one goal rule per pattern).
base::Result<ddlog::Program> FppToMddlog(const ForbiddenPatternProblem& fpp);

/// Prop 3.2 backward: a Boolean MDDlog program becomes an equivalent
/// FPP whose colors are the subsets of the program's non-goal IDB set
/// (exponential, as in the proof). Fails when 2^#IDB exceeds
/// `max_colors`.
base::Result<ForbiddenPatternProblem> MddlogToFpp(
    const ddlog::Program& program, std::size_t max_colors = 64);

}  // namespace obda::mmsnp

#endif  // OBDA_MMSNP_TRANSLATE_H_
