#ifndef OBDA_MMSNP_FORMULA_H_
#define OBDA_MMSNP_FORMULA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "data/schema.h"

namespace obda::mmsnp {

/// Index of an existential second-order variable of a formula.
using SoVarId = std::uint32_t;

/// Atom kinds inside an implication.
enum class AtomKind {
  /// X(x̄) with X a second-order variable (monadic in MMSNP, any arity in
  /// GMSNP).
  kSecondOrder,
  /// R(x̄) with R an input relation.
  kInput,
  /// x = y (bodies only).
  kEquality,
};

/// One atom of an implication. First-order variables are
/// implication-local, except that ids < num_free_vars() refer to the
/// formula's free variables (shared across implications).
struct Atom {
  AtomKind kind = AtomKind::kInput;
  /// SO variable id or input RelationId (unused for equality).
  std::uint32_t pred = 0;
  std::vector<int> vars;
};

/// An implication  α1 ∧ ... ∧ αn → β1 ∨ ... ∨ βm  (paper §4.1). Heads
/// contain only second-order atoms.
struct Implication {
  std::vector<Atom> body;
  std::vector<Atom> head;

  int NumVars() const;
};

/// A (G)MSNP formula  ∃X1..Xn ∀x̄ ∧ᵢ ψᵢ  with free first-order variables
/// y1..yk (paper §4.1). The monadic, equality-restricted case is MMSNP;
/// allowing higher-arity SO variables with frontier-guarded heads gives
/// GMSNP.
class Formula {
 public:
  Formula(data::Schema schema, int num_free_vars)
      : schema_(std::move(schema)), num_free_vars_(num_free_vars) {}

  const data::Schema& schema() const { return schema_; }
  int num_free_vars() const { return num_free_vars_; }

  SoVarId AddSoVar(std::string name, int arity);
  std::size_t NumSoVars() const { return so_vars_.size(); }
  const std::string& SoVarName(SoVarId v) const;
  int SoVarArity(SoVarId v) const;

  /// Adds an implication. Aborts on malformed atoms; returns an error for
  /// input atoms in heads or equality atoms in heads.
  base::Status AddImplication(Implication imp);
  const std::vector<Implication>& implications() const {
    return implications_;
  }

  /// True if every SO variable is monadic (the first M of MMSNP).
  bool IsMonadic() const;
  /// True if every head atom has a body atom (SO or input) containing all
  /// of its variables (the G of GMSNP). Monadic formulas whose head
  /// variables occur in the body are automatically guarded.
  bool IsGuarded() const;

  /// Checks Φ[assignment] on (adom(D), D): does some interpretation of
  /// the SO variables satisfy all implications? Decided by SAT.
  /// `answer` assigns the free variables. The empty instance satisfies
  /// every sentence by convention (paper §4.1).
  base::Result<bool> Satisfied(const data::Instance& instance,
                               const std::vector<data::ConstId>& answer)
      const;

  /// The coMMSNP/coGMSNP query (paper §4.1): all tuples ā over adom with
  /// (adom(D), D) ⊭ Φ[ā], sorted.
  base::Result<std::vector<std::vector<data::ConstId>>> EvaluateCo(
      const data::Instance& instance) const;

  std::size_t SymbolSize() const;
  std::string ToString() const;

 private:
  struct SoVarInfo {
    std::string name;
    int arity;
  };

  data::Schema schema_;
  int num_free_vars_;
  std::vector<SoVarInfo> so_vars_;
  std::vector<Implication> implications_;
};

}  // namespace obda::mmsnp

#endif  // OBDA_MMSNP_FORMULA_H_
