#include "mmsnp/mmsnp2.h"

#include <algorithm>
#include <functional>
#include <map>

#include "base/check.h"
#include "sat/solver.h"

namespace obda::mmsnp {

int Mmsnp2Implication::NumVars() const {
  int max_var = -1;
  for (const auto& atoms : {&body, &head}) {
    for (const Mmsnp2Atom& a : *atoms) {
      for (int v : a.vars) max_var = std::max(max_var, v);
    }
  }
  return max_var + 1;
}

std::uint32_t Mmsnp2Formula::AddSoVar(std::string name) {
  so_names_.push_back(std::move(name));
  return static_cast<std::uint32_t>(so_names_.size() - 1);
}

const std::string& Mmsnp2Formula::SoVarName(std::uint32_t v) const {
  OBDA_CHECK_LT(v, so_names_.size());
  return so_names_[v];
}

base::Status Mmsnp2Formula::AddImplication(Mmsnp2Implication imp) {
  for (const Mmsnp2Atom& a : imp.head) {
    if (a.kind == Mmsnp2Atom::Kind::kInput ||
        a.kind == Mmsnp2Atom::Kind::kEquality) {
      return base::InvalidArgumentError("input/equality atom in head");
    }
    if (a.kind == Mmsnp2Atom::Kind::kFact) {
      // Guardedness: the guarded R(x̄) must appear in the body.
      bool guarded = false;
      for (const Mmsnp2Atom& b : imp.body) {
        if (b.kind == Mmsnp2Atom::Kind::kInput &&
            b.relation == a.relation && b.vars == a.vars) {
          guarded = true;
        }
      }
      if (!guarded) {
        return base::InvalidArgumentError(
            "head fact atom X(R(x̄)) without body atom R(x̄)");
      }
    }
  }
  implications_.push_back(std::move(imp));
  return base::Status::Ok();
}

namespace {

using AtomKey = std::vector<std::uint32_t>;

}  // namespace

base::Result<bool> Mmsnp2Formula::Satisfied(
    const data::Instance& instance) const {
  OBDA_CHECK(instance.schema().LayoutCompatible(schema_));
  const std::vector<data::ConstId> adom = instance.ActiveDomain();
  if (adom.empty()) return true;  // sentence convention

  // The grounded implication set is one monolithic satisfiability
  // question; the CDCL solver's learning/backjumping bounds the search
  // even on the adversarial instances the MMSNP₂ reductions produce.
  sat::Solver solver;
  std::map<AtomKey, sat::Var> vars;
  auto var_for = [&](AtomKey key) {
    auto it = vars.find(key);
    if (it != vars.end()) return it->second;
    sat::Var v = solver.NewVar();
    vars.emplace(std::move(key), v);
    return v;
  };
  // Element bit: [0, X, e]; fact bit: [1, X, rel, args...].
  for (const Mmsnp2Implication& imp : implications_) {
    std::vector<data::ConstId> assign(
        static_cast<std::size_t>(imp.NumVars()), 0);
    std::function<void(int)> ground = [&](int next) {
      if (next == imp.NumVars()) {
        std::vector<sat::Lit> clause;
        auto lit_of = [&](const Mmsnp2Atom& a,
                          bool positive) -> std::optional<sat::Lit> {
          if (a.kind == Mmsnp2Atom::Kind::kElement) {
            AtomKey key = {0, a.so_var, assign[a.vars[0]]};
            sat::Var v = var_for(std::move(key));
            return positive ? sat::Lit::Pos(v) : sat::Lit::Neg(v);
          }
          // Fact atom: false outright if the fact is absent.
          std::vector<data::ConstId> args;
          for (int x : a.vars) args.push_back(assign[x]);
          if (!instance.HasFact(
                  static_cast<data::RelationId>(a.relation), args)) {
            return std::nullopt;  // atom is false
          }
          AtomKey key = {1, a.so_var, a.relation};
          for (data::ConstId c : args) key.push_back(c);
          sat::Var v = var_for(std::move(key));
          return positive ? sat::Lit::Pos(v) : sat::Lit::Neg(v);
        };
        for (const Mmsnp2Atom& a : imp.body) {
          if (a.kind == Mmsnp2Atom::Kind::kEquality) {
            if (assign[a.vars[0]] != assign[a.vars[1]]) return;
            continue;
          }
          if (a.kind == Mmsnp2Atom::Kind::kInput) {
            std::vector<data::ConstId> args;
            for (int x : a.vars) args.push_back(assign[x]);
            if (!instance.HasFact(
                    static_cast<data::RelationId>(a.relation), args)) {
              return;  // body false
            }
            continue;
          }
          auto lit = lit_of(a, /*positive=*/false);
          if (!lit.has_value()) return;  // false body fact atom
          clause.push_back(*lit);
        }
        for (const Mmsnp2Atom& a : imp.head) {
          auto lit = lit_of(a, /*positive=*/true);
          if (lit.has_value()) clause.push_back(*lit);
          // An absent-fact head atom contributes nothing.
        }
        solver.AddClause(std::move(clause));
        return;
      }
      for (data::ConstId c : adom) {
        assign[next] = c;
        ground(next + 1);
      }
    };
    ground(0);
  }
  sat::SatOutcome outcome = solver.Solve({}, 50'000'000);
  if (outcome == sat::SatOutcome::kBudget) {
    return base::ResourceExhaustedError("MMSNP2 evaluation budget");
  }
  return outcome == sat::SatOutcome::kSat;
}

base::Result<bool> Mmsnp2Formula::CoQuery(
    const data::Instance& instance) const {
  auto sat = Satisfied(instance);
  if (!sat.ok()) return sat.status();
  return !*sat;
}

Formula Mmsnp2Formula::ToGmsnp() const {
  Formula out(schema_, 0);
  // X¹ per SO var; X^R per (SO var, relation).
  std::vector<SoVarId> elem_var(so_names_.size());
  std::map<std::pair<std::uint32_t, std::uint32_t>, SoVarId> fact_var;
  for (std::uint32_t x = 0; x < so_names_.size(); ++x) {
    elem_var[x] = out.AddSoVar(so_names_[x] + "_elem", 1);
  }
  for (std::uint32_t x = 0; x < so_names_.size(); ++x) {
    for (data::RelationId r = 0; r < schema_.NumRelations(); ++r) {
      fact_var[{x, r}] =
          out.AddSoVar(so_names_[x] + "_" + schema_.RelationName(r),
                       schema_.Arity(r));
    }
  }
  auto convert = [&](const Mmsnp2Atom& a) {
    Atom b;
    switch (a.kind) {
      case Mmsnp2Atom::Kind::kInput:
        b.kind = AtomKind::kInput;
        b.pred = a.relation;
        break;
      case Mmsnp2Atom::Kind::kElement:
        b.kind = AtomKind::kSecondOrder;
        b.pred = elem_var[a.so_var];
        break;
      case Mmsnp2Atom::Kind::kFact:
        b.kind = AtomKind::kSecondOrder;
        b.pred = fact_var.at({a.so_var, a.relation});
        break;
      case Mmsnp2Atom::Kind::kEquality:
        b.kind = AtomKind::kEquality;
        break;
    }
    b.vars = a.vars;
    return b;
  };
  for (const Mmsnp2Implication& imp : implications_) {
    Implication converted;
    for (const Mmsnp2Atom& a : imp.body) {
      converted.body.push_back(convert(a));
    }
    for (const Mmsnp2Atom& a : imp.head) {
      converted.head.push_back(convert(a));
    }
    OBDA_CHECK(out.AddImplication(std::move(converted)).ok());
  }
  return out;
}

std::string Mmsnp2Formula::ToString() const {
  std::string out = "MMSNP2 ∃";
  for (const auto& n : so_names_) out += n + " ";
  out += ":\n";
  auto atom_str = [this](const Mmsnp2Atom& a) {
    auto vars_str = [&a](std::size_t from) {
      std::string s = "(";
      for (std::size_t i = from; i < a.vars.size(); ++i) {
        if (i > from) s += ",";
        s += "x" + std::to_string(a.vars[i]);
      }
      return s + ")";
    };
    switch (a.kind) {
      case Mmsnp2Atom::Kind::kInput:
        return schema_.RelationName(
                   static_cast<data::RelationId>(a.relation)) +
               vars_str(0);
      case Mmsnp2Atom::Kind::kElement:
        return so_names_[a.so_var] + vars_str(0);
      case Mmsnp2Atom::Kind::kFact:
        return so_names_[a.so_var] + "(" +
               schema_.RelationName(
                   static_cast<data::RelationId>(a.relation)) +
               vars_str(0) + ")";
      case Mmsnp2Atom::Kind::kEquality:
        return "x" + std::to_string(a.vars[0]) + "=x" +
               std::to_string(a.vars[1]);
    }
    return std::string("?");
  };
  for (const Mmsnp2Implication& imp : implications_) {
    out += "  ";
    for (std::size_t i = 0; i < imp.body.size(); ++i) {
      if (i > 0) out += " ∧ ";
      out += atom_str(imp.body[i]);
    }
    out += " → ";
    if (imp.head.empty()) out += "⊥";
    for (std::size_t i = 0; i < imp.head.size(); ++i) {
      if (i > 0) out += " ∨ ";
      out += atom_str(imp.head[i]);
    }
    out += "\n";
  }
  return out;
}

// --- GMSNP → MMSNP2 (Thm 4.3, Appendix B construction) -----------------------

namespace {

/// A head-atom occurrence in the (normalized) GMSNP formula.
struct HeadOccurrence {
  std::size_t implication;
  std::size_t head_index;
  std::uint32_t so_var;            // original SO variable
  std::vector<int> vars;           // its argument variables
  std::uint32_t guard_relation;    // chosen input guard R_A
  std::vector<int> guard_vars;     // ȳ_A
};

}  // namespace

base::Result<Mmsnp2Formula> GmsnpToMmsnp2(const Formula& gmsnp) {
  if (gmsnp.num_free_vars() != 0) {
    return base::InvalidArgumentError("GmsnpToMmsnp2 expects a sentence");
  }
  if (!gmsnp.IsGuarded()) {
    return base::InvalidArgumentError("formula is not in GMSNP");
  }
  // Step 1: input-guarded heads. For every head atom there must be an
  // input body atom covering its variables (the proof's first w.l.o.g.
  // condition; padding with input conjuncts is a case split we reject
  // rather than silently altering semantics).
  for (const Implication& imp : gmsnp.implications()) {
    for (const Atom& h : imp.head) {
      bool guarded = false;
      for (const Atom& b : imp.body) {
        if (b.kind != AtomKind::kInput) continue;
        bool covers = true;
        for (int v : h.vars) {
          if (std::find(b.vars.begin(), b.vars.end(), v) == b.vars.end()) {
            covers = false;
          }
        }
        if (covers) guarded = true;
      }
      if (!guarded) {
        return base::UnimplementedError(
            "head atom lacks an input-relation guard; pad the formula "
            "first (proof of Thm 4.3, condition (1))");
      }
    }
  }

  // Step 2: close under identifying FO variables. Each implication is
  // replaced by all its quotients under partitions of its variable set
  // (the proof's condition (2)).
  std::vector<Implication> closed;
  for (const Implication& original : gmsnp.implications()) {
    const int nv = original.NumVars();
    if (nv > 8) {
      return base::ResourceExhaustedError(
          "identification closure too large (more than 8 variables)");
    }
    // Enumerate all maps v -> representative (restricted growth strings).
    std::vector<int> rep(static_cast<std::size_t>(std::max(nv, 1)), 0);
    std::function<void(int, int)> enumerate = [&](int v, int blocks) {
      if (v == nv || nv == 0) {
        Implication quotient;
        auto rewrite = [&](const Atom& a) {
          Atom b = a;
          for (int& x : b.vars) x = rep[x];
          return b;
        };
        for (const Atom& a : original.body) {
          quotient.body.push_back(rewrite(a));
        }
        for (const Atom& a : original.head) {
          quotient.head.push_back(rewrite(a));
        }
        closed.push_back(std::move(quotient));
        return;
      }
      for (int b = 0; b <= blocks; ++b) {
        rep[v] = b;
        enumerate(v + 1, std::max(blocks, b + 1));
      }
    };
    if (nv == 0) {
      closed.push_back(original);
    } else {
      enumerate(0, 0);
    }
  }

  // Step 3: collect head occurrences with chosen input guards; each
  // becomes a fresh MMSNP2 SO variable X_A.
  Mmsnp2Formula out(gmsnp.schema());
  std::vector<HeadOccurrence> occurrences;
  for (std::size_t i = 0; i < closed.size(); ++i) {
    for (std::size_t h = 0; h < closed[i].head.size(); ++h) {
      const Atom& atom = closed[i].head[h];
      HeadOccurrence occ;
      occ.implication = i;
      occ.head_index = h;
      occ.so_var = atom.pred;
      occ.vars = atom.vars;
      bool found = false;
      for (const Atom& b : closed[i].body) {
        if (b.kind != AtomKind::kInput) continue;
        bool covers = true;
        for (int v : atom.vars) {
          if (std::find(b.vars.begin(), b.vars.end(), v) == b.vars.end()) {
            covers = false;
          }
        }
        if (covers) {
          occ.guard_relation = b.pred;
          occ.guard_vars = b.vars;
          found = true;
          break;
        }
      }
      if (!found) {
        return base::InternalError("guard disappeared after closure");
      }
      out.AddSoVar("X" + std::to_string(occurrences.size()));
      occurrences.push_back(std::move(occ));
    }
  }

  // Step 4: translate every implication: head atoms become their fact
  // atoms; every body SO atom X(x̄) is expanded over all head
  // occurrences of X whose argument map x̄ -> z̄ is a well-defined
  // bijection of variable sets.
  for (std::size_t i = 0; i < closed.size(); ++i) {
    const Implication& imp = closed[i];
    // Per body SO atom: the list of (occurrence, rewritten guard vars).
    struct Choice {
      std::size_t occurrence;
      std::vector<int> guard_vars;  // in this implication's variables
    };
    std::vector<std::vector<Choice>> options;
    std::vector<const Atom*> so_body;
    int fresh_var = imp.NumVars();
    for (const Atom& b : imp.body) {
      if (b.kind != AtomKind::kSecondOrder) continue;
      so_body.push_back(&b);
      std::vector<Choice> choices;
      for (std::size_t oi = 0; oi < occurrences.size(); ++oi) {
        const HeadOccurrence& occ = occurrences[oi];
        if (occ.so_var != b.pred) continue;
        // Componentwise map z̄ -> x̄ must be a function and injective.
        std::map<int, int> rho;  // occ var -> body var
        bool ok = true;
        for (std::size_t p = 0; p < b.vars.size(); ++p) {
          auto [it, inserted] = rho.emplace(occ.vars[p], b.vars[p]);
          if (!inserted && it->second != b.vars[p]) ok = false;
        }
        std::map<int, int> inverse;
        for (const auto& [z, x] : rho) {
          auto [it, inserted] = inverse.emplace(x, z);
          (void)it;
          if (!inserted) ok = false;
        }
        if (!ok) continue;
        // Guard tuple: map occ.guard_vars through rho, fresh elsewhere.
        Choice choice;
        choice.occurrence = oi;
        std::map<int, int> fresh_map;
        for (int g : occ.guard_vars) {
          auto it = rho.find(g);
          if (it != rho.end()) {
            choice.guard_vars.push_back(it->second);
          } else {
            auto [fit, inserted] = fresh_map.emplace(g, fresh_var);
            if (inserted) ++fresh_var;
            choice.guard_vars.push_back(fit->second);
          }
        }
        choices.push_back(std::move(choice));
      }
      options.push_back(std::move(choices));
    }

    // Cartesian product over choices.
    std::vector<std::size_t> pick(options.size(), 0);
    std::uint64_t combos = 1;
    for (const auto& o : options) combos *= std::max<std::size_t>(1, o.size());
    if (combos > 4096) {
      return base::ResourceExhaustedError("too many ρ-choice combinations");
    }
    std::function<void(std::size_t)> emit = [&](std::size_t next) {
      if (next == options.size()) {
        Mmsnp2Implication translated;
        // Input and equality body atoms pass through.
        for (const Atom& b : imp.body) {
          if (b.kind == AtomKind::kInput) {
            Mmsnp2Atom a;
            a.kind = Mmsnp2Atom::Kind::kInput;
            a.relation = b.pred;
            a.vars = b.vars;
            translated.body.push_back(std::move(a));
          } else if (b.kind == AtomKind::kEquality) {
            Mmsnp2Atom a;
            a.kind = Mmsnp2Atom::Kind::kEquality;
            a.vars = b.vars;
            translated.body.push_back(std::move(a));
          }
        }
        // Chosen fact atoms for body SO atoms.
        for (std::size_t s = 0; s < options.size(); ++s) {
          const Choice& c = options[s][pick[s]];
          Mmsnp2Atom a;
          a.kind = Mmsnp2Atom::Kind::kFact;
          a.so_var = static_cast<std::uint32_t>(c.occurrence);
          a.relation = occurrences[c.occurrence].guard_relation;
          a.vars = c.guard_vars;
          translated.body.push_back(std::move(a));
        }
        // Head fact atoms (plus their guards already in the body).
        for (std::size_t h = 0; h < imp.head.size(); ++h) {
          // Find this occurrence.
          for (std::size_t oi = 0; oi < occurrences.size(); ++oi) {
            if (occurrences[oi].implication == i &&
                occurrences[oi].head_index == h) {
              Mmsnp2Atom a;
              a.kind = Mmsnp2Atom::Kind::kFact;
              a.so_var = static_cast<std::uint32_t>(oi);
              a.relation = occurrences[oi].guard_relation;
              a.vars = occurrences[oi].guard_vars;
              translated.head.push_back(std::move(a));
            }
          }
        }
        // Discard silently-impossible implications (an SO body atom with
        // no matching occurrence makes the body unsatisfiable).
        OBDA_CHECK(out.AddImplication(std::move(translated)).ok());
        return;
      }
      if (options[next].empty()) return;  // body unsatisfiable: drop
      for (std::size_t c = 0; c < options[next].size(); ++c) {
        pick[next] = c;
        emit(next + 1);
      }
    };
    emit(0);
  }
  return out;
}

}  // namespace obda::mmsnp
