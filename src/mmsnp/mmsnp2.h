#ifndef OBDA_MMSNP_MMSNP2_H_
#define OBDA_MMSNP_MMSNP2_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "mmsnp/formula.h"

namespace obda::mmsnp {

/// An atom of an MMSNP₂ implication (paper §4.1, after Thm 4.2): either
/// a first-order atom over an input relation, an element atom X(x), or a
/// *fact atom* X(R(x̄)) — the monadic SO variable X ranges over sets of
/// domain elements AND facts [Madelaine 2009].
struct Mmsnp2Atom {
  enum class Kind { kInput, kElement, kFact, kEquality };
  Kind kind = Kind::kInput;
  std::uint32_t so_var = 0;        // kElement / kFact
  std::uint32_t relation = 0;      // kInput / kFact (RelationId)
  std::vector<int> vars;
};

struct Mmsnp2Implication {
  std::vector<Mmsnp2Atom> body;
  std::vector<Mmsnp2Atom> head;  // kElement / kFact atoms only

  int NumVars() const;
};

/// An MMSNP₂ sentence: ∃X1..Xn ∀x̄ ∧ implications, with the guardedness
/// condition that a head fact atom X(R(x̄)) requires the atom R(x̄) in
/// the body. Thm 4.3: MMSNP₂ ≡ GMSNP; Cor 4.4 (via Thm 4.2 and
/// Prop 3.15): strictly more expressive than MMSNP — resolving the open
/// problem of [Madelaine 2009].
class Mmsnp2Formula {
 public:
  explicit Mmsnp2Formula(data::Schema schema)
      : schema_(std::move(schema)) {}

  const data::Schema& schema() const { return schema_; }

  std::uint32_t AddSoVar(std::string name);
  std::size_t NumSoVars() const { return so_names_.size(); }
  const std::string& SoVarName(std::uint32_t v) const;

  /// Adds an implication; checks the guardedness of head fact atoms and
  /// rejects input atoms in heads.
  base::Status AddImplication(Mmsnp2Implication imp);
  const std::vector<Mmsnp2Implication>& implications() const {
    return implications_;
  }

  /// Direct evaluation of the sentence on (adom(D), D) by SAT: SO
  /// variables get one bit per element and one bit per fact of D.
  base::Result<bool> Satisfied(const data::Instance& instance) const;

  /// The coMMSNP₂ Boolean query (complement).
  base::Result<bool> CoQuery(const data::Instance& instance) const;

  /// Thm 4.3 (the direction used by Cor 4.4): translates to an
  /// equivalent GMSNP sentence — X(x) becomes X¹(x), X(R(x̄)) becomes a
  /// relation-indexed SO variable X^R(x̄); guardedness carries over.
  Formula ToGmsnp() const;

  std::string ToString() const;

 private:
  data::Schema schema_;
  std::vector<std::string> so_names_;
  std::vector<Mmsnp2Implication> implications_;
};

/// The other direction of Thm 4.3: every GMSNP sentence (Boolean,
/// guarded) translates to an equivalent MMSNP₂ sentence following the
/// proof in Appendix B — each head atom A = X(x̄) picks a body guard
/// R_A(ȳ_A) and becomes the fact atom X_A(R_A(ȳ_A)); body SO atoms are
/// expanded over all head atoms that could have produced them (variable
/// bijections ρ).
base::Result<Mmsnp2Formula> GmsnpToMmsnp2(const Formula& gmsnp);

}  // namespace obda::mmsnp

#endif  // OBDA_MMSNP_MMSNP2_H_
