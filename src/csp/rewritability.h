#ifndef OBDA_CSP_REWRITABILITY_H_
#define OBDA_CSP_REWRITABILITY_H_

#include "base/status.h"
#include "csp/query.h"

namespace obda::csp {

/// Decides FO-rewritability of a generalized coCSP with marked elements
/// (paper Thm 5.15): reduce the template set to homomorphically
/// incomparable representatives, collapse marks into fresh unary
/// relations (Prop 5.11 / Lemma 5.12), and run the Larose–Loten–Tardif
/// dismantlability test on each collapsed template.
base::Result<bool> IsFoRewritable(const CoCspQuery& query);

/// Decides datalog-rewritability analogously, using the bounded-width
/// (WNU) test on each collapsed template (paper Thm 5.15 / 5.10).
base::Result<bool> IsDatalogRewritable(const CoCspQuery& query);

}  // namespace obda::csp

#endif  // OBDA_CSP_REWRITABILITY_H_
