#include "csp/query.h"

#include <algorithm>

#include "base/check.h"

namespace obda::csp {

CoCspQuery CoCspQuery::ForTemplate(data::Instance b) {
  CoCspQuery q(b.schema(), 0);
  q.AddTemplate(data::MarkedInstance{std::move(b), {}});
  return q;
}

void CoCspQuery::AddTemplate(data::MarkedInstance t) {
  OBDA_CHECK_EQ(static_cast<int>(t.marks.size()), arity_);
  OBDA_CHECK(t.instance.schema().LayoutCompatible(schema_));
  templates_.push_back(std::move(t));
}

namespace {

/// One template compiled for repeated (D, d̄) probes.
struct CompiledTemplate {
  data::CompiledTarget target;
  const std::vector<data::ConstId>* marks;
};

std::vector<CompiledTemplate> CompileTemplates(
    const std::vector<data::MarkedInstance>& templates) {
  std::vector<CompiledTemplate> out;
  out.reserve(templates.size());
  for (const data::MarkedInstance& t : templates) {
    out.push_back(CompiledTemplate{data::CompiledTarget(t.instance),
                                   &t.marks});
  }
  return out;
}

bool IsAnswerCompiled(const data::Instance& instance,
                      const std::vector<data::ConstId>& tuple,
                      const std::vector<CompiledTemplate>& templates) {
  data::MarkedInstance src{instance, tuple};
  for (const CompiledTemplate& t : templates) {
    if (data::MarkedHomomorphismExists(src, t.target, *t.marks)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool CoCspQuery::IsAnswer(const data::Instance& instance,
                          const std::vector<data::ConstId>& tuple) const {
  OBDA_CHECK_EQ(static_cast<int>(tuple.size()), arity_);
  data::MarkedInstance src{instance, tuple};
  for (const data::MarkedInstance& t : templates_) {
    if (data::MarkedHomomorphismExists(src, t)) return false;
  }
  return true;
}

std::vector<std::vector<data::ConstId>> CoCspQuery::Evaluate(
    const data::Instance& instance) const {
  std::vector<std::vector<data::ConstId>> out;
  const std::vector<data::ConstId> adom = instance.ActiveDomain();
  // Each template is probed once per candidate tuple; compile them once.
  const std::vector<CompiledTemplate> compiled =
      CompileTemplates(templates_);
  if (arity_ == 0) {
    if (IsAnswerCompiled(instance, {}, compiled)) out.push_back({});
    return out;
  }
  if (adom.empty()) return out;
  std::vector<std::size_t> idx(static_cast<std::size_t>(arity_), 0);
  for (;;) {
    std::vector<data::ConstId> tuple;
    tuple.reserve(arity_);
    for (int i = 0; i < arity_; ++i) tuple.push_back(adom[idx[i]]);
    if (IsAnswerCompiled(instance, tuple, compiled)) out.push_back(tuple);
    int pos = arity_ - 1;
    while (pos >= 0 && ++idx[pos] == adom.size()) {
      idx[pos] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

CoCspQuery CoCspQuery::ReduceToIncomparable() const {
  // Keep template i unless it maps into some kept template j != i.
  // Greedy scan: drop i if it maps into any j that is not itself dropped
  // in favour of i (asymmetric tie-break by index).
  const std::vector<CompiledTemplate> compiled =
      CompileTemplates(templates_);
  std::vector<bool> dropped(templates_.size(), false);
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    if (dropped[i]) continue;
    for (std::size_t j = 0; j < templates_.size(); ++j) {
      if (i == j || dropped[j]) continue;
      if (data::MarkedHomomorphismExists(templates_[i], compiled[j].target,
                                         *compiled[j].marks)) {
        // i's answers are implied by j: (D,d)→B_i→B_j, so B_i is
        // redundant for the "no hom" condition ... careful: template i is
        // redundant iff B_i → B_j (hom to i implies hom to j is wrong
        // direction). If B_i → B_j then any (D,d)→B_i also →B_j, so
        // forbidding B_j-homs is the stronger condition and B_i adds
        // nothing ONLY IF we keep B_j. Drop i, keep j.
        dropped[i] = true;
        break;
      }
    }
  }
  CoCspQuery out(schema_, arity_);
  for (std::size_t i = 0; i < templates_.size(); ++i) {
    if (!dropped[i]) out.AddTemplate(templates_[i]);
  }
  return out;
}

std::vector<data::Instance> CoCspQuery::CollapsedTemplates() const {
  data::Schema extended = schema_;
  for (int i = 0; i < arity_; ++i) {
    extended.AddRelation("Mark" + std::to_string(i + 1), 1);
  }
  std::vector<data::Instance> out;
  for (const data::MarkedInstance& t : templates_) {
    data::Instance c = t.instance.ReductTo(extended);
    for (int i = 0; i < arity_; ++i) {
      data::RelationId mark =
          *extended.FindRelation("Mark" + std::to_string(i + 1));
      // Constants keep their ids under ReductTo (it adds them in order).
      c.AddFact(mark, {t.marks[i]});
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::string CoCspQuery::ToString() const {
  std::string out = "coCSP over " + schema_.ToString() + ", arity " +
                    std::to_string(arity_) + ", " +
                    std::to_string(templates_.size()) + " template(s)\n";
  for (const auto& t : templates_) {
    out += "--- template (marks:";
    for (data::ConstId m : t.marks) {
      out += " " + t.instance.ConstantName(m);
    }
    out += ")\n" + t.instance.ToString();
  }
  return out;
}

bool CoCspContained(const CoCspQuery& f, const CoCspQuery& f_prime) {
  OBDA_CHECK_EQ(f.arity(), f_prime.arity());
  // coCSP(F) ⊆ coCSP(F') iff hom-to-F' implies hom-to-F iff every
  // F'-template maps into some F-template (take (D,d) := the F'-template
  // for necessity; compose homomorphisms for sufficiency).
  const std::vector<CompiledTemplate> compiled =
      CompileTemplates(f.templates());
  for (const data::MarkedInstance& b_prime : f_prime.templates()) {
    bool maps = false;
    for (const CompiledTemplate& b : compiled) {
      if (data::MarkedHomomorphismExists(b_prime, b.target, *b.marks)) {
        maps = true;
        break;
      }
    }
    if (!maps) return false;
  }
  return true;
}

}  // namespace obda::csp
