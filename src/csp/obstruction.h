#ifndef OBDA_CSP_OBSTRUCTION_H_
#define OBDA_CSP_OBSTRUCTION_H_

#include <vector>

#include "base/status.h"
#include "data/instance.h"

namespace obda::csp {

/// Options for obstruction enumeration.
struct ObstructionOptions {
  /// Maximum number of elements in a candidate tree.
  int max_nodes = 5;
  /// Safety cap on the number of candidate instances examined.
  std::uint64_t max_candidates = 2'000'000;
  /// Worker count for the criticality sweep and the minimal-representative
  /// filter: 1 = sequential, 0 = the process-wide pool (OBDA_THREADS),
  /// N > 1 = a dedicated pool. The returned set is byte-identical for
  /// every value.
  int threads = 0;
};

/// Enumerates critical tree obstructions of CSP(B) up to the node bound:
/// tree-shaped instances T (directed trees with one relation label per
/// edge plus arbitrary unary decorations) with T ↛ B but T−f → B for
/// every fact f. The result is reduced to homomorphism-minimal
/// representatives.
///
/// For a template with finite duality (IsFoDefinable), the obstruction
/// set is finite and consists of trees [Nešetřil–Tardif]; if the bound
/// covers it, the returned set Ω is a complete obstruction set:
/// D → B iff no T ∈ Ω maps into D. Completeness relative to the bound
/// only — callers should validate on samples (see tests) or grow the
/// bound. Requires a binary schema.
base::Result<std::vector<data::Instance>> TreeObstructions(
    const data::Instance& b,
    const ObstructionOptions& options = ObstructionOptions());

}  // namespace obda::csp

#endif  // OBDA_CSP_OBSTRUCTION_H_
