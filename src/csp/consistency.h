#ifndef OBDA_CSP_CONSISTENCY_H_
#define OBDA_CSP_CONSISTENCY_H_

#include <cstdint>
#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "ddlog/program.h"

namespace obda::csp {

/// Arc consistency (width-1 local consistency) for the CSP "D → B?".
/// Returns true if AC derives a contradiction (then certainly D ↛ B;
/// sound always, complete exactly for templates with tree duality).
bool ArcConsistencyRefutes(const data::Instance& d, const data::Instance& b);

/// (2,3)-consistency (pair sets with triangle propagation) for binary
/// schemas. Sound refutation of D → B; by Barto–Kozik, complete for every
/// template of bounded width — this is the PTime evaluation procedure
/// behind datalog-rewritability (paper §5.3).
bool PairwiseConsistencyRefutes(const data::Instance& d,
                                const data::Instance& b);

/// Result of a consistency propagation that also reports, per element of
/// D, which images in dom(B) survived. `surviving[x]` is a bitmask over
/// dom(B): bit v is set iff x → v was not pruned. Any homomorphism h of
/// D (or of any extension of D by additional facts) into B satisfies
/// h(x) ∈ surviving[x], which is what makes per-tuple certification
/// sound: if every surviving image of x violates an extra constraint the
/// extension would impose, the extension has no homomorphism either.
/// `surviving` is empty when the masks are unavailable (dom(B) > 64);
/// `refuted` is still meaningful in that case.
struct ConsistencyDomains {
  bool refuted = false;
  std::vector<std::uint64_t> surviving;
};

/// Arc-consistency variant of ArcConsistencyRefutes that additionally
/// extracts the per-element surviving-image masks.
ConsistencyDomains ArcConsistencyDomains(const data::Instance& d,
                                         const data::Instance& b);

/// (2,3)-consistency variant of PairwiseConsistencyRefutes that extracts
/// the surviving-image masks from the diagonal pair sets. Requires a
/// binary schema; stronger (prunes at least as much) than
/// ArcConsistencyDomains but cubic in |D|, so callers should cap |D|.
ConsistencyDomains PairwiseConsistencyDomains(const data::Instance& d,
                                              const data::Instance& b);

/// Materializes the canonical width-1 (arc-consistency) monadic datalog
/// program for coCSP(B) over B's schema (Feder–Vardi canonical datalog,
/// paper §5.3): IDB predicates P_S for every S ⊆ dom(B) ("x maps into
/// S"), propagation rules through every relation, intersection rules, and
/// goal() ← P_∅(x). The program computes exactly arc consistency, so it
/// is a datalog-rewriting of coCSP(B) whenever B has tree duality.
/// Fails if dom(B) exceeds `max_elements` (the program has 2^|dom|
/// predicates).
base::Result<ddlog::Program> CanonicalArcConsistencyProgram(
    const data::Instance& b, int max_elements = 6);

}  // namespace obda::csp

#endif  // OBDA_CSP_CONSISTENCY_H_
