#ifndef OBDA_CSP_CONSISTENCY_H_
#define OBDA_CSP_CONSISTENCY_H_

#include "base/status.h"
#include "data/instance.h"
#include "ddlog/program.h"

namespace obda::csp {

/// Arc consistency (width-1 local consistency) for the CSP "D → B?".
/// Returns true if AC derives a contradiction (then certainly D ↛ B;
/// sound always, complete exactly for templates with tree duality).
bool ArcConsistencyRefutes(const data::Instance& d, const data::Instance& b);

/// (2,3)-consistency (pair sets with triangle propagation) for binary
/// schemas. Sound refutation of D → B; by Barto–Kozik, complete for every
/// template of bounded width — this is the PTime evaluation procedure
/// behind datalog-rewritability (paper §5.3).
bool PairwiseConsistencyRefutes(const data::Instance& d,
                                const data::Instance& b);

/// Materializes the canonical width-1 (arc-consistency) monadic datalog
/// program for coCSP(B) over B's schema (Feder–Vardi canonical datalog,
/// paper §5.3): IDB predicates P_S for every S ⊆ dom(B) ("x maps into
/// S"), propagation rules through every relation, intersection rules, and
/// goal() ← P_∅(x). The program computes exactly arc consistency, so it
/// is a datalog-rewriting of coCSP(B) whenever B has tree duality.
/// Fails if dom(B) exceeds `max_elements` (the program has 2^|dom|
/// predicates).
base::Result<ddlog::Program> CanonicalArcConsistencyProgram(
    const data::Instance& b, int max_elements = 6);

}  // namespace obda::csp

#endif  // OBDA_CSP_CONSISTENCY_H_
