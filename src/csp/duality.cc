#include "csp/duality.h"

#include <algorithm>

#include "base/check.h"
#include "data/homomorphism.h"

namespace obda::csp {

bool Dominates(const data::Instance& inst, data::ConstId b,
               data::ConstId a) {
  if (a == b) return true;
  for (const data::FactRef& f : inst.FactsOf(a)) {
    auto t = inst.Tuple(f.relation, f.tuple_index);
    for (std::size_t p = 0; p < t.size(); ++p) {
      if (t[p] != a) continue;
      std::vector<data::ConstId> replaced(t.begin(), t.end());
      replaced[p] = b;
      if (!inst.HasFact(f.relation, replaced)) return false;
    }
  }
  return true;
}

data::Instance Dismantle(const data::Instance& inst,
                         const std::vector<data::ConstId>&
                             protected_elements) {
  data::Instance current = inst;
  // Track protection by constant name (ids change across induced
  // subinstances).
  std::vector<std::string> protected_names;
  protected_names.reserve(protected_elements.size());
  for (data::ConstId c : protected_elements) {
    protected_names.push_back(inst.ConstantName(c));
  }
  bool changed = true;
  while (changed) {
    changed = false;
    const std::size_t n = current.UniverseSize();
    for (data::ConstId a = 0; a < n && !changed; ++a) {
      const std::string& name = current.ConstantName(a);
      if (std::find(protected_names.begin(), protected_names.end(), name) !=
          protected_names.end()) {
        continue;
      }
      for (data::ConstId b = 0; b < n; ++b) {
        if (a == b) continue;
        if (Dominates(current, b, a)) {
          std::vector<data::ConstId> keep;
          keep.reserve(n - 1);
          for (data::ConstId c = 0; c < n; ++c) {
            if (c != a) keep.push_back(c);
          }
          current = current.InducedSubinstance(keep);
          changed = true;
          break;
        }
      }
    }
  }
  return current;
}

data::Instance PowerStructure(const data::Instance& b) {
  const std::size_t n = b.UniverseSize();
  OBDA_CHECK_LE(n, 10u);  // ℘ has 2^n - 1 elements
  data::Instance out(b.schema());
  const std::uint32_t num_sets = (1u << n) - 1;  // nonempty subsets
  for (std::uint32_t s = 1; s <= num_sets; ++s) {
    out.AddConstant("S" + std::to_string(s));
  }
  auto element_of = [](std::uint32_t s) {
    return static_cast<data::ConstId>(s - 1);
  };
  for (data::RelationId r = 0; r < b.schema().NumRelations(); ++r) {
    const int arity = b.schema().Arity(r);
    if (arity == 0) {
      if (b.NumTuples(r) > 0) out.AddFact(r, {});
      continue;
    }
    // Enumerate tuples of subsets; keep the subdirect ones.
    std::vector<std::uint32_t> sets(static_cast<std::size_t>(arity), 1);
    for (;;) {
      bool subdirect = true;
      for (int i = 0; i < arity && subdirect; ++i) {
        for (std::size_t bi = 0; bi < n && subdirect; ++bi) {
          if (((sets[i] >> bi) & 1u) == 0) continue;
          // b_i = bi must extend to a tuple of R^B through the sets.
          bool extends = false;
          for (std::uint32_t t = 0; t < b.NumTuples(r) && !extends; ++t) {
            auto tuple = b.Tuple(r, t);
            if (tuple[i] != static_cast<data::ConstId>(bi)) continue;
            bool inside = true;
            for (int j = 0; j < arity; ++j) {
              if (((sets[j] >> tuple[j]) & 1u) == 0) {
                inside = false;
                break;
              }
            }
            extends = inside;
          }
          subdirect = extends;
        }
      }
      if (subdirect) {
        std::vector<data::ConstId> args;
        for (int i = 0; i < arity; ++i) args.push_back(element_of(sets[i]));
        out.AddFact(r, args);
      }
      int pos = arity - 1;
      while (pos >= 0 && ++sets[pos] == num_sets + 1) {
        sets[pos] = 1;
        --pos;
      }
      if (pos < 0) break;
    }
  }
  return out;
}

base::Result<bool> HasTreeDuality(const data::Instance& b) {
  data::Instance core = data::CoreOf(b);
  if (core.UniverseSize() == 0) return true;
  data::Instance power = PowerStructure(core);
  return data::HomomorphismExists(power, core);
}

bool IsFoDefinable(const data::Instance& b) {
  data::Instance core = data::CoreOf(b);
  const std::size_t n = core.UniverseSize();
  if (n == 0) return true;  // empty template: trivial query
  data::Instance square = data::DirectProduct(core, core);
  std::vector<data::ConstId> diagonal;
  diagonal.reserve(n);
  for (data::ConstId c = 0; c < n; ++c) {
    diagonal.push_back(data::ProductElement(c, c, n));
  }
  data::Instance dismantled = Dismantle(square, diagonal);
  return dismantled.UniverseSize() == n;  // only the diagonal remains
}

}  // namespace obda::csp
