#ifndef OBDA_CSP_WIDTH_H_
#define OBDA_CSP_WIDTH_H_

#include <cstdint>

#include "base/status.h"
#include "data/instance.h"

namespace obda::csp {

/// Options for the polymorphism search.
struct WidthOptions {
  std::uint64_t max_decisions = 50'000'000;
};

/// Searches (via SAT over the operation table) for a weak near-unanimity
/// polymorphism of the given arity on `b`: an idempotent operation
/// f : B^k → B preserving all relations of `b` with
/// f(y,x,..,x) = f(x,y,..,x) = ... = f(x,x,..,y).
base::Result<bool> HasWnuPolymorphism(const data::Instance& b, int arity,
                                      const WidthOptions& options =
                                          WidthOptions());

/// Bounded-width test (paper Thm 5.10 datalog part; DESIGN.md §5.3):
/// following Barto–Kozik, a core template has bounded width — hence
/// coCSP(B) is datalog-rewritable — iff it has WNU polymorphisms w3, w4
/// of arities 3 and 4 with w3(y,x,x) = w4(y,x,x,x). The search runs on
/// core(b).
base::Result<bool> HasBoundedWidth(const data::Instance& b,
                                   const WidthOptions& options =
                                       WidthOptions());

/// Convenience: searches for a majority polymorphism (near-unanimity of
/// arity 3: m(y,x,x)=m(x,y,x)=m(x,x,y)=x). Majority implies bounded width
/// ("bounded strict width"); exposed for ablation benches.
base::Result<bool> HasMajorityPolymorphism(const data::Instance& b,
                                           const WidthOptions& options =
                                               WidthOptions());

}  // namespace obda::csp

#endif  // OBDA_CSP_WIDTH_H_
