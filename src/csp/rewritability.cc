#include "csp/rewritability.h"

#include "csp/duality.h"
#include "csp/width.h"

namespace obda::csp {

base::Result<bool> IsFoRewritable(const CoCspQuery& query) {
  CoCspQuery reduced = query.ReduceToIncomparable();
  for (const data::Instance& collapsed : reduced.CollapsedTemplates()) {
    if (!IsFoDefinable(collapsed)) return false;
  }
  return true;
}

base::Result<bool> IsDatalogRewritable(const CoCspQuery& query) {
  CoCspQuery reduced = query.ReduceToIncomparable();
  for (const data::Instance& collapsed : reduced.CollapsedTemplates()) {
    auto bounded = HasBoundedWidth(collapsed);
    if (!bounded.ok()) return bounded.status();
    if (!*bounded) return false;
  }
  return true;
}

}  // namespace obda::csp
