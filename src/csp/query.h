#ifndef OBDA_CSP_QUERY_H_
#define OBDA_CSP_QUERY_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "data/homomorphism.h"
#include "data/instance.h"

namespace obda::csp {

/// A generalized coCSP query with marked elements (paper §4.2): a finite
/// set F of n-ary marked templates; the answers on an instance D are the
/// tuples d̄ ∈ adom(D)^n with (D, d̄) ↛ (B, b̄) for every template.
///
/// Plain coCSP is the case of a single 0-ary template; generalized coCSP
/// is several 0-ary templates.
class CoCspQuery {
 public:
  /// Creates a query of the given arity (all templates must carry exactly
  /// `arity` marks and share a layout-compatible schema).
  CoCspQuery(data::Schema schema, int arity)
      : schema_(std::move(schema)), arity_(arity) {}

  /// Convenience: plain coCSP(B).
  static CoCspQuery ForTemplate(data::Instance b);

  const data::Schema& schema() const { return schema_; }
  int arity() const { return arity_; }
  const std::vector<data::MarkedInstance>& templates() const {
    return templates_;
  }

  void AddTemplate(data::MarkedInstance t);

  /// True if d̄ is an answer on D: no marked homomorphism to any template.
  bool IsAnswer(const data::Instance& instance,
                const std::vector<data::ConstId>& tuple) const;

  /// All answers on D, sorted.
  std::vector<std::vector<data::ConstId>> Evaluate(
      const data::Instance& instance) const;

  /// Reduces the template set to homomorphically incomparable
  /// representatives of the same query (paper, discussion before
  /// Thm 5.15): templates that map into another template are dropped.
  CoCspQuery ReduceToIncomparable() const;

  /// The collapse (B, b̄)ᶜ of each template: marks become fresh unary
  /// relations Mark1..Markn (paper §5.3). Returns 0-ary templates over the
  /// extended schema.
  std::vector<data::Instance> CollapsedTemplates() const;

  std::string ToString() const;

 private:
  data::Schema schema_;
  int arity_;
  std::vector<data::MarkedInstance> templates_;
};

/// Query containment coCSP(F) ⊆ coCSP(F'): holds iff every template of F'
/// maps (marked-homomorphically) into some template of F. (NP in template
/// size; the basis of Thm 5.7.)
bool CoCspContained(const CoCspQuery& f, const CoCspQuery& f_prime);

}  // namespace obda::csp

#endif  // OBDA_CSP_QUERY_H_
