#include "csp/width.h"

#include <vector>

#include "base/check.h"
#include "data/ops.h"
#include "sat/solver.h"

namespace obda::csp {

namespace {

using sat::Lit;
using sat::Solver;
using sat::Var;

/// A SAT-encoded operation table f : B^k -> B (one-hot per entry).
class OperationTable {
 public:
  OperationTable(Solver* solver, int domain, int arity)
      : solver_(solver), domain_(domain), arity_(arity) {
    std::size_t entries = 1;
    for (int i = 0; i < arity; ++i) entries *= domain;
    vars_.resize(entries * domain);
    for (auto& v : vars_) v = solver_->NewVar();
    // Exactly-one value per entry.
    for (std::size_t e = 0; e < entries; ++e) {
      std::vector<Lit> at_least;
      for (int v = 0; v < domain; ++v) {
        at_least.push_back(Lit::Pos(VarFor(e, v)));
      }
      solver_->AddClause(at_least);
      for (int v1 = 0; v1 < domain; ++v1) {
        for (int v2 = v1 + 1; v2 < domain; ++v2) {
          solver_->AddClause(
              {Lit::Neg(VarFor(e, v1)), Lit::Neg(VarFor(e, v2))});
        }
      }
    }
  }

  std::size_t EntryOf(const std::vector<int>& args) const {
    OBDA_CHECK_EQ(static_cast<int>(args.size()), arity_);
    std::size_t e = 0;
    for (int a : args) {
      OBDA_CHECK_LT(a, domain_);
      e = e * domain_ + static_cast<std::size_t>(a);
    }
    return e;
  }

  Var VarFor(std::size_t entry, int value) const {
    return vars_[entry * domain_ + value];
  }

  /// Forces f(args) = value.
  void ForceValue(const std::vector<int>& args, int value) {
    solver_->AddClause({Lit::Pos(VarFor(EntryOf(args), value))});
  }

  /// Forces f(args1) = f(args2).
  void ForceEqual(const std::vector<int>& args1,
                  const std::vector<int>& args2) {
    std::size_t e1 = EntryOf(args1);
    std::size_t e2 = EntryOf(args2);
    for (int v = 0; v < domain_; ++v) {
      solver_->AddClause({Lit::Neg(VarFor(e1, v)), Lit::Pos(VarFor(e2, v))});
      solver_->AddClause({Lit::Pos(VarFor(e1, v)), Lit::Neg(VarFor(e2, v))});
    }
  }

  /// Forces f(args1) (this table) = g(args2) (other table).
  void ForceEqualAcross(const std::vector<int>& args1,
                        const OperationTable& other,
                        const std::vector<int>& args2) {
    std::size_t e1 = EntryOf(args1);
    std::size_t e2 = other.EntryOf(args2);
    OBDA_CHECK_EQ(domain_, other.domain_);
    for (int v = 0; v < domain_; ++v) {
      solver_->AddClause(
          {Lit::Neg(VarFor(e1, v)), Lit::Pos(other.VarFor(e2, v))});
      solver_->AddClause(
          {Lit::Pos(VarFor(e1, v)), Lit::Neg(other.VarFor(e2, v))});
    }
  }

  /// Adds the polymorphism-preservation constraints for all relations of
  /// `b`: for every k-tuple of R-tuples, the componentwise image is in R.
  void AddPreservation(const data::Instance& b) {
    const data::Schema& schema = b.schema();
    for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
      const int rel_arity = schema.Arity(r);
      if (rel_arity == 0) continue;
      const std::size_t num_tuples = b.NumTuples(r);
      if (num_tuples == 0) continue;
      // Enumerate k-tuples of tuples (odometer over tuple indices).
      std::vector<std::size_t> pick(static_cast<std::size_t>(arity_), 0);
      for (;;) {
        // Entries: for each relation position p, the argument vector is
        // (pick_1[p], ..., pick_k[p]).
        std::vector<std::size_t> entries(rel_arity);
        for (int p = 0; p < rel_arity; ++p) {
          std::vector<int> args(static_cast<std::size_t>(arity_));
          for (int i = 0; i < arity_; ++i) {
            args[i] = static_cast<int>(
                b.Tuple(r, static_cast<std::uint32_t>(pick[i]))[p]);
          }
          entries[p] = EntryOf(args);
        }
        // Forbid every value combination outside R.
        ForbidNonTuples(b, r, entries, rel_arity);
        int pos = arity_ - 1;
        while (pos >= 0 && ++pick[pos] == num_tuples) {
          pick[pos] = 0;
          --pos;
        }
        if (pos < 0) break;
      }
    }
  }

 private:
  void ForbidNonTuples(const data::Instance& b, data::RelationId r,
                       const std::vector<std::size_t>& entries,
                       int rel_arity) {
    // Odometer over value combinations.
    std::vector<int> values(static_cast<std::size_t>(rel_arity), 0);
    for (;;) {
      std::vector<data::ConstId> tuple(values.begin(), values.end());
      if (!b.HasFact(r, tuple)) {
        std::vector<Lit> clause;
        clause.reserve(rel_arity);
        for (int p = 0; p < rel_arity; ++p) {
          clause.push_back(Lit::Neg(VarFor(entries[p], values[p])));
        }
        solver_->AddClause(std::move(clause));
      }
      int pos = rel_arity - 1;
      while (pos >= 0 && ++values[pos] == domain_) {
        values[pos] = 0;
        --pos;
      }
      if (pos < 0) break;
    }
  }

  Solver* solver_;
  int domain_;
  int arity_;
  std::vector<Var> vars_;
};

/// Adds idempotence and the WNU identities to `table`.
void AddWnuConstraints(OperationTable* table, int domain, int arity) {
  for (int x = 0; x < domain; ++x) {
    table->ForceValue(std::vector<int>(static_cast<std::size_t>(arity), x),
                      x);
    for (int y = 0; y < domain; ++y) {
      if (x == y) continue;
      std::vector<int> first(static_cast<std::size_t>(arity), x);
      first[0] = y;
      for (int pos = 1; pos < arity; ++pos) {
        std::vector<int> other(static_cast<std::size_t>(arity), x);
        other[pos] = y;
        table->ForceEqual(first, other);
      }
    }
  }
}

/// One satisfiability call per polymorphism question. The one-hot
/// operation-table encoding is conflict-dense, so the CDCL solver's
/// clause learning and restarts do the heavy lifting within this single
/// Solve() (there is no cross-probe reuse to exploit here).
base::Result<bool> SolveOutcome(Solver* solver,
                                const WidthOptions& options) {
  sat::SatOutcome outcome = solver->Solve({}, options.max_decisions);
  if (outcome == sat::SatOutcome::kBudget) {
    return base::ResourceExhaustedError("polymorphism search budget");
  }
  return outcome == sat::SatOutcome::kSat;
}

}  // namespace

base::Result<bool> HasWnuPolymorphism(const data::Instance& b, int arity,
                                      const WidthOptions& options) {
  OBDA_CHECK_GE(arity, 2);
  const int n = static_cast<int>(b.UniverseSize());
  if (n == 0) return true;
  Solver solver;
  OperationTable table(&solver, n, arity);
  AddWnuConstraints(&table, n, arity);
  table.AddPreservation(b);
  return SolveOutcome(&solver, options);
}

base::Result<bool> HasBoundedWidth(const data::Instance& b,
                                   const WidthOptions& options) {
  data::Instance core = data::CoreOf(b);
  const int n = static_cast<int>(core.UniverseSize());
  if (n <= 1) return true;
  Solver solver;
  OperationTable w3(&solver, n, 3);
  OperationTable w4(&solver, n, 4);
  AddWnuConstraints(&w3, n, 3);
  AddWnuConstraints(&w4, n, 4);
  w3.AddPreservation(core);
  w4.AddPreservation(core);
  // Compatibility: w3(y,x,x) = w4(y,x,x,x).
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      w3.ForceEqualAcross({y, x, x}, w4, {y, x, x, x});
    }
  }
  return SolveOutcome(&solver, options);
}

base::Result<bool> HasMajorityPolymorphism(const data::Instance& b,
                                           const WidthOptions& options) {
  const int n = static_cast<int>(b.UniverseSize());
  if (n == 0) return true;
  Solver solver;
  OperationTable table(&solver, n, 3);
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      table.ForceValue({y, x, x}, x);
      table.ForceValue({x, y, x}, x);
      table.ForceValue({x, x, y}, x);
    }
  }
  table.AddPreservation(b);
  return SolveOutcome(&solver, options);
}

}  // namespace obda::csp
