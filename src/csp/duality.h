#ifndef OBDA_CSP_DUALITY_H_
#define OBDA_CSP_DUALITY_H_

#include <vector>

#include "base/status.h"
#include "data/instance.h"
#include "data/ops.h"

namespace obda::csp {

/// True if element `a` is dominated by `b` in `inst`: for every fact
/// containing `a`, replacing any single occurrence of `a` by `b` again
/// yields a fact. (Single-occurrence replacement suffices: multiple
/// occurrences follow by induction.)
bool Dominates(const data::Instance& inst, data::ConstId b, data::ConstId a);

/// Greedily removes dominated elements that are not `protected_elements`,
/// until none is removable. Returns the resulting induced subinstance.
/// (The dismantling retract is unique up to isomorphism, so greedy order
/// does not affect the outcome of the tests below.)
data::Instance Dismantle(const data::Instance& inst,
                         const std::vector<data::ConstId>&
                             protected_elements);

/// The Larose–Loten–Tardif test (paper Thm 5.10; DESIGN.md §5.2):
/// coCSP(B) is FO-rewritable iff core(B)² dismantles onto its diagonal.
/// `b` need not be a core; the core is computed internally.
bool IsFoDefinable(const data::Instance& b);

/// The Feder–Vardi power structure ℘(B): elements are the nonempty
/// subsets of B's universe; (S1..Sk) ∈ R^℘ iff every b ∈ Si extends to a
/// tuple of R^B through S1×..×Sk (the subdirect closure).
data::Instance PowerStructure(const data::Instance& b);

/// Feder–Vardi: B has tree duality — equivalently, arc consistency
/// decides CSP(B), equivalently the canonical width-1 datalog program is
/// a complete rewriting of coCSP(B) — iff ℘(B) → B. The power structure
/// is exponential in |B|; a kResourceExhausted error is returned when the
/// homomorphism search exhausts its node budget.
base::Result<bool> HasTreeDuality(const data::Instance& b);

}  // namespace obda::csp

#endif  // OBDA_CSP_DUALITY_H_
