#include "csp/obstruction.h"

#include <algorithm>
#include <memory>
#include <string>

#include "base/check.h"
#include "base/thread_pool.h"
#include "data/homomorphism.h"

namespace obda::csp {

namespace {

using data::ConstId;
using data::Instance;

/// Builds candidate trees: `parent[i]` for i >= 1 gives the tree shape;
/// each edge carries (relation, direction); each node carries a subset of
/// unary relations.
struct TreeSpec {
  std::vector<int> parent;             // size n, parent[0] unused
  std::vector<int> edge_choice;        // size n, index into edge options
  std::vector<std::uint32_t> unary;    // size n, bitmask over unary rels
};

Instance BuildTree(const data::Schema& schema, const TreeSpec& spec,
                   const std::vector<data::RelationId>& unary_rels,
                   const std::vector<data::RelationId>& binary_rels) {
  const int n = static_cast<int>(spec.parent.size());
  Instance out(schema);
  for (int i = 0; i < n; ++i) {
    out.AddConstant("t" + std::to_string(i));
  }
  for (int i = 1; i < n; ++i) {
    int choice = spec.edge_choice[i];
    data::RelationId rel = binary_rels[choice / 2];
    bool down = (choice % 2) == 0;
    ConstId p = static_cast<ConstId>(spec.parent[i]);
    ConstId c = static_cast<ConstId>(i);
    if (down) {
      out.AddFact(rel, {p, c});
    } else {
      out.AddFact(rel, {c, p});
    }
  }
  for (int i = 0; i < n; ++i) {
    for (std::size_t u = 0; u < unary_rels.size(); ++u) {
      if ((spec.unary[i] >> u) & 1u) {
        out.AddFact(unary_rels[u], {static_cast<ConstId>(i)});
      }
    }
  }
  return out;
}

/// Instance minus one fact (facts indexed globally in relation order).
Instance RemoveFact(const Instance& d, data::RelationId rel,
                    std::uint32_t index) {
  Instance out(d.schema());
  for (ConstId c = 0; c < d.UniverseSize(); ++c) {
    out.AddConstant(d.ConstantName(c));
  }
  for (data::RelationId r = 0; r < d.schema().NumRelations(); ++r) {
    for (std::uint32_t i = 0; i < d.NumTuples(r); ++i) {
      if (r == rel && i == index) continue;
      out.AddFact(r, d.Tuple(r, i));
    }
  }
  return out;
}

/// True if T is a critical obstruction: T ↛ B and every fact-deleted
/// subinstance maps into B. `b` is the compiled form of the template —
/// it is probed once per candidate tree plus once per fact of the tree,
/// so the support index is built a single time by the caller.
base::Result<bool> IsCritical(const Instance& t,
                              const data::CompiledTarget& b) {
  auto whole = data::HomomorphismExists(t, b);
  if (!whole.ok()) return whole.status();
  if (*whole) return false;
  for (data::RelationId r = 0; r < t.schema().NumRelations(); ++r) {
    for (std::uint32_t i = 0; i < t.NumTuples(r); ++i) {
      Instance sub = RemoveFact(t, r, i);
      auto maps = data::HomomorphismExists(sub, b);
      if (!maps.ok()) return maps.status();
      if (!*maps) return false;
    }
  }
  return true;
}

}  // namespace

base::Result<std::vector<Instance>> TreeObstructions(
    const Instance& b, const ObstructionOptions& options) {
  const data::Schema& schema = b.schema();
  if (!schema.IsBinary()) {
    return base::UnimplementedError(
        "tree obstruction enumeration requires a binary schema");
  }
  std::vector<data::RelationId> unary_rels;
  std::vector<data::RelationId> binary_rels;
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    if (schema.Arity(r) == 1) unary_rels.push_back(r);
    if (schema.Arity(r) == 2) binary_rels.push_back(r);
  }
  const std::uint32_t unary_masks = 1u << unary_rels.size();
  const int edge_options = static_cast<int>(binary_rels.size()) * 2;

  const data::CompiledTarget compiled_b(b);
  std::unique_ptr<base::ThreadPool> owned;
  base::ThreadPool& pool = base::ResolvePool(options.threads, &owned);

  std::vector<Instance> criticals;
  std::uint64_t examined = 0;

  // Candidates accumulate into fixed-size batches whose criticality checks
  // fan out across the pool; verdicts land in a per-batch slot array and
  // criticals are appended in enumeration order, so the output is
  // byte-identical to the sequential sweep.
  constexpr std::size_t kBatch = 256;
  std::vector<TreeSpec> batch;
  batch.reserve(kBatch);
  auto flush = [&]() -> base::Status {
    if (batch.empty()) return base::Status::Ok();
    std::vector<std::unique_ptr<Instance>> trees(batch.size());
    std::vector<char> verdicts(batch.size(), 0);
    base::Status status = pool.ParallelFor(
        batch.size(), /*min_chunk=*/1,
        [&](std::uint64_t begin, std::uint64_t end, int) -> base::Status {
          for (std::uint64_t k = begin; k < end; ++k) {
            auto t = std::make_unique<Instance>(
                BuildTree(schema, batch[k], unary_rels, binary_rels));
            auto critical = IsCritical(*t, compiled_b);
            if (!critical.ok()) return critical.status();
            verdicts[k] = *critical ? 1 : 0;
            trees[k] = std::move(t);
          }
          return base::Status::Ok();
        });
    if (!status.ok()) return status;
    for (std::size_t k = 0; k < batch.size(); ++k) {
      if (verdicts[k]) criticals.push_back(std::move(*trees[k]));
    }
    batch.clear();
    return base::Status::Ok();
  };

  for (int n = 1; n <= options.max_nodes; ++n) {
    if (n > 1 && edge_options == 0) break;
    // Enumerate parent arrays (parent[i] < i).
    TreeSpec spec;
    spec.parent.assign(n, 0);
    spec.edge_choice.assign(n, 0);
    spec.unary.assign(n, 0);

    // Odometer over (parents, edges, unary masks) jointly.
    std::vector<int> par(n, 0);
    for (;;) {
      // For this shape, odometer over edge choices.
      std::vector<int> edges(n, 0);
      for (;;) {
        // Odometer over unary masks.
        std::vector<std::uint32_t> masks(n, 0);
        for (;;) {
          if (++examined > options.max_candidates) {
            return base::ResourceExhaustedError(
                "obstruction candidate budget exceeded (max_candidates=" +
                std::to_string(options.max_candidates) + ")");
          }
          spec.parent = par;
          spec.edge_choice = edges;
          spec.unary = masks;
          batch.push_back(spec);
          if (batch.size() >= kBatch) {
            base::Status status = flush();
            if (!status.ok()) return status;
          }
          // Advance unary masks.
          int pos = n - 1;
          while (pos >= 0 && ++masks[pos] == unary_masks) {
            masks[pos] = 0;
            --pos;
          }
          if (pos < 0) break;
        }
        if (n == 1) break;
        int pos = n - 1;
        while (pos >= 1 && ++edges[pos] == edge_options) {
          edges[pos] = 0;
          --pos;
        }
        if (pos < 1) break;
      }
      if (n == 1) break;
      int pos = n - 1;
      bool done = false;
      while (pos >= 1) {
        if (++par[pos] < pos) break;
        par[pos] = 0;
        --pos;
      }
      if (pos < 1) done = true;
      if (done) break;
    }
  }

  {
    base::Status status = flush();
    if (!status.ok()) return status;
  }

  // Reduce to homomorphism-minimal representatives: if o1 → o2 (o1 != o2)
  // then o2 is redundant. Each critical serves as the target of up to
  // 2(k-1) probes, so compile them all up front and fan the full k×k
  // homomorphism matrix across the pool; the drop pass then reads the
  // matrix in the original order, keeping the output byte-identical.
  const std::size_t k = criticals.size();
  std::vector<data::CompiledTarget> compiled;
  compiled.reserve(k);
  for (const Instance& c : criticals) compiled.emplace_back(c);
  std::vector<char> hom(k * k, 0);  // hom[j * k + i]: criticals[j] → [i]
  {
    base::Status status = pool.ParallelFor(
        k * k, /*min_chunk=*/4,
        [&](std::uint64_t begin, std::uint64_t end, int) -> base::Status {
          for (std::uint64_t f = begin; f < end; ++f) {
            const std::size_t j = static_cast<std::size_t>(f) / k;
            const std::size_t i = static_cast<std::size_t>(f) % k;
            if (i == j) {
              hom[f] = 1;
              continue;
            }
            auto maps = data::HomomorphismExists(criticals[j], compiled[i]);
            if (!maps.ok()) return maps.status();
            hom[f] = *maps ? 1 : 0;
          }
          return base::Status::Ok();
        });
    if (!status.ok()) return status;
  }
  std::vector<bool> dropped(k, false);
  for (std::size_t i = 0; i < k; ++i) {
    if (dropped[i]) continue;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j || dropped[j]) continue;
      if (!hom[j * k + i]) continue;
      if (!(hom[i * k + j] && j > i)) {
        dropped[i] = true;
        break;
      }
    }
  }
  std::vector<Instance> out;
  for (std::size_t i = 0; i < criticals.size(); ++i) {
    if (!dropped[i]) out.push_back(std::move(criticals[i]));
  }
  return out;
}

}  // namespace obda::csp
