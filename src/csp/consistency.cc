#include "csp/consistency.h"

#include <set>
#include <vector>

#include "base/check.h"

namespace obda::csp {

namespace {

using data::ConstId;

// Shared body of ArcConsistencyRefutes / ArcConsistencyDomains: runs the
// support loop to fixpoint on `candidates` (already sized nd × nb, all
// true). Returns true if a nullary mismatch or an emptied row refutes.
bool PropagateArcConsistency(const data::Instance& d,
                             const data::Instance& b,
                             std::vector<std::vector<bool>>& candidates) {
  const std::size_t nd = d.UniverseSize();
  const std::size_t nb = b.UniverseSize();
  bool changed = true;
  while (changed) {
    changed = false;
    for (data::RelationId r = 0; r < d.schema().NumRelations(); ++r) {
      const int arity = d.schema().Arity(r);
      if (arity == 0) {
        if (d.NumTuples(r) > 0 && b.NumTuples(r) == 0) return true;
        continue;
      }
      for (std::uint32_t i = 0; i < d.NumTuples(r); ++i) {
        auto t = d.Tuple(r, i);
        // For each position p and candidate v, require a supporting
        // B-tuple.
        for (int p = 0; p < arity; ++p) {
          for (ConstId v = 0; v < nb; ++v) {
            if (!candidates[t[p]][v]) continue;
            bool supported = false;
            for (std::uint32_t j = 0; j < b.NumTuples(r) && !supported;
                 ++j) {
              auto bt = b.Tuple(r, j);
              if (bt[p] != v) continue;
              bool ok = true;
              for (int q = 0; q < arity; ++q) {
                if (!candidates[t[q]][bt[q]]) {
                  ok = false;
                  break;
                }
              }
              supported = ok;
            }
            if (!supported) {
              candidates[t[p]][v] = false;
              changed = true;
            }
          }
        }
      }
    }
  }
  for (ConstId x = 0; x < nd; ++x) {
    bool any = false;
    for (ConstId v = 0; v < nb; ++v) any = any || candidates[x][v];
    // Only elements occurring in facts are constrained; isolated elements
    // can map anywhere, but their candidate rows were never pruned.
    if (!any) return true;
  }
  return false;
}

// Shared body of PairwiseConsistencyRefutes / PairwiseConsistencyDomains:
// fills `pair` (nd × nd × nb·nb, all true on entry) with the (2,3)
// fixpoint. Returns true if a nullary mismatch or an emptied diagonal
// refutes.
bool PropagatePairwiseConsistency(
    const data::Instance& d, const data::Instance& b,
    std::vector<std::vector<std::vector<bool>>>& pair) {
  const std::size_t nd = d.UniverseSize();
  const std::size_t nb = b.UniverseSize();
  // Diagonal consistency: only (v,v) allowed on pair[x][x].
  for (std::size_t x = 0; x < nd; ++x) {
    for (ConstId v1 = 0; v1 < nb; ++v1) {
      for (ConstId v2 = 0; v2 < nb; ++v2) {
        if (v1 != v2) pair[x][x][v1 * nb + v2] = false;
      }
    }
  }
  // Fact constraints.
  for (data::RelationId r = 0; r < d.schema().NumRelations(); ++r) {
    const int arity = d.schema().Arity(r);
    if (arity == 0) {
      if (d.NumTuples(r) > 0 && b.NumTuples(r) == 0) return true;
      continue;
    }
    for (std::uint32_t i = 0; i < d.NumTuples(r); ++i) {
      auto t = d.Tuple(r, i);
      if (arity == 1) {
        for (ConstId v = 0; v < nb; ++v) {
          if (!b.HasFact(r, {v})) pair[t[0]][t[0]][v * nb + v] = false;
        }
      } else {
        for (ConstId v1 = 0; v1 < nb; ++v1) {
          for (ConstId v2 = 0; v2 < nb; ++v2) {
            if (!b.HasFact(r, {v1, v2})) {
              pair[t[0]][t[1]][v1 * nb + v2] = false;
            }
          }
        }
      }
    }
  }
  // Symmetry closure + restriction/extension closure + triangle
  // propagation to fixpoint. The restriction and singleton-extension
  // rules tie the off-diagonal pair sets to the diagonal domains; without
  // them a unary-pruned domain never reaches its incident pairs and the
  // "(2,3)" fixpoint can end up strictly weaker than arc consistency.
  bool changed = true;
  while (changed) {
    changed = false;
    // Symmetry: pair[x][y] and pair[y][x] mirror each other.
    for (std::size_t x = 0; x < nd; ++x) {
      for (std::size_t y = 0; y < nd; ++y) {
        for (ConstId v1 = 0; v1 < nb; ++v1) {
          for (ConstId v2 = 0; v2 < nb; ++v2) {
            if (pair[x][y][v1 * nb + v2] && !pair[y][x][v2 * nb + v1]) {
              pair[x][y][v1 * nb + v2] = false;
              changed = true;
            }
          }
        }
      }
    }
    // Restriction: a partial hom on {x,y} restricted to x (resp. y) must
    // itself be allowed, so (v1,v2) on (x,y) needs (v1,v1) on (x,x) and
    // (v2,v2) on (y,y).
    for (std::size_t x = 0; x < nd; ++x) {
      for (std::size_t y = 0; y < nd; ++y) {
        if (y == x) continue;
        for (ConstId v1 = 0; v1 < nb; ++v1) {
          for (ConstId v2 = 0; v2 < nb; ++v2) {
            if (pair[x][y][v1 * nb + v2] &&
                (!pair[x][x][v1 * nb + v1] || !pair[y][y][v2 * nb + v2])) {
              pair[x][y][v1 * nb + v2] = false;
              changed = true;
            }
          }
        }
      }
    }
    // Singleton extension: {x ↦ v1} must extend to every other element,
    // so (v1,v1) on (x,x) needs some v2 with (v1,v2) on (x,y) for each y.
    for (std::size_t x = 0; x < nd; ++x) {
      for (ConstId v1 = 0; v1 < nb; ++v1) {
        if (!pair[x][x][v1 * nb + v1]) continue;
        for (std::size_t y = 0; y < nd; ++y) {
          if (y == x) continue;
          bool extend = false;
          for (ConstId v2 = 0; v2 < nb && !extend; ++v2) {
            extend = pair[x][y][v1 * nb + v2];
          }
          if (!extend) {
            pair[x][x][v1 * nb + v1] = false;
            changed = true;
            break;
          }
        }
      }
    }
    // Triangle: (v1,v2) on (x,y) needs v3 with (v1,v3) on (x,z) and
    // (v2,v3) on (y,z).
    for (std::size_t x = 0; x < nd; ++x) {
      for (std::size_t y = 0; y < nd; ++y) {
        for (std::size_t z = 0; z < nd; ++z) {
          if (z == x || z == y) continue;
          for (ConstId v1 = 0; v1 < nb; ++v1) {
            for (ConstId v2 = 0; v2 < nb; ++v2) {
              if (!pair[x][y][v1 * nb + v2]) continue;
              bool ok = false;
              for (ConstId v3 = 0; v3 < nb && !ok; ++v3) {
                ok = pair[x][z][v1 * nb + v3] && pair[y][z][v2 * nb + v3];
              }
              if (!ok) {
                pair[x][y][v1 * nb + v2] = false;
                changed = true;
              }
            }
          }
        }
      }
    }
  }
  for (std::size_t x = 0; x < nd; ++x) {
    bool any = false;
    for (ConstId v = 0; v < nb; ++v) any = any || pair[x][x][v * nb + v];
    if (!any) return true;
  }
  return false;
}

}  // namespace

bool ArcConsistencyRefutes(const data::Instance& d,
                           const data::Instance& b) {
  OBDA_CHECK(d.schema().LayoutCompatible(b.schema()));
  const std::size_t nd = d.UniverseSize();
  const std::size_t nb = b.UniverseSize();
  if (nd == 0) return false;
  if (nb == 0) return true;
  std::vector<std::vector<bool>> candidates(nd,
                                            std::vector<bool>(nb, true));
  return PropagateArcConsistency(d, b, candidates);
}

bool PairwiseConsistencyRefutes(const data::Instance& d,
                                const data::Instance& b) {
  OBDA_CHECK(d.schema().LayoutCompatible(b.schema()));
  OBDA_CHECK(d.schema().IsBinary());
  const std::size_t nd = d.UniverseSize();
  const std::size_t nb = b.UniverseSize();
  if (nd == 0) return false;
  if (nb == 0) return true;
  std::vector<std::vector<std::vector<bool>>> pair(
      nd, std::vector<std::vector<bool>>(nd,
                                         std::vector<bool>(nb * nb, true)));
  return PropagatePairwiseConsistency(d, b, pair);
}

ConsistencyDomains ArcConsistencyDomains(const data::Instance& d,
                                         const data::Instance& b) {
  OBDA_CHECK(d.schema().LayoutCompatible(b.schema()));
  const std::size_t nd = d.UniverseSize();
  const std::size_t nb = b.UniverseSize();
  ConsistencyDomains out;
  if (nd == 0) return out;
  if (nb == 0) {
    out.refuted = true;
    return out;
  }
  std::vector<std::vector<bool>> candidates(nd,
                                            std::vector<bool>(nb, true));
  out.refuted = PropagateArcConsistency(d, b, candidates);
  if (out.refuted || nb > 64) return out;
  out.surviving.resize(nd, 0);
  for (std::size_t x = 0; x < nd; ++x) {
    for (ConstId v = 0; v < nb; ++v) {
      if (candidates[x][v]) out.surviving[x] |= (std::uint64_t{1} << v);
    }
  }
  return out;
}

ConsistencyDomains PairwiseConsistencyDomains(const data::Instance& d,
                                              const data::Instance& b) {
  OBDA_CHECK(d.schema().LayoutCompatible(b.schema()));
  OBDA_CHECK(d.schema().IsBinary());
  const std::size_t nd = d.UniverseSize();
  const std::size_t nb = b.UniverseSize();
  ConsistencyDomains out;
  if (nd == 0) return out;
  if (nb == 0) {
    out.refuted = true;
    return out;
  }
  std::vector<std::vector<std::vector<bool>>> pair(
      nd, std::vector<std::vector<bool>>(nd,
                                         std::vector<bool>(nb * nb, true)));
  out.refuted = PropagatePairwiseConsistency(d, b, pair);
  if (out.refuted || nb > 64) return out;
  out.surviving.resize(nd, 0);
  for (std::size_t x = 0; x < nd; ++x) {
    for (ConstId v = 0; v < nb; ++v) {
      if (pair[x][x][v * nb + v]) out.surviving[x] |= (std::uint64_t{1} << v);
    }
  }
  return out;
}

base::Result<ddlog::Program> CanonicalArcConsistencyProgram(
    const data::Instance& b, int max_elements) {
  const int n = static_cast<int>(b.UniverseSize());
  if (n > max_elements) {
    return base::ResourceExhaustedError(
        "canonical program would have 2^" + std::to_string(n) +
        " IDB predicates");
  }
  const data::Schema& schema = b.schema();
  if (!schema.IsBinary()) {
    return base::UnimplementedError(
        "canonical arc-consistency program requires a binary schema");
  }
  ddlog::Program program(schema);
  const std::uint32_t num_sets = 1u << n;
  // IDB predicate for every subset of dom(B); P_full is derived from adom.
  std::vector<ddlog::PredId> set_pred(num_sets);
  for (std::uint32_t s = 0; s < num_sets; ++s) {
    set_pred[s] = program.AddIdbPredicate("P" + std::to_string(s), 1);
  }
  ddlog::PredId goal = program.AddIdbPredicate("goal", 0);
  program.SetGoal(goal);
  ddlog::PredId adom = program.EnsureAdom();

  auto add_rule = [&program](std::vector<ddlog::Atom> head,
                             std::vector<ddlog::Atom> body) {
    ddlog::Rule rule;
    rule.head = std::move(head);
    rule.body = std::move(body);
    OBDA_CHECK(program.AddRule(std::move(rule)).ok());
  };

  const std::uint32_t full = num_sets - 1;
  // P_full(x) <- adom(x).
  add_rule({{set_pred[full], {0}}}, {{adom, {0}}});

  // Unary relations restrict to their extension: P_{S_A}(x) <- A(x).
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    if (schema.Arity(r) != 1) continue;
    std::uint32_t sa = 0;
    for (int v = 0; v < n; ++v) {
      if (b.HasFact(r, {static_cast<data::ConstId>(v)})) sa |= (1u << v);
    }
    add_rule({{set_pred[sa], {0}}}, {{r, {0}}});
  }

  // Binary propagation: P_{fwd(S)}(y) <- R(x,y), P_S(x) and the backward
  // analogue.
  for (data::RelationId r = 0; r < schema.NumRelations(); ++r) {
    if (schema.Arity(r) != 2) continue;
    for (std::uint32_t s = 0; s < num_sets; ++s) {
      std::uint32_t fwd = 0;
      std::uint32_t bwd = 0;
      for (std::uint32_t i = 0; i < b.NumTuples(r); ++i) {
        auto t = b.Tuple(r, i);
        if ((s >> t[0]) & 1u) fwd |= (1u << t[1]);
        if ((s >> t[1]) & 1u) bwd |= (1u << t[0]);
      }
      add_rule({{set_pred[fwd], {1}}}, {{r, {0, 1}}, {set_pred[s], {0}}});
      add_rule({{set_pred[bwd], {0}}}, {{r, {0, 1}}, {set_pred[s], {1}}});
    }
  }

  // Intersection rules.
  for (std::uint32_t s1 = 0; s1 < num_sets; ++s1) {
    for (std::uint32_t s2 = s1 + 1; s2 < num_sets; ++s2) {
      if ((s1 & s2) == s1 || (s1 & s2) == s2) continue;  // subsumed
      add_rule({{set_pred[s1 & s2], {0}}},
               {{set_pred[s1], {0}}, {set_pred[s2], {0}}});
    }
  }

  // goal <- P_∅(x).
  add_rule({{goal, {}}}, {{set_pred[0], {0}}});
  return program;
}

}  // namespace obda::csp
