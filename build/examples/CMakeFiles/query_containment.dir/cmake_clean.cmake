file(REMOVE_RECURSE
  "CMakeFiles/query_containment.dir/query_containment.cpp.o"
  "CMakeFiles/query_containment.dir/query_containment.cpp.o.d"
  "query_containment"
  "query_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
