# Empty dependencies file for csp_bridge.
# This may be replaced when dependencies are built.
