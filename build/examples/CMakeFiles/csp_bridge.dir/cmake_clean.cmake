file(REMOVE_RECURSE
  "CMakeFiles/csp_bridge.dir/csp_bridge.cpp.o"
  "CMakeFiles/csp_bridge.dir/csp_bridge.cpp.o.d"
  "csp_bridge"
  "csp_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csp_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
