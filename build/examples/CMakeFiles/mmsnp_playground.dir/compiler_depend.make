# Empty compiler generated dependencies file for mmsnp_playground.
# This may be replaced when dependencies are built.
