file(REMOVE_RECURSE
  "CMakeFiles/mmsnp_playground.dir/mmsnp_playground.cpp.o"
  "CMakeFiles/mmsnp_playground.dir/mmsnp_playground.cpp.o.d"
  "mmsnp_playground"
  "mmsnp_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsnp_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
