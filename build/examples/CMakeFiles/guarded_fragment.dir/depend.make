# Empty dependencies file for guarded_fragment.
# This may be replaced when dependencies are built.
