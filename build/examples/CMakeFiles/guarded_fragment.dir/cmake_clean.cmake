file(REMOVE_RECURSE
  "CMakeFiles/guarded_fragment.dir/guarded_fragment.cpp.o"
  "CMakeFiles/guarded_fragment.dir/guarded_fragment.cpp.o.d"
  "guarded_fragment"
  "guarded_fragment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_fragment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
