file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_rewritability.dir/bench_e12_rewritability.cpp.o"
  "CMakeFiles/bench_e12_rewritability.dir/bench_e12_rewritability.cpp.o.d"
  "bench_e12_rewritability"
  "bench_e12_rewritability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_rewritability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
