# Empty dependencies file for bench_e12_rewritability.
# This may be replaced when dependencies are built.
