# Empty compiler generated dependencies file for bench_e16_canonical_datalog.
# This may be replaced when dependencies are built.
