file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_canonical_datalog.dir/bench_e16_canonical_datalog.cpp.o"
  "CMakeFiles/bench_e16_canonical_datalog.dir/bench_e16_canonical_datalog.cpp.o.d"
  "bench_e16_canonical_datalog"
  "bench_e16_canonical_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_canonical_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
