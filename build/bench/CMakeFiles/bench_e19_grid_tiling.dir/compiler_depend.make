# Empty compiler generated dependencies file for bench_e19_grid_tiling.
# This may be replaced when dependencies are built.
