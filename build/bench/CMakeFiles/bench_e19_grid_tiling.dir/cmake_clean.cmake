file(REMOVE_RECURSE
  "CMakeFiles/bench_e19_grid_tiling.dir/bench_e19_grid_tiling.cpp.o"
  "CMakeFiles/bench_e19_grid_tiling.dir/bench_e19_grid_tiling.cpp.o.d"
  "bench_e19_grid_tiling"
  "bench_e19_grid_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e19_grid_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
