# Empty compiler generated dependencies file for bench_e07_gfo_separation.
# This may be replaced when dependencies are built.
