# Empty compiler generated dependencies file for bench_e06_beyond_mddlog.
# This may be replaced when dependencies are built.
