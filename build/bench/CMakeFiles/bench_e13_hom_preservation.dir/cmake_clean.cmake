file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_hom_preservation.dir/bench_e13_hom_preservation.cpp.o"
  "CMakeFiles/bench_e13_hom_preservation.dir/bench_e13_hom_preservation.cpp.o.d"
  "bench_e13_hom_preservation"
  "bench_e13_hom_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_hom_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
