# Empty dependencies file for bench_e13_hom_preservation.
# This may be replaced when dependencies are built.
