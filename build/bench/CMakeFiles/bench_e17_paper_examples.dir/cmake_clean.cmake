file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_paper_examples.dir/bench_e17_paper_examples.cpp.o"
  "CMakeFiles/bench_e17_paper_examples.dir/bench_e17_paper_examples.cpp.o.d"
  "bench_e17_paper_examples"
  "bench_e17_paper_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_paper_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
