# Empty compiler generated dependencies file for bench_e17_paper_examples.
# This may be replaced when dependencies are built.
