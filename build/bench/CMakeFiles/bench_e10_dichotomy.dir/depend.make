# Empty dependencies file for bench_e10_dichotomy.
# This may be replaced when dependencies are built.
