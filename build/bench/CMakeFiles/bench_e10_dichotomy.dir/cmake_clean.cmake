file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_dichotomy.dir/bench_e10_dichotomy.cpp.o"
  "CMakeFiles/bench_e10_dichotomy.dir/bench_e10_dichotomy.cpp.o.d"
  "bench_e10_dichotomy"
  "bench_e10_dichotomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_dichotomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
