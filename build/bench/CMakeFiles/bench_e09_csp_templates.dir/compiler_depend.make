# Empty compiler generated dependencies file for bench_e09_csp_templates.
# This may be replaced when dependencies are built.
