file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_csp_templates.dir/bench_e09_csp_templates.cpp.o"
  "CMakeFiles/bench_e09_csp_templates.dir/bench_e09_csp_templates.cpp.o.d"
  "bench_e09_csp_templates"
  "bench_e09_csp_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_csp_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
