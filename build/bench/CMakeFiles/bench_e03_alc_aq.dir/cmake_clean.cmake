file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_alc_aq.dir/bench_e03_alc_aq.cpp.o"
  "CMakeFiles/bench_e03_alc_aq.dir/bench_e03_alc_aq.cpp.o.d"
  "bench_e03_alc_aq"
  "bench_e03_alc_aq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_alc_aq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
