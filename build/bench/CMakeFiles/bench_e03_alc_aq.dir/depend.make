# Empty dependencies file for bench_e03_alc_aq.
# This may be replaced when dependencies are built.
