file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_fo_rewriting.dir/bench_e15_fo_rewriting.cpp.o"
  "CMakeFiles/bench_e15_fo_rewriting.dir/bench_e15_fo_rewriting.cpp.o.d"
  "bench_e15_fo_rewriting"
  "bench_e15_fo_rewriting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_fo_rewriting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
