# Empty dependencies file for bench_e15_fo_rewriting.
# This may be replaced when dependencies are built.
