# Empty dependencies file for bench_e11_containment.
# This may be replaced when dependencies are built.
