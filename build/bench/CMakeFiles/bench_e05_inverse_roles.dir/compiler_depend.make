# Empty compiler generated dependencies file for bench_e05_inverse_roles.
# This may be replaced when dependencies are built.
