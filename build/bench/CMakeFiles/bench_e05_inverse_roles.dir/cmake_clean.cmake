file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_inverse_roles.dir/bench_e05_inverse_roles.cpp.o"
  "CMakeFiles/bench_e05_inverse_roles.dir/bench_e05_inverse_roles.cpp.o.d"
  "bench_e05_inverse_roles"
  "bench_e05_inverse_roles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_inverse_roles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
