file(REMOVE_RECURSE
  "CMakeFiles/bench_e01_mddlog_eval.dir/bench_e01_mddlog_eval.cpp.o"
  "CMakeFiles/bench_e01_mddlog_eval.dir/bench_e01_mddlog_eval.cpp.o.d"
  "bench_e01_mddlog_eval"
  "bench_e01_mddlog_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e01_mddlog_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
