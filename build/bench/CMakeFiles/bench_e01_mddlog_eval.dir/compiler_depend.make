# Empty compiler generated dependencies file for bench_e01_mddlog_eval.
# This may be replaced when dependencies are built.
