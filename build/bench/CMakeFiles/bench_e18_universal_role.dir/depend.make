# Empty dependencies file for bench_e18_universal_role.
# This may be replaced when dependencies are built.
