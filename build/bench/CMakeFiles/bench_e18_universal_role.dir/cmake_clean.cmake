file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_universal_role.dir/bench_e18_universal_role.cpp.o"
  "CMakeFiles/bench_e18_universal_role.dir/bench_e18_universal_role.cpp.o.d"
  "bench_e18_universal_role"
  "bench_e18_universal_role.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_universal_role.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
