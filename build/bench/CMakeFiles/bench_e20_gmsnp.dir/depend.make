# Empty dependencies file for bench_e20_gmsnp.
# This may be replaced when dependencies are built.
