
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e20_gmsnp.cpp" "bench/CMakeFiles/bench_e20_gmsnp.dir/bench_e20_gmsnp.cpp.o" "gcc" "bench/CMakeFiles/bench_e20_gmsnp.dir/bench_e20_gmsnp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/obda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mmsnp/CMakeFiles/obda_mmsnp.dir/DependInfo.cmake"
  "/root/repo/build/src/gfo/CMakeFiles/obda_gfo.dir/DependInfo.cmake"
  "/root/repo/build/src/csp/CMakeFiles/obda_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/obda_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/ddlog/CMakeFiles/obda_ddlog.dir/DependInfo.cmake"
  "/root/repo/build/src/fo/CMakeFiles/obda_fo.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/obda_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/obda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/obda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
