file(REMOVE_RECURSE
  "CMakeFiles/bench_e20_gmsnp.dir/bench_e20_gmsnp.cpp.o"
  "CMakeFiles/bench_e20_gmsnp.dir/bench_e20_gmsnp.cpp.o.d"
  "bench_e20_gmsnp"
  "bench_e20_gmsnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e20_gmsnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
