# Empty compiler generated dependencies file for bench_e04_succinctness.
# This may be replaced when dependencies are built.
