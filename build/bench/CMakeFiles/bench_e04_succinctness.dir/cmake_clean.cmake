file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_succinctness.dir/bench_e04_succinctness.cpp.o"
  "CMakeFiles/bench_e04_succinctness.dir/bench_e04_succinctness.cpp.o.d"
  "bench_e04_succinctness"
  "bench_e04_succinctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_succinctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
