# Empty compiler generated dependencies file for bench_e14_schema_free.
# This may be replaced when dependencies are built.
