file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_schema_free.dir/bench_e14_schema_free.cpp.o"
  "CMakeFiles/bench_e14_schema_free.dir/bench_e14_schema_free.cpp.o.d"
  "bench_e14_schema_free"
  "bench_e14_schema_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_schema_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
