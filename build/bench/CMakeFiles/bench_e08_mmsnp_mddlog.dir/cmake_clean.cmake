file(REMOVE_RECURSE
  "CMakeFiles/bench_e08_mmsnp_mddlog.dir/bench_e08_mmsnp_mddlog.cpp.o"
  "CMakeFiles/bench_e08_mmsnp_mddlog.dir/bench_e08_mmsnp_mddlog.cpp.o.d"
  "bench_e08_mmsnp_mddlog"
  "bench_e08_mmsnp_mddlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e08_mmsnp_mddlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
