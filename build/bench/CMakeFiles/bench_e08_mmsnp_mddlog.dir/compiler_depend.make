# Empty compiler generated dependencies file for bench_e08_mmsnp_mddlog.
# This may be replaced when dependencies are built.
