file(REMOVE_RECURSE
  "CMakeFiles/bench_e02_alc_ucq_mddlog.dir/bench_e02_alc_ucq_mddlog.cpp.o"
  "CMakeFiles/bench_e02_alc_ucq_mddlog.dir/bench_e02_alc_ucq_mddlog.cpp.o.d"
  "bench_e02_alc_ucq_mddlog"
  "bench_e02_alc_ucq_mddlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_alc_ucq_mddlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
