# Empty compiler generated dependencies file for bench_e02_alc_ucq_mddlog.
# This may be replaced when dependencies are built.
