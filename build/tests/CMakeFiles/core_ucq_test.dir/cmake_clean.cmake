file(REMOVE_RECURSE
  "CMakeFiles/core_ucq_test.dir/core_ucq_test.cc.o"
  "CMakeFiles/core_ucq_test.dir/core_ucq_test.cc.o.d"
  "core_ucq_test"
  "core_ucq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ucq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
