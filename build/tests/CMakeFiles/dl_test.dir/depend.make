# Empty dependencies file for dl_test.
# This may be replaced when dependencies are built.
