# Empty dependencies file for mddlog_to_csp_test.
# This may be replaced when dependencies are built.
