file(REMOVE_RECURSE
  "CMakeFiles/mddlog_to_csp_test.dir/mddlog_to_csp_test.cc.o"
  "CMakeFiles/mddlog_to_csp_test.dir/mddlog_to_csp_test.cc.o.d"
  "mddlog_to_csp_test"
  "mddlog_to_csp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mddlog_to_csp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
