# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mddlog_to_csp_test.
