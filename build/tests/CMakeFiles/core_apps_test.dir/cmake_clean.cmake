file(REMOVE_RECURSE
  "CMakeFiles/core_apps_test.dir/core_apps_test.cc.o"
  "CMakeFiles/core_apps_test.dir/core_apps_test.cc.o.d"
  "core_apps_test"
  "core_apps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
