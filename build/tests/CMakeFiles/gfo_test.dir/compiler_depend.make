# Empty compiler generated dependencies file for gfo_test.
# This may be replaced when dependencies are built.
