file(REMOVE_RECURSE
  "CMakeFiles/gfo_test.dir/gfo_test.cc.o"
  "CMakeFiles/gfo_test.dir/gfo_test.cc.o.d"
  "gfo_test"
  "gfo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
