file(REMOVE_RECURSE
  "CMakeFiles/core_mddlog_test.dir/core_mddlog_test.cc.o"
  "CMakeFiles/core_mddlog_test.dir/core_mddlog_test.cc.o.d"
  "core_mddlog_test"
  "core_mddlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mddlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
