file(REMOVE_RECURSE
  "CMakeFiles/ddlog_test.dir/ddlog_test.cc.o"
  "CMakeFiles/ddlog_test.dir/ddlog_test.cc.o.d"
  "ddlog_test"
  "ddlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
