# Empty compiler generated dependencies file for mmsnp_test.
# This may be replaced when dependencies are built.
