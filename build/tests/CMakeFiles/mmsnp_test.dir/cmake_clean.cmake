file(REMOVE_RECURSE
  "CMakeFiles/mmsnp_test.dir/mmsnp_test.cc.o"
  "CMakeFiles/mmsnp_test.dir/mmsnp_test.cc.o.d"
  "mmsnp_test"
  "mmsnp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsnp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
