file(REMOVE_RECURSE
  "CMakeFiles/theorem_corners_test.dir/theorem_corners_test.cc.o"
  "CMakeFiles/theorem_corners_test.dir/theorem_corners_test.cc.o.d"
  "theorem_corners_test"
  "theorem_corners_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_corners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
