# Empty dependencies file for theorem_corners_test.
# This may be replaced when dependencies are built.
