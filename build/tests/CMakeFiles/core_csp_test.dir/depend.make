# Empty dependencies file for core_csp_test.
# This may be replaced when dependencies are built.
