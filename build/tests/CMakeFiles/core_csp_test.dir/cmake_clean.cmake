file(REMOVE_RECURSE
  "CMakeFiles/core_csp_test.dir/core_csp_test.cc.o"
  "CMakeFiles/core_csp_test.dir/core_csp_test.cc.o.d"
  "core_csp_test"
  "core_csp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_csp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
