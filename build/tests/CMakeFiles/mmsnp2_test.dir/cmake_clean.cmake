file(REMOVE_RECURSE
  "CMakeFiles/mmsnp2_test.dir/mmsnp2_test.cc.o"
  "CMakeFiles/mmsnp2_test.dir/mmsnp2_test.cc.o.d"
  "mmsnp2_test"
  "mmsnp2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmsnp2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
