# Empty compiler generated dependencies file for mmsnp2_test.
# This may be replaced when dependencies are built.
