file(REMOVE_RECURSE
  "libobda_gfo.a"
)
