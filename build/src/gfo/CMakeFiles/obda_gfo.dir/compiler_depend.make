# Empty compiler generated dependencies file for obda_gfo.
# This may be replaced when dependencies are built.
