file(REMOVE_RECURSE
  "CMakeFiles/obda_gfo.dir/fo_formula.cc.o"
  "CMakeFiles/obda_gfo.dir/fo_formula.cc.o.d"
  "CMakeFiles/obda_gfo.dir/fo_omq.cc.o"
  "CMakeFiles/obda_gfo.dir/fo_omq.cc.o.d"
  "libobda_gfo.a"
  "libobda_gfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_gfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
