# Empty dependencies file for obda_data.
# This may be replaced when dependencies are built.
