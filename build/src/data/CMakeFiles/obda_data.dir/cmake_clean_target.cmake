file(REMOVE_RECURSE
  "libobda_data.a"
)
