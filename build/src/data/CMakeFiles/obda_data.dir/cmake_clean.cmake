file(REMOVE_RECURSE
  "CMakeFiles/obda_data.dir/generator.cc.o"
  "CMakeFiles/obda_data.dir/generator.cc.o.d"
  "CMakeFiles/obda_data.dir/homomorphism.cc.o"
  "CMakeFiles/obda_data.dir/homomorphism.cc.o.d"
  "CMakeFiles/obda_data.dir/instance.cc.o"
  "CMakeFiles/obda_data.dir/instance.cc.o.d"
  "CMakeFiles/obda_data.dir/io.cc.o"
  "CMakeFiles/obda_data.dir/io.cc.o.d"
  "CMakeFiles/obda_data.dir/ops.cc.o"
  "CMakeFiles/obda_data.dir/ops.cc.o.d"
  "CMakeFiles/obda_data.dir/schema.cc.o"
  "CMakeFiles/obda_data.dir/schema.cc.o.d"
  "libobda_data.a"
  "libobda_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
