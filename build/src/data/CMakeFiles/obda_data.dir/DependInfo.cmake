
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/obda_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/obda_data.dir/generator.cc.o.d"
  "/root/repo/src/data/homomorphism.cc" "src/data/CMakeFiles/obda_data.dir/homomorphism.cc.o" "gcc" "src/data/CMakeFiles/obda_data.dir/homomorphism.cc.o.d"
  "/root/repo/src/data/instance.cc" "src/data/CMakeFiles/obda_data.dir/instance.cc.o" "gcc" "src/data/CMakeFiles/obda_data.dir/instance.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/obda_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/obda_data.dir/io.cc.o.d"
  "/root/repo/src/data/ops.cc" "src/data/CMakeFiles/obda_data.dir/ops.cc.o" "gcc" "src/data/CMakeFiles/obda_data.dir/ops.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/obda_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/obda_data.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/obda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
