# Empty compiler generated dependencies file for obda_csp.
# This may be replaced when dependencies are built.
