file(REMOVE_RECURSE
  "CMakeFiles/obda_csp.dir/consistency.cc.o"
  "CMakeFiles/obda_csp.dir/consistency.cc.o.d"
  "CMakeFiles/obda_csp.dir/duality.cc.o"
  "CMakeFiles/obda_csp.dir/duality.cc.o.d"
  "CMakeFiles/obda_csp.dir/obstruction.cc.o"
  "CMakeFiles/obda_csp.dir/obstruction.cc.o.d"
  "CMakeFiles/obda_csp.dir/query.cc.o"
  "CMakeFiles/obda_csp.dir/query.cc.o.d"
  "CMakeFiles/obda_csp.dir/rewritability.cc.o"
  "CMakeFiles/obda_csp.dir/rewritability.cc.o.d"
  "CMakeFiles/obda_csp.dir/width.cc.o"
  "CMakeFiles/obda_csp.dir/width.cc.o.d"
  "libobda_csp.a"
  "libobda_csp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_csp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
