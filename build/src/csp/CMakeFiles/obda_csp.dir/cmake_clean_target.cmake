file(REMOVE_RECURSE
  "libobda_csp.a"
)
