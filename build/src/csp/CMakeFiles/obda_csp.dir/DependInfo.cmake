
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csp/consistency.cc" "src/csp/CMakeFiles/obda_csp.dir/consistency.cc.o" "gcc" "src/csp/CMakeFiles/obda_csp.dir/consistency.cc.o.d"
  "/root/repo/src/csp/duality.cc" "src/csp/CMakeFiles/obda_csp.dir/duality.cc.o" "gcc" "src/csp/CMakeFiles/obda_csp.dir/duality.cc.o.d"
  "/root/repo/src/csp/obstruction.cc" "src/csp/CMakeFiles/obda_csp.dir/obstruction.cc.o" "gcc" "src/csp/CMakeFiles/obda_csp.dir/obstruction.cc.o.d"
  "/root/repo/src/csp/query.cc" "src/csp/CMakeFiles/obda_csp.dir/query.cc.o" "gcc" "src/csp/CMakeFiles/obda_csp.dir/query.cc.o.d"
  "/root/repo/src/csp/rewritability.cc" "src/csp/CMakeFiles/obda_csp.dir/rewritability.cc.o" "gcc" "src/csp/CMakeFiles/obda_csp.dir/rewritability.cc.o.d"
  "/root/repo/src/csp/width.cc" "src/csp/CMakeFiles/obda_csp.dir/width.cc.o" "gcc" "src/csp/CMakeFiles/obda_csp.dir/width.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/obda_base.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/obda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/obda_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/ddlog/CMakeFiles/obda_ddlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
