file(REMOVE_RECURSE
  "libobda_mmsnp.a"
)
