
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmsnp/containment.cc" "src/mmsnp/CMakeFiles/obda_mmsnp.dir/containment.cc.o" "gcc" "src/mmsnp/CMakeFiles/obda_mmsnp.dir/containment.cc.o.d"
  "/root/repo/src/mmsnp/formula.cc" "src/mmsnp/CMakeFiles/obda_mmsnp.dir/formula.cc.o" "gcc" "src/mmsnp/CMakeFiles/obda_mmsnp.dir/formula.cc.o.d"
  "/root/repo/src/mmsnp/mmsnp2.cc" "src/mmsnp/CMakeFiles/obda_mmsnp.dir/mmsnp2.cc.o" "gcc" "src/mmsnp/CMakeFiles/obda_mmsnp.dir/mmsnp2.cc.o.d"
  "/root/repo/src/mmsnp/translate.cc" "src/mmsnp/CMakeFiles/obda_mmsnp.dir/translate.cc.o" "gcc" "src/mmsnp/CMakeFiles/obda_mmsnp.dir/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/obda_base.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/obda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/obda_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/ddlog/CMakeFiles/obda_ddlog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
