file(REMOVE_RECURSE
  "CMakeFiles/obda_mmsnp.dir/containment.cc.o"
  "CMakeFiles/obda_mmsnp.dir/containment.cc.o.d"
  "CMakeFiles/obda_mmsnp.dir/formula.cc.o"
  "CMakeFiles/obda_mmsnp.dir/formula.cc.o.d"
  "CMakeFiles/obda_mmsnp.dir/mmsnp2.cc.o"
  "CMakeFiles/obda_mmsnp.dir/mmsnp2.cc.o.d"
  "CMakeFiles/obda_mmsnp.dir/translate.cc.o"
  "CMakeFiles/obda_mmsnp.dir/translate.cc.o.d"
  "libobda_mmsnp.a"
  "libobda_mmsnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_mmsnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
