# Empty compiler generated dependencies file for obda_mmsnp.
# This may be replaced when dependencies are built.
