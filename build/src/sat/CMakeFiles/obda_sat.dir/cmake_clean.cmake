file(REMOVE_RECURSE
  "CMakeFiles/obda_sat.dir/solver.cc.o"
  "CMakeFiles/obda_sat.dir/solver.cc.o.d"
  "libobda_sat.a"
  "libobda_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
