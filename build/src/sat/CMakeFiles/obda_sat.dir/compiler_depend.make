# Empty compiler generated dependencies file for obda_sat.
# This may be replaced when dependencies are built.
