file(REMOVE_RECURSE
  "libobda_sat.a"
)
