file(REMOVE_RECURSE
  "libobda_ddlog.a"
)
