
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddlog/datalog.cc" "src/ddlog/CMakeFiles/obda_ddlog.dir/datalog.cc.o" "gcc" "src/ddlog/CMakeFiles/obda_ddlog.dir/datalog.cc.o.d"
  "/root/repo/src/ddlog/eval.cc" "src/ddlog/CMakeFiles/obda_ddlog.dir/eval.cc.o" "gcc" "src/ddlog/CMakeFiles/obda_ddlog.dir/eval.cc.o.d"
  "/root/repo/src/ddlog/program.cc" "src/ddlog/CMakeFiles/obda_ddlog.dir/program.cc.o" "gcc" "src/ddlog/CMakeFiles/obda_ddlog.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/obda_base.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/obda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/obda_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
