file(REMOVE_RECURSE
  "CMakeFiles/obda_ddlog.dir/datalog.cc.o"
  "CMakeFiles/obda_ddlog.dir/datalog.cc.o.d"
  "CMakeFiles/obda_ddlog.dir/eval.cc.o"
  "CMakeFiles/obda_ddlog.dir/eval.cc.o.d"
  "CMakeFiles/obda_ddlog.dir/program.cc.o"
  "CMakeFiles/obda_ddlog.dir/program.cc.o.d"
  "libobda_ddlog.a"
  "libobda_ddlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_ddlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
