# Empty compiler generated dependencies file for obda_ddlog.
# This may be replaced when dependencies are built.
