
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/bounded_model.cc" "src/dl/CMakeFiles/obda_dl.dir/bounded_model.cc.o" "gcc" "src/dl/CMakeFiles/obda_dl.dir/bounded_model.cc.o.d"
  "/root/repo/src/dl/concept.cc" "src/dl/CMakeFiles/obda_dl.dir/concept.cc.o" "gcc" "src/dl/CMakeFiles/obda_dl.dir/concept.cc.o.d"
  "/root/repo/src/dl/ontology.cc" "src/dl/CMakeFiles/obda_dl.dir/ontology.cc.o" "gcc" "src/dl/CMakeFiles/obda_dl.dir/ontology.cc.o.d"
  "/root/repo/src/dl/parser.cc" "src/dl/CMakeFiles/obda_dl.dir/parser.cc.o" "gcc" "src/dl/CMakeFiles/obda_dl.dir/parser.cc.o.d"
  "/root/repo/src/dl/reasoner.cc" "src/dl/CMakeFiles/obda_dl.dir/reasoner.cc.o" "gcc" "src/dl/CMakeFiles/obda_dl.dir/reasoner.cc.o.d"
  "/root/repo/src/dl/transform.cc" "src/dl/CMakeFiles/obda_dl.dir/transform.cc.o" "gcc" "src/dl/CMakeFiles/obda_dl.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/obda_base.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/obda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/obda_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/fo/CMakeFiles/obda_fo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
