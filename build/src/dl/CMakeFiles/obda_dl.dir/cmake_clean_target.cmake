file(REMOVE_RECURSE
  "libobda_dl.a"
)
