file(REMOVE_RECURSE
  "CMakeFiles/obda_dl.dir/bounded_model.cc.o"
  "CMakeFiles/obda_dl.dir/bounded_model.cc.o.d"
  "CMakeFiles/obda_dl.dir/concept.cc.o"
  "CMakeFiles/obda_dl.dir/concept.cc.o.d"
  "CMakeFiles/obda_dl.dir/ontology.cc.o"
  "CMakeFiles/obda_dl.dir/ontology.cc.o.d"
  "CMakeFiles/obda_dl.dir/parser.cc.o"
  "CMakeFiles/obda_dl.dir/parser.cc.o.d"
  "CMakeFiles/obda_dl.dir/reasoner.cc.o"
  "CMakeFiles/obda_dl.dir/reasoner.cc.o.d"
  "CMakeFiles/obda_dl.dir/transform.cc.o"
  "CMakeFiles/obda_dl.dir/transform.cc.o.d"
  "libobda_dl.a"
  "libobda_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
