# Empty dependencies file for obda_dl.
# This may be replaced when dependencies are built.
