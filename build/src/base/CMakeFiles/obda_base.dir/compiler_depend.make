# Empty compiler generated dependencies file for obda_base.
# This may be replaced when dependencies are built.
