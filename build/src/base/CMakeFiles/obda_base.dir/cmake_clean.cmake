file(REMOVE_RECURSE
  "CMakeFiles/obda_base.dir/status.cc.o"
  "CMakeFiles/obda_base.dir/status.cc.o.d"
  "CMakeFiles/obda_base.dir/strings.cc.o"
  "CMakeFiles/obda_base.dir/strings.cc.o.d"
  "libobda_base.a"
  "libobda_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
