file(REMOVE_RECURSE
  "libobda_base.a"
)
