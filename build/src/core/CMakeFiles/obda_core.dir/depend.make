# Empty dependencies file for obda_core.
# This may be replaced when dependencies are built.
