
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/consistency.cc" "src/core/CMakeFiles/obda_core.dir/consistency.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/consistency.cc.o.d"
  "/root/repo/src/core/containment.cc" "src/core/CMakeFiles/obda_core.dir/containment.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/containment.cc.o.d"
  "/root/repo/src/core/csp_translation.cc" "src/core/CMakeFiles/obda_core.dir/csp_translation.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/csp_translation.cc.o.d"
  "/root/repo/src/core/grid_tiling.cc" "src/core/CMakeFiles/obda_core.dir/grid_tiling.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/grid_tiling.cc.o.d"
  "/root/repo/src/core/mddlog_to_csp.cc" "src/core/CMakeFiles/obda_core.dir/mddlog_to_csp.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/mddlog_to_csp.cc.o.d"
  "/root/repo/src/core/mddlog_translation.cc" "src/core/CMakeFiles/obda_core.dir/mddlog_translation.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/mddlog_translation.cc.o.d"
  "/root/repo/src/core/omq.cc" "src/core/CMakeFiles/obda_core.dir/omq.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/omq.cc.o.d"
  "/root/repo/src/core/paper_families.cc" "src/core/CMakeFiles/obda_core.dir/paper_families.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/paper_families.cc.o.d"
  "/root/repo/src/core/rewritability.cc" "src/core/CMakeFiles/obda_core.dir/rewritability.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/rewritability.cc.o.d"
  "/root/repo/src/core/schema_free.cc" "src/core/CMakeFiles/obda_core.dir/schema_free.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/schema_free.cc.o.d"
  "/root/repo/src/core/ucq_translation.cc" "src/core/CMakeFiles/obda_core.dir/ucq_translation.cc.o" "gcc" "src/core/CMakeFiles/obda_core.dir/ucq_translation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/obda_base.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/obda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/obda_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/fo/CMakeFiles/obda_fo.dir/DependInfo.cmake"
  "/root/repo/build/src/csp/CMakeFiles/obda_csp.dir/DependInfo.cmake"
  "/root/repo/build/src/ddlog/CMakeFiles/obda_ddlog.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/obda_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
