file(REMOVE_RECURSE
  "CMakeFiles/obda_core.dir/consistency.cc.o"
  "CMakeFiles/obda_core.dir/consistency.cc.o.d"
  "CMakeFiles/obda_core.dir/containment.cc.o"
  "CMakeFiles/obda_core.dir/containment.cc.o.d"
  "CMakeFiles/obda_core.dir/csp_translation.cc.o"
  "CMakeFiles/obda_core.dir/csp_translation.cc.o.d"
  "CMakeFiles/obda_core.dir/grid_tiling.cc.o"
  "CMakeFiles/obda_core.dir/grid_tiling.cc.o.d"
  "CMakeFiles/obda_core.dir/mddlog_to_csp.cc.o"
  "CMakeFiles/obda_core.dir/mddlog_to_csp.cc.o.d"
  "CMakeFiles/obda_core.dir/mddlog_translation.cc.o"
  "CMakeFiles/obda_core.dir/mddlog_translation.cc.o.d"
  "CMakeFiles/obda_core.dir/omq.cc.o"
  "CMakeFiles/obda_core.dir/omq.cc.o.d"
  "CMakeFiles/obda_core.dir/paper_families.cc.o"
  "CMakeFiles/obda_core.dir/paper_families.cc.o.d"
  "CMakeFiles/obda_core.dir/rewritability.cc.o"
  "CMakeFiles/obda_core.dir/rewritability.cc.o.d"
  "CMakeFiles/obda_core.dir/schema_free.cc.o"
  "CMakeFiles/obda_core.dir/schema_free.cc.o.d"
  "CMakeFiles/obda_core.dir/ucq_translation.cc.o"
  "CMakeFiles/obda_core.dir/ucq_translation.cc.o.d"
  "libobda_core.a"
  "libobda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
