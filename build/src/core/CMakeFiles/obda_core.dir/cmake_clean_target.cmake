file(REMOVE_RECURSE
  "libobda_core.a"
)
