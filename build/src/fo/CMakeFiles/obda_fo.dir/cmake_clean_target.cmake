file(REMOVE_RECURSE
  "libobda_fo.a"
)
