# Empty dependencies file for obda_fo.
# This may be replaced when dependencies are built.
