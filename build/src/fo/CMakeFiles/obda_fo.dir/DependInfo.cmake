
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fo/cq.cc" "src/fo/CMakeFiles/obda_fo.dir/cq.cc.o" "gcc" "src/fo/CMakeFiles/obda_fo.dir/cq.cc.o.d"
  "/root/repo/src/fo/tree.cc" "src/fo/CMakeFiles/obda_fo.dir/tree.cc.o" "gcc" "src/fo/CMakeFiles/obda_fo.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/obda_base.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/obda_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
