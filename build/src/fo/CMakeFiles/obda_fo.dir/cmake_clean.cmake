file(REMOVE_RECURSE
  "CMakeFiles/obda_fo.dir/cq.cc.o"
  "CMakeFiles/obda_fo.dir/cq.cc.o.d"
  "CMakeFiles/obda_fo.dir/tree.cc.o"
  "CMakeFiles/obda_fo.dir/tree.cc.o.d"
  "libobda_fo.a"
  "libobda_fo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obda_fo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
