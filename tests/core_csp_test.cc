#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/csp_translation.h"
#include "core/omq.h"
#include "data/generator.h"
#include "data/io.h"
#include "dl/parser.h"

namespace obda::core {
namespace {

using data::Instance;
using data::Schema;

/// Generates a random EL-ish/ALC ontology over the given schema names.
dl::Ontology RandomOntology(base::Rng& rng,
                            const std::vector<std::string>& concepts,
                            const std::vector<std::string>& roles,
                            int num_axioms, bool allow_disjunction) {
  dl::Ontology o;
  auto random_name = [&] {
    return dl::Concept::Name(concepts[rng.Below(concepts.size())]);
  };
  auto random_role = [&] {
    return dl::Role::Named(roles[rng.Below(roles.size())]);
  };
  auto random_concept = [&](int depth) {
    // Small random concept: name, ∃R.name, ∀R.name, ¬name, name ⊓/⊔ name.
    std::function<dl::Concept(int)> gen = [&](int d) -> dl::Concept {
      switch (d <= 0 ? 0 : rng.Below(6)) {
        case 0:
          return random_name();
        case 1:
          return dl::Concept::Exists(random_role(), gen(d - 1));
        case 2:
          return dl::Concept::Forall(random_role(), gen(d - 1));
        case 3:
          return dl::Concept::Not(gen(d - 1));
        case 4:
          return dl::Concept::And(gen(d - 1), gen(d - 1));
        default:
          return allow_disjunction ? dl::Concept::Or(gen(d - 1), gen(d - 1))
                                   : dl::Concept::And(gen(d - 1),
                                                      gen(d - 1));
      }
    };
    return gen(depth);
  };
  for (int i = 0; i < num_axioms; ++i) {
    o.AddInclusion(random_concept(1), random_concept(1));
  }
  return o;
}

Schema MakeSchema(const std::vector<std::string>& concepts,
                  const std::vector<std::string>& roles) {
  Schema s;
  for (const auto& c : concepts) s.AddRelation(c, 1);
  for (const auto& r : roles) s.AddRelation(r, 2);
  return s;
}

TEST(OmqTest, QuerySchemaExtendsDataSchema) {
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto o = dl::ParseOntology("A [= some R.B\nB [= C");
  ASSERT_TRUE(o.ok());
  auto qs = QuerySchema(s, *o);
  ASSERT_TRUE(qs.ok());
  EXPECT_TRUE(qs->FindRelation("B").has_value());
  EXPECT_TRUE(qs->FindRelation("C").has_value());
  EXPECT_EQ(qs->Arity(*qs->FindRelation("B")), 1);
}

TEST(OmqTest, RejectsNonBinarySchema) {
  Schema s;
  s.AddRelation("T", 3);
  dl::Ontology o;
  fo::UnionOfCq q(s, 0);
  EXPECT_FALSE(OntologyMediatedQuery::Create(s, o, q).ok());
}

TEST(OmqTest, AtomicQueryDetection) {
  Schema s;
  s.AddRelation("A", 1);
  dl::Ontology o;
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, o, "A");
  ASSERT_TRUE(omq.ok());
  EXPECT_EQ(omq->AtomicQueryConcept(), "A");
  EXPECT_FALSE(omq->BooleanAtomicQueryConcept().has_value());
  auto bomq = OntologyMediatedQuery::WithBooleanAtomicQuery(s, o, "A");
  ASSERT_TRUE(bomq.ok());
  EXPECT_EQ(bomq->BooleanAtomicQueryConcept(), "A");
}

TEST(OmqTest, UnknownQueryConceptRejected) {
  Schema s;
  s.AddRelation("A", 1);
  dl::Ontology o;
  EXPECT_FALSE(OntologyMediatedQuery::WithAtomicQuery(s, o, "Nope").ok());
}

// --- Thm 4.6: AQ/BAQ → CSP -------------------------------------------------

TEST(CspTranslationTest, Example45HereditaryPredisposition) {
  // Example 4.5: O = {∃HasParent.HereditaryPredisposition ⊑
  // HereditaryPredisposition}, q2(x) = HereditaryPredisposition(x).
  auto o = dl::ParseOntology(
      "some HasParent.HereditaryPredisposition [= HereditaryPredisposition");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("HereditaryPredisposition", 1);
  s.AddRelation("HasParent", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(
      s, *o, "HereditaryPredisposition");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  ASSERT_TRUE(csp.ok()) << csp.status().ToString();

  auto d = data::ParseInstance(s, R"(
    HasParent(c, p). HasParent(p, g). HereditaryPredisposition(g).
    HasParent(x, y)
  )");
  ASSERT_TRUE(d.ok());
  auto answers = csp->Evaluate(*d);
  // c, p, g are certain; x, y are not.
  ASSERT_EQ(answers.size(), 3u);
  std::vector<std::string> names;
  for (const auto& t : answers) names.push_back(d->ConstantName(t[0]));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"c", "g", "p"}));
}

TEST(CspTranslationTest, BooleanAtomicQuery) {
  // O = {A ⊑ ∃R.Goal}: ∃x.Goal(x) is certain whenever the data contains
  // an A-fact.
  auto o = dl::ParseOntology("A [= some R.Goal");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithBooleanAtomicQuery(s, *o, "Goal");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  ASSERT_TRUE(csp.ok());

  auto d1 = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d1.ok());
  EXPECT_TRUE(csp->IsAnswer(*d1, {}));
  auto d2 = data::ParseInstance(s, "R(a,b)");
  ASSERT_TRUE(d2.ok());
  EXPECT_FALSE(csp->IsAnswer(*d2, {}));
}

TEST(CspTranslationTest, DisjunctionMakesNoCertainAnswer) {
  auto o = dl::ParseOntology("A [= B | C");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "B");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  ASSERT_TRUE(csp.ok());
  auto d = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(csp->Evaluate(*d).empty());
}

TEST(CspTranslationTest, InconsistentDataYieldsAllAnswers) {
  auto o = dl::ParseOntology("A [= bot");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "B");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  ASSERT_TRUE(csp.ok());
  auto d = data::ParseInstance(s, "A(a). B(b)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(csp->Evaluate(*d).size(), 2u);
}

TEST(CspTranslationTest, UniversalRoleDisconnectedEffect) {
  // O = {∃U.A ⊑ Goal... } via: A ⊑ ∀U.Goal — any A-fact makes EVERY
  // element Goal-certain, even in disconnected components.
  auto o = dl::ParseOntology("A [= all U!.Goal");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "Goal");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  ASSERT_TRUE(csp.ok());
  auto d = data::ParseInstance(s, "A(a). R(u,v)");
  ASSERT_TRUE(d.ok());
  auto answers = csp->Evaluate(*d);
  EXPECT_EQ(answers.size(), 3u);  // a, u, v all certain
  auto d2 = data::ParseInstance(s, "R(u,v)");
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(csp->Evaluate(*d2).empty());
}

TEST(CspTranslationTest, TransitiveRoleReachability) {
  // trans(R), ∃R.Mark ⊑ Mark': with R transitive the certain answers of
  // ... keep simple: O = {trans(R), some R.Bad [= Alarm}; with
  // transitivity, R-reachability in two steps triggers Alarm only if the
  // ontology sees the composed edge — data edges compose via trans(R).
  auto o = dl::ParseOntology("trans(R)\nsome R.Bad [= Alarm");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("Bad", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "Alarm");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  ASSERT_TRUE(csp.ok());
  auto d = data::ParseInstance(s, "R(a,b). R(b,c). Bad(c)");
  ASSERT_TRUE(d.ok());
  auto answers = csp->Evaluate(*d);
  std::vector<std::string> names;
  for (const auto& t : answers) names.push_back(d->ConstantName(t[0]));
  std::sort(names.begin(), names.end());
  // Both a (via transitivity) and b (directly) see Bad.
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(CspTranslationTest, InverseRoles) {
  // ∃inv(R).Mark ⊑ Hit: y is a certain Hit whenever R(x,y) with Mark(x).
  auto o = dl::ParseOntology("some inv(R).Mark [= Hit");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("Mark", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "Hit");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  ASSERT_TRUE(csp.ok());
  auto d = data::ParseInstance(s, "Mark(x). R(x,y). R(z,w)");
  ASSERT_TRUE(d.ok());
  auto answers = csp->Evaluate(*d);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(d->ConstantName(answers[0][0]), "y");
}

TEST(CspTranslationTest, RoleHierarchy) {
  // rsub(Narrow, Wide), ∃Wide.A ⊑ Hit: Narrow edges count as Wide.
  auto o = dl::ParseOntology("rsub(Narrow, Wide)\nsome Wide.A [= Hit");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("Narrow", 2);
  s.AddRelation("Wide", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "Hit");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  ASSERT_TRUE(csp.ok());
  auto d = data::ParseInstance(s, "Narrow(u,v). A(v)");
  ASSERT_TRUE(d.ok());
  auto answers = csp->Evaluate(*d);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(d->ConstantName(answers[0][0]), "u");
}

TEST(CspTranslationTest, FunctionalRolesRejected) {
  auto o = dl::ParseOntology("func(R)\nA [= B");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "B");
  ASSERT_TRUE(omq.ok());
  EXPECT_FALSE(CompileToCsp(*omq).ok());
}

// --- Cross-validation against the bounded reference engine -----------------

class CspVsBoundedTest : public ::testing::TestWithParam<int> {};

TEST_P(CspVsBoundedTest, AgreeOnRandomOntologiesAndData) {
  base::Rng rng(GetParam());
  std::vector<std::string> concepts = {"A", "B", "C"};
  std::vector<std::string> roles = {"R", "S"};
  Schema s = MakeSchema(concepts, roles);
  dl::Ontology o = RandomOntology(rng, concepts, roles, 3,
                                  /*allow_disjunction=*/true);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, o, "C");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  if (!csp.ok()) GTEST_SKIP() << "type space too large for this seed";

  for (int trial = 0; trial < 3; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 3;
    opts.facts_per_relation = 3;
    Instance d = data::RandomInstance(s, opts, rng);
    auto via_csp = csp->Evaluate(d);
    dl::BoundedModelOptions bounded;
    bounded.extra_elements = 5;
    auto reference = omq->CertainAnswersBounded(d, bounded);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EXPECT_EQ(via_csp, *reference)
        << "seed " << GetParam() << " trial " << trial << "\nontology:\n"
        << o.ToString() << "data:\n"
        << d.ToString();
  }
}

TEST_P(CspVsBoundedTest, BooleanVariantAgrees) {
  base::Rng rng(1000 + GetParam());
  std::vector<std::string> concepts = {"A", "B"};
  std::vector<std::string> roles = {"R"};
  Schema s = MakeSchema(concepts, roles);
  dl::Ontology o = RandomOntology(rng, concepts, roles, 2,
                                  /*allow_disjunction=*/true);
  auto omq = OntologyMediatedQuery::WithBooleanAtomicQuery(s, o, "B");
  ASSERT_TRUE(omq.ok());
  auto csp = CompileToCsp(*omq);
  if (!csp.ok()) GTEST_SKIP();
  for (int trial = 0; trial < 3; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 3;
    opts.facts_per_relation = 2;
    Instance d = data::RandomInstance(s, opts, rng);
    auto via_csp = csp->Evaluate(d);
    dl::BoundedModelOptions bounded;
    bounded.extra_elements = 5;
    auto reference = omq->CertainAnswersBounded(d, bounded);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(via_csp, *reference)
        << "seed " << GetParam() << " trial " << trial << "\nontology:\n"
        << o.ToString() << "data:\n"
        << d.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CspVsBoundedTest, ::testing::Range(0, 15));

// --- Thm 4.6 reverse: CSP → OMQ ---------------------------------------------

TEST(CspToOmqTest, RoundTripOnK2) {
  Instance k2 = data::Clique("E", 2);
  auto omq = CspToOmq(k2);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  // The OMQ's Boolean certain answer = not-2-colorable.
  dl::BoundedModelOptions options;
  options.extra_elements = 0;  // picks need no fresh elements
  auto on_odd = omq->CertainAnswersBounded(data::DirectedCycle("E", 3),
                                           options);
  ASSERT_TRUE(on_odd.ok());
  EXPECT_EQ(on_odd->size(), 1u);  // Boolean true
  auto on_even = omq->CertainAnswersBounded(data::DirectedCycle("E", 4),
                                            options);
  ASSERT_TRUE(on_even.ok());
  EXPECT_TRUE(on_even->empty());
}

TEST(CspToOmqTest, RoundTripThroughCompileToCsp) {
  // CSP → OMQ → CSP: the recompiled query must agree with the original
  // coCSP on random instances.
  Instance b = data::DirectedPath("E", 1);
  auto omq = CspToOmq(b);
  ASSERT_TRUE(omq.ok());
  auto recompiled = CompileToCsp(*omq);
  ASSERT_TRUE(recompiled.ok()) << recompiled.status().ToString();
  csp::CoCspQuery original = csp::CoCspQuery::ForTemplate(b);
  base::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Instance d = data::RandomDigraph("E", 4, 4, rng);
    EXPECT_EQ(original.IsAnswer(d, {}), recompiled->IsAnswer(d, {}))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace obda::core
