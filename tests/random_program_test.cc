// Property sweep over RANDOMLY GENERATED simple connected MDDlog
// programs: the direct Thm 4.6 template construction, the Thm 3.4(2)
// OMQ round trip, and the SAT-based certain-answer engine must all
// define the same query.

#include <gtest/gtest.h>

#include <string>

#include "base/rng.h"
#include "core/csp_translation.h"
#include "core/mddlog_to_csp.h"
#include "core/mddlog_translation.h"
#include "data/generator.h"
#include "ddlog/eval.h"

namespace obda {
namespace {

using data::Instance;
using data::Schema;

/// Generates a random connected simple monadic program over {E/2, L/1}
/// with `num_idb` unary IDBs and a Boolean or unary goal.
ddlog::Program RandomSimpleProgram(base::Rng& rng, int num_idb,
                                   bool boolean_goal) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("L", 1);
  ddlog::Program program(s);
  std::vector<ddlog::PredId> idb;
  for (int i = 0; i < num_idb; ++i) {
    idb.push_back(program.AddIdbPredicate("P" + std::to_string(i), 1));
  }
  ddlog::PredId goal =
      program.AddIdbPredicate("goal", boolean_goal ? 0 : 1);
  program.SetGoal(goal);
  ddlog::PredId adom = program.EnsureAdom();
  auto add = [&program](std::vector<ddlog::Atom> head,
                        std::vector<ddlog::Atom> body) {
    OBDA_CHECK(program
                   .AddRule(ddlog::Rule{std::move(head), std::move(body)})
                   .ok());
  };
  // Guess rule: a random disjunction of IDBs over adom.
  {
    std::vector<ddlog::Atom> head;
    for (ddlog::PredId p : idb) {
      if (rng.Chance(2, 3)) head.push_back({p, {0}});
    }
    if (head.empty()) head.push_back({idb[0], {0}});
    add(std::move(head), {{adom, {0}}});
  }
  // 2-4 random constraint/propagation rules over an E-edge.
  const int extra = 2 + static_cast<int>(rng.Below(3));
  for (int r = 0; r < extra; ++r) {
    std::vector<ddlog::Atom> body = {{0 /*E*/, {0, 1}}};
    body.push_back(
        {idb[rng.Below(idb.size())], {static_cast<ddlog::VarId>(
                                         rng.Below(2))}});
    if (rng.Chance(1, 2)) {
      body.push_back(
          {idb[rng.Below(idb.size())], {static_cast<ddlog::VarId>(
                                           rng.Below(2))}});
    }
    std::vector<ddlog::Atom> head;
    if (rng.Chance(1, 2)) {
      head.push_back(
          {idb[rng.Below(idb.size())], {static_cast<ddlog::VarId>(
                                           rng.Below(2))}});
    }
    add(std::move(head), std::move(body));
  }
  // One unary trigger involving L, and the goal rule.
  add({{idb[rng.Below(idb.size())], {0}}}, {{1 /*L*/, {0}}});
  if (boolean_goal) {
    add({{goal, {}}},
        {{0 /*E*/, {0, 1}}, {idb[rng.Below(idb.size())], {0}}});
  } else {
    add({{goal, {0}}}, {{idb[rng.Below(idb.size())], {0}}});
  }
  return program;
}

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, ThreeRoutesAgree) {
  base::Rng rng(GetParam());
  const bool boolean_goal = GetParam() % 2 == 0;
  ddlog::Program program =
      RandomSimpleProgram(rng, 2 + GetParam() % 2, boolean_goal);
  ASSERT_TRUE(program.Validate().ok());
  ASSERT_TRUE(program.IsMonadic());
  ASSERT_TRUE(program.IsSimple());
  ASSERT_TRUE(program.IsConnected());

  auto direct = core::SimpleMddlogToCsp(program);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto omq = core::SimpleMddlogToOmq(program);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  auto via_omq = core::CompileToCsp(*omq);
  ASSERT_TRUE(via_omq.ok()) << via_omq.status().ToString();

  for (int trial = 0; trial < 3; ++trial) {
    Instance d(program.edb_schema());
    const int n = 4;
    for (int i = 0; i < n; ++i) d.AddConstant("c" + std::to_string(i));
    for (int e = 0; e < 5; ++e) {
      d.AddFact(0, {static_cast<data::ConstId>(rng.Below(n)),
                    static_cast<data::ConstId>(rng.Below(n))});
    }
    if (rng.Chance(1, 2)) {
      d.AddFact(1, {static_cast<data::ConstId>(rng.Below(n))});
    }
    auto a_sat = ddlog::CertainAnswers(program, d);
    ASSERT_TRUE(a_sat.ok());
    auto a_direct = direct->Evaluate(d);
    auto a_omq = via_omq->Evaluate(d);
    EXPECT_EQ(a_sat->tuples, a_direct)
        << "seed " << GetParam() << " trial " << trial << "\nprogram:\n"
        << program.ToString() << "data:\n" << d.ToString();
    EXPECT_EQ(a_sat->tuples, a_omq)
        << "seed " << GetParam() << " trial " << trial << "\nprogram:\n"
        << program.ToString() << "data:\n" << d.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace obda
