#include <gtest/gtest.h>

#include "base/rng.h"
#include "csp/consistency.h"
#include "csp/duality.h"
#include "csp/obstruction.h"
#include "csp/query.h"
#include "csp/rewritability.h"
#include "csp/width.h"
#include "data/generator.h"
#include "data/homomorphism.h"
#include "data/io.h"
#include "ddlog/datalog.h"

namespace obda::csp {
namespace {

using data::ConstId;
using data::Instance;

TEST(CoCspTest, ThreeColorabilityComplement) {
  CoCspQuery q = CoCspQuery::ForTemplate(data::Clique("E", 3));
  // K4 is not 3-colorable: Boolean answer true.
  EXPECT_TRUE(q.IsAnswer(data::Clique("E", 4), {}));
  EXPECT_FALSE(q.IsAnswer(data::Clique("E", 3), {}));
  EXPECT_FALSE(q.IsAnswer(data::DirectedCycle("E", 5), {}));
}

TEST(CoCspTest, GeneralizedTemplatesAreUnion) {
  // F = {K2, loop}: answer iff neither 2-colorable nor loop-absorbable.
  CoCspQuery q(data::Clique("E", 2).schema(), 0);
  q.AddTemplate(data::MarkedInstance{data::Clique("E", 2), {}});
  q.AddTemplate(data::MarkedInstance{data::Loop("E"), {}});
  // Anything maps into the loop, so no instance is an answer.
  EXPECT_FALSE(q.IsAnswer(data::Clique("E", 5), {}));
}

TEST(CoCspTest, MarkedElementQuery) {
  // Template: path a->b with mark b; answers = elements with no outgoing
  // ... rather: (D,d) -> (B,b) iff d can play "b". Use B = single edge
  // (u,v), mark v: d is an answer iff d has no hom role as edge target,
  // i.e. no incoming... Actually any D maps: u,v both needed? Take D a
  // single vertex with no edges: it maps to v. Take D = edge (x,y):
  // (D,x) -> must map x to v, then edge (x,y) has no image (no edge out
  // of v): x is an answer iff x has an outgoing edge... Let's check.
  Instance b = data::DirectedPath("E", 1);  // v0 -> v1
  CoCspQuery q(b.schema(), 1);
  q.AddTemplate(data::MarkedInstance{b, {*b.FindConstant("v1")}});
  auto d = data::ParseInstance(b.schema(), "E(x,y)");
  ASSERT_TRUE(d.ok());
  // x must map to v1; edge E(x,y) then has no image: x is an answer.
  EXPECT_TRUE(q.IsAnswer(*d, {*d->FindConstant("x")}));
  // y maps to v1, x to v0: fine, so y is not an answer.
  EXPECT_FALSE(q.IsAnswer(*d, {*d->FindConstant("y")}));
}

TEST(CoCspTest, ReduceToIncomparable) {
  CoCspQuery q(data::Clique("E", 2).schema(), 0);
  q.AddTemplate(data::MarkedInstance{data::Clique("E", 2), {}});
  q.AddTemplate(data::MarkedInstance{data::Clique("E", 3), {}});
  // K2 -> K3, so K2 is redundant.
  CoCspQuery reduced = q.ReduceToIncomparable();
  ASSERT_EQ(reduced.templates().size(), 1u);
  EXPECT_EQ(reduced.templates()[0].instance.UniverseSize(), 3u);
}

TEST(CoCspTest, ContainmentViaTemplateHoms) {
  CoCspQuery co_k2 = CoCspQuery::ForTemplate(data::Clique("E", 2));
  CoCspQuery co_k3 = CoCspQuery::ForTemplate(data::Clique("E", 3));
  // not-3-colorable implies not-2-colorable: coCSP(K3) ⊆ coCSP(K2).
  EXPECT_TRUE(CoCspContained(co_k3, co_k2));
  EXPECT_FALSE(CoCspContained(co_k2, co_k3));
  EXPECT_TRUE(CoCspContained(co_k2, co_k2));
}

TEST(CoCspTest, CollapsedTemplatesCarryMarks) {
  Instance b = data::DirectedPath("E", 1);
  CoCspQuery q(b.schema(), 1);
  q.AddTemplate(data::MarkedInstance{b, {*b.FindConstant("v1")}});
  auto collapsed = q.CollapsedTemplates();
  ASSERT_EQ(collapsed.size(), 1u);
  auto mark = collapsed[0].schema().FindRelation("Mark1");
  ASSERT_TRUE(mark.has_value());
  EXPECT_EQ(collapsed[0].NumTuples(*mark), 1u);
}

// --- Dismantling / FO-definability (Larose–Loten–Tardif) -------------------

TEST(DualityTest, DominationBasics) {
  auto d = data::ParseInstanceAuto("E(a,x). E(b,x). E(b,y)");
  ASSERT_TRUE(d.ok());
  // a's facts: E(a,x); replacing a by b gives E(b,x) ∈ D: b dominates a.
  EXPECT_TRUE(Dominates(*d, *d->FindConstant("b"), *d->FindConstant("a")));
  EXPECT_FALSE(Dominates(*d, *d->FindConstant("a"), *d->FindConstant("b")));
}

/// The transitive tournament T_n on n vertices (edges i -> j for i < j).
/// (T_k, P_{k+1}) is the classical finite duality pair: D → T_k iff D has
/// no directed walk of length k+1.
Instance TransitiveTournament(int n) {
  data::Schema s;
  s.AddRelation("E", 2);
  Instance g(s);
  for (int i = 0; i < n; ++i) g.AddConstant("v" + std::to_string(i));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      g.AddFact(0, {static_cast<ConstId>(i), static_cast<ConstId>(j)});
    }
  }
  return g;
}

TEST(DualityTest, SingleEdgeIsFoDefinable) {
  // CSP(P_1): D maps iff the "two consecutive edges" tree does not embed;
  // the unique critical obstruction is P_2, so the CSP is FO.
  EXPECT_TRUE(IsFoDefinable(data::DirectedPath("E", 1)));
}

TEST(DualityTest, LongerPathsAreNotFoDefinable) {
  // Subtle ground truth: CSP(P_k) for k >= 2 is NOT FO-definable.
  // Homomorphisms to a path are exact level functions (+1 along every
  // edge), and arbitrarily long zigzag trees reach level-span k+1 only
  // globally — an infinite family of critical obstructions. (The finite
  // duality (P_{k+1}, T_k) holds for transitive tournaments T_k, not
  // paths.)
  EXPECT_FALSE(IsFoDefinable(data::DirectedPath("E", 2)));
  EXPECT_FALSE(IsFoDefinable(data::DirectedPath("E", 3)));
}

TEST(DualityTest, TransitiveTournamentsAreFoDefinable) {
  // D → T_k iff no directed walk of length k+1: a first-order property
  // with single obstruction P_{k+1}.
  EXPECT_TRUE(IsFoDefinable(TransitiveTournament(2)));
  EXPECT_TRUE(IsFoDefinable(TransitiveTournament(3)));
}

TEST(DualityTest, LoopIsFoDefinable) {
  // Everything maps into a loop: CSP is trivially FO-definable (true).
  EXPECT_TRUE(IsFoDefinable(data::Loop("E")));
}

TEST(DualityTest, CliquesAreNotFoDefinable) {
  // 2-colorability and 3-colorability are not FO.
  EXPECT_FALSE(IsFoDefinable(data::Clique("E", 2)));
  EXPECT_FALSE(IsFoDefinable(data::Clique("E", 3)));
}

TEST(DualityTest, DirectedCycleNotFoDefinable) {
  // CSP(directed 2-cycle): D maps iff ... (parity-like); not FO.
  EXPECT_FALSE(IsFoDefinable(data::DirectedCycle("E", 2)));
}

// --- Bounded width / WNU polymorphisms -------------------------------------

TEST(WidthTest, K2HasBoundedWidthK3DoesNot) {
  auto k2 = HasBoundedWidth(data::Clique("E", 2));
  ASSERT_TRUE(k2.ok());
  EXPECT_TRUE(*k2);  // 2-coloring is datalog-rewritable (odd cycles)
  auto k3 = HasBoundedWidth(data::Clique("E", 3));
  ASSERT_TRUE(k3.ok());
  EXPECT_FALSE(*k3);  // 3-coloring is NP-complete
}

TEST(WidthTest, PathsHaveBoundedWidth) {
  auto p2 = HasBoundedWidth(data::DirectedPath("E", 2));
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(*p2);
}

TEST(WidthTest, MajorityOnK2) {
  // K2 has the (unique) majority operation on {0,1}.
  auto m = HasMajorityPolymorphism(data::Clique("E", 2));
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(*m);
  auto m3 = HasMajorityPolymorphism(data::Clique("E", 3));
  ASSERT_TRUE(m3.ok());
  EXPECT_FALSE(*m3);
}

TEST(WidthTest, WnuArity3OnK3Fails) {
  auto w = HasWnuPolymorphism(data::Clique("E", 3), 3);
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(*w);
}

TEST(WidthTest, FoDefinableImpliesBoundedWidth) {
  // Sanity: FO-rewritable templates are in particular datalog-rewritable.
  for (const Instance& b :
       {data::DirectedPath("E", 1), TransitiveTournament(3)}) {
    ASSERT_TRUE(IsFoDefinable(b));
    auto bounded = HasBoundedWidth(b);
    ASSERT_TRUE(bounded.ok());
    EXPECT_TRUE(*bounded);
  }
}

// --- Local consistency ------------------------------------------------------

TEST(ConsistencyTest, ArcConsistencyOnPaths) {
  // Template P_2 (path of length 2): AC refutes exactly the instances
  // containing a directed path of length 3 (tree duality).
  Instance b = data::DirectedPath("E", 2);
  EXPECT_TRUE(ArcConsistencyRefutes(data::DirectedPath("E", 3), b));
  EXPECT_FALSE(ArcConsistencyRefutes(data::DirectedPath("E", 2), b));
  EXPECT_TRUE(ArcConsistencyRefutes(data::DirectedCycle("E", 3), b));
}

TEST(ConsistencyTest, ArcConsistencyIncompleteForK2) {
  // Odd cycles are not AC-refutable against K2 (no tree duality), but
  // genuinely have no homomorphism.
  Instance k2 = data::Clique("E", 2);
  Instance c5 = data::DirectedCycle("E", 5);
  EXPECT_FALSE(ArcConsistencyRefutes(c5, k2));
  EXPECT_FALSE(*data::HomomorphismExists(c5, k2));
}

TEST(ConsistencyTest, PairwiseConsistencyCompleteForK2) {
  // K2 has bounded width, so (2,3)-consistency decides CSP(K2).
  Instance k2 = data::Clique("E", 2);
  base::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Instance d = data::RandomDigraph("E", 6, 8, rng);
    bool hom = *data::HomomorphismExists(d, k2);
    bool refuted = PairwiseConsistencyRefutes(d, k2);
    EXPECT_EQ(hom, !refuted) << "trial " << trial;
  }
}

TEST(ConsistencyTest, PairwiseSoundOnK3) {
  // Soundness: a refutation implies no homomorphism (K3 has unbounded
  // width, so no completeness claim).
  Instance k3 = data::Clique("E", 3);
  base::Rng rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    Instance d = data::RandomDigraph("E", 6, 14, rng);
    if (PairwiseConsistencyRefutes(d, k3)) {
      EXPECT_FALSE(*data::HomomorphismExists(d, k3));
    }
  }
}

TEST(ConsistencyTest, CanonicalProgramMatchesAcOnTreeDualTemplate) {
  // For P_2 (tree duality), the canonical program is a datalog-rewriting:
  // goal iff no homomorphism.
  Instance b = data::DirectedPath("E", 2);
  auto program = CanonicalArcConsistencyProgram(b);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  base::Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    Instance d = data::RandomDigraph("E", 5, 6, rng);
    auto result = ddlog::EvaluateDatalog(*program, d);
    ASSERT_TRUE(result.ok());
    bool goal_derived = !result->goal_tuples.empty();
    EXPECT_EQ(goal_derived, !*data::HomomorphismExists(d, b))
        << "trial " << trial;
  }
}

TEST(ConsistencyTest, CanonicalProgramIsSoundOnK2) {
  // On K2 the canonical width-1 program is sound but incomplete (C5 is a
  // non-2-colorable instance it cannot refute).
  Instance k2 = data::Clique("E", 2);
  auto program = CanonicalArcConsistencyProgram(k2);
  ASSERT_TRUE(program.ok());
  auto result = ddlog::EvaluateDatalog(*program, data::DirectedCycle("E", 5));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->goal_tuples.empty());  // incomplete here
}

// --- Obstructions -----------------------------------------------------------

TEST(ObstructionTest, PathTemplateObstructionIsLongerPath) {
  // CSP(P_k): the unique critical tree obstruction is the path of length
  // k+1.
  Instance b = data::DirectedPath("E", 1);
  auto obstructions = TreeObstructions(b);
  ASSERT_TRUE(obstructions.ok()) << obstructions.status().ToString();
  ASSERT_EQ(obstructions->size(), 1u);
  EXPECT_EQ((*obstructions)[0].NumFacts(), 2u);  // path of length 2
  EXPECT_FALSE(*data::HomomorphismExists((*obstructions)[0], b));
}

TEST(ObstructionTest, ObstructionSetDecidesCsp) {
  // T_3 has finite duality with dual {P_4} (4 edges, 5 nodes — within the
  // bound): D → T_3 iff no T ∈ Ω maps into D.
  Instance b = TransitiveTournament(3);
  auto obstructions = TreeObstructions(b);
  ASSERT_TRUE(obstructions.ok());
  ASSERT_FALSE(obstructions->empty());
  base::Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    Instance d = data::RandomDigraph("E", 5, 5, rng);
    bool hom = *data::HomomorphismExists(d, b);
    bool obstructed = false;
    for (const Instance& t : *obstructions) {
      if (*data::HomomorphismExists(t, d)) obstructed = true;
    }
    EXPECT_EQ(hom, !obstructed) << "trial " << trial;
  }
}

TEST(ObstructionTest, LoopHasNoObstructions) {
  auto obstructions = TreeObstructions(data::Loop("E"));
  ASSERT_TRUE(obstructions.ok());
  EXPECT_TRUE(obstructions->empty());
}

// --- Rewritability pipeline -------------------------------------------------

TEST(RewritabilityTest, PipelineOnKnownTemplates) {
  // FO-rewritable: coCSP(P_1).
  auto fo_path = IsFoRewritable(
      CoCspQuery::ForTemplate(data::DirectedPath("E", 1)));
  ASSERT_TRUE(fo_path.ok());
  EXPECT_TRUE(*fo_path);
  // Datalog- but not FO-rewritable: coCSP(K2).
  CoCspQuery k2 = CoCspQuery::ForTemplate(data::Clique("E", 2));
  auto fo_k2 = IsFoRewritable(k2);
  ASSERT_TRUE(fo_k2.ok());
  EXPECT_FALSE(*fo_k2);
  auto dl_k2 = IsDatalogRewritable(k2);
  ASSERT_TRUE(dl_k2.ok());
  EXPECT_TRUE(*dl_k2);
  // Neither: coCSP(K3).
  CoCspQuery k3 = CoCspQuery::ForTemplate(data::Clique("E", 3));
  auto fo_k3 = IsFoRewritable(k3);
  ASSERT_TRUE(fo_k3.ok());
  EXPECT_FALSE(*fo_k3);
  auto dl_k3 = IsDatalogRewritable(k3);
  ASSERT_TRUE(dl_k3.ok());
  EXPECT_FALSE(*dl_k3);
}

TEST(RewritabilityTest, MarkedTemplateExample45) {
  // Example 4.5: the HereditaryPredisposition template (B, a) — not
  // FO-rewritable (unbounded HasParent-chains) but datalog-rewritable.
  data::Schema s;
  s.AddRelation("HereditaryPredisposition", 1);
  s.AddRelation("HasParent", 2);
  auto b = data::ParseInstance(s, R"(
    HasParent(a, b). HasParent(b, b). HasParent(a, a).
    HereditaryPredisposition(b)
  )");
  ASSERT_TRUE(b.ok());
  CoCspQuery q(s, 1);
  q.AddTemplate(data::MarkedInstance{*b, {*b->FindConstant("a")}});
  auto fo = IsFoRewritable(q);
  ASSERT_TRUE(fo.ok());
  EXPECT_FALSE(*fo);
  auto dl = IsDatalogRewritable(q);
  ASSERT_TRUE(dl.ok());
  EXPECT_TRUE(*dl);
}

// --- Property sweeps --------------------------------------------------------

class CspPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CspPropertyTest, AcWeakerThanPairwiseWeakerThanHom) {
  base::Rng rng(GetParam());
  Instance b = data::RandomDigraph("E", 3, 4, rng);
  Instance d = data::RandomDigraph("E", 5, 7, rng);
  bool hom = *data::HomomorphismExists(d, b);
  bool ac = ArcConsistencyRefutes(d, b);
  bool pc = PairwiseConsistencyRefutes(d, b);
  if (hom) {
    EXPECT_FALSE(ac);
    EXPECT_FALSE(pc);
  }
  // AC refutation implies PC refutation (PC is at least as strong).
  if (ac) EXPECT_TRUE(pc);
}

TEST_P(CspPropertyTest, FoDefinableImpliesFiniteDualityBehaviour) {
  // If LLT accepts a random template, the enumerated obstructions (within
  // bound) decide homomorphism on random probes; this cross-checks the
  // duality machinery end to end on accepting cases.
  base::Rng rng(100 + GetParam());
  Instance b = data::RandomDigraph("E", 3, 3, rng);
  if (!IsFoDefinable(b)) GTEST_SKIP() << "template not FO-definable";
  auto obstructions = TreeObstructions(b);
  if (!obstructions.ok()) GTEST_SKIP() << "budget";
  for (int trial = 0; trial < 6; ++trial) {
    Instance d = data::RandomDigraph("E", 4, 5, rng);
    bool hom = *data::HomomorphismExists(d, b);
    bool obstructed = false;
    for (const Instance& t : *obstructions) {
      if (*data::HomomorphismExists(t, d)) obstructed = true;
    }
    if (!hom) {
      // Obstruction sets within a bound may miss big obstructions, but an
      // obstruction firing must always be correct.
      continue;
    }
    EXPECT_FALSE(obstructed) << "sound obstruction fired on a yes-instance";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CspPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace obda::csp

namespace obda::csp {
namespace {

using data::Instance;

TEST(TreeDualityTest, KnownTemplates) {
  // P_k and T_3 have tree duality (their obstructions are trees);
  // K2/K3 do not (odd cycles / non-tree obstructions).
  EXPECT_TRUE(*HasTreeDuality(data::DirectedPath("E", 1)));
  EXPECT_TRUE(*HasTreeDuality(data::DirectedPath("E", 2)));
  EXPECT_TRUE(*HasTreeDuality(data::Loop("E")));
  EXPECT_FALSE(*HasTreeDuality(data::Clique("E", 2)));
  EXPECT_FALSE(*HasTreeDuality(data::Clique("E", 3)));
}

TEST(TreeDualityTest, PowerStructureShape) {
  Instance k2 = data::Clique("E", 2);
  Instance power = PowerStructure(k2);
  EXPECT_EQ(power.UniverseSize(), 3u);  // {0}, {1}, {0,1}
  // The subset {0,1} carries a loop in ℘(K2) — the witness that kills
  // any homomorphism to the loopless K2.
  auto e = power.schema().FindRelation("E");
  data::ConstId both = *power.FindConstant("S3");
  EXPECT_TRUE(power.HasFact(*e, {both, both}));
}

TEST(TreeDualityTest, TreeDualityMatchesArcConsistencyCompleteness) {
  // For tree-dual templates AC must equal hom-existence on samples; for
  // K2 we know AC is incomplete (odd cycles).
  base::Rng rng(71);
  Instance p2 = data::DirectedPath("E", 2);
  ASSERT_TRUE(*HasTreeDuality(p2));
  for (int trial = 0; trial < 12; ++trial) {
    Instance d = data::RandomDigraph("E", 5, 6, rng);
    EXPECT_EQ(!*data::HomomorphismExists(d, p2),
              ArcConsistencyRefutes(d, p2))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace obda::csp
