// Randomized differential test of the MAC homomorphism solver against a
// brute-force reference enumerator. Instances are kept small enough that
// exhaustive enumeration of all |B|^|A| mappings is cheap, then the
// solver's existence verdict, solution count, witness mappings, pinned
// search and marked search are all checked pair by pair, for both the
// Instance and the CompiledTarget entry points.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "data/generator.h"
#include "data/homomorphism.h"
#include "data/instance.h"
#include "data/schema.h"

namespace obda::data {
namespace {

struct BruteResult {
  bool exists = false;
  std::uint64_t count = 0;
};

/// Enumerates every mapping universe(A) -> universe(B) compatible with
/// `pinned` and counts the homomorphisms among them.
BruteResult BruteForce(
    const Instance& a, const Instance& b,
    const std::vector<std::pair<ConstId, ConstId>>& pinned = {}) {
  BruteResult out;
  const std::size_t n = a.UniverseSize();
  const std::size_t m = b.UniverseSize();
  std::vector<ConstId> mapping(n, 0);
  std::vector<bool> is_pinned(n, false);
  for (const auto& [av, bv] : pinned) {
    // Contradictory double-pins admit no mapping at all.
    if (is_pinned[av] && mapping[av] != bv) return out;
    mapping[av] = bv;
    is_pinned[av] = true;
  }
  if (n == 0) {
    out.exists = IsHomomorphism(a, b, mapping);
    out.count = out.exists ? 1 : 0;
    return out;
  }
  if (m == 0) return out;
  for (;;) {
    if (IsHomomorphism(a, b, mapping)) {
      out.exists = true;
      ++out.count;
    }
    std::size_t pos = 0;
    while (pos < n) {
      if (is_pinned[pos]) {
        ++pos;
        continue;
      }
      if (++mapping[pos] < m) break;
      mapping[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return out;
}

/// A random schema with 1-3 relations of arity 1-3.
Schema RandomSchema(base::Rng& rng) {
  Schema s;
  const int num_rels = rng.IntIn(1, 3);
  for (int r = 0; r < num_rels; ++r) {
    s.AddRelation("R" + std::to_string(r), rng.IntIn(1, 3));
  }
  return s;
}

Instance RandomSmallInstance(const Schema& s, int max_constants,
                             int max_facts, base::Rng& rng) {
  RandomInstanceOptions opts;
  opts.num_constants = static_cast<std::size_t>(rng.IntIn(1, max_constants));
  opts.facts_per_relation = static_cast<std::size_t>(rng.IntIn(0, max_facts));
  return RandomInstance(s, opts, rng);
}

void CheckWitness(const Instance& a, const Instance& b, const HomResult& r) {
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.mapping.size(), a.UniverseSize());
  EXPECT_TRUE(IsHomomorphism(a, b, r.mapping));
}

TEST(HomReferenceTest, RandomPairsExistenceAndCount) {
  base::Rng rng(20260807);
  int found = 0;
  for (int trial = 0; trial < 250; ++trial) {
    Schema s = RandomSchema(rng);
    Instance a = RandomSmallInstance(s, 5, 8, rng);
    Instance b = RandomSmallInstance(s, 5, 10, rng);
    const BruteResult ref = BruteForce(a, b);

    HomResult r = FindHomomorphism(a, b);
    ASSERT_FALSE(r.budget_exhausted);
    EXPECT_EQ(r.found, ref.exists) << "trial " << trial;
    if (r.found) {
      CheckWitness(a, b, r);
      ++found;
    }

    // The compiled-target overload must agree bit for bit.
    CompiledTarget target(b);
    HomResult rc = FindHomomorphism(a, target);
    EXPECT_EQ(rc.found, ref.exists) << "trial " << trial;
    if (rc.found) CheckWitness(a, b, rc);

    auto exists = HomomorphismExists(a, target);
    ASSERT_TRUE(exists.ok());
    EXPECT_EQ(*exists, ref.exists) << "trial " << trial;

    HomResult count_result;
    auto count = CountHomomorphisms(a, b, 10'000, &count_result);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, ref.count) << "trial " << trial;
    if (ref.exists) CheckWitness(a, b, count_result);
  }
  // The generator parameters should produce a healthy mix of positive and
  // negative pairs; guard against a degenerate distribution.
  EXPECT_GT(found, 25);
  EXPECT_LT(found, 225);
}

TEST(HomReferenceTest, RandomPairsPinned) {
  base::Rng rng(4242);
  for (int trial = 0; trial < 150; ++trial) {
    Schema s = RandomSchema(rng);
    Instance a = RandomSmallInstance(s, 5, 6, rng);
    Instance b = RandomSmallInstance(s, 5, 10, rng);
    std::vector<std::pair<ConstId, ConstId>> pinned;
    const int num_pins = rng.IntIn(1, 2);
    for (int p = 0; p < num_pins; ++p) {
      pinned.emplace_back(
          static_cast<ConstId>(rng.Below(a.UniverseSize())),
          static_cast<ConstId>(rng.Below(b.UniverseSize())));
    }
    const BruteResult ref = BruteForce(a, b, pinned);

    HomResult r = FindHomomorphism(a, b, pinned);
    ASSERT_FALSE(r.budget_exhausted);
    EXPECT_EQ(r.found, ref.exists) << "trial " << trial;
    if (r.found) {
      CheckWitness(a, b, r);
      // Reaching here means the pins were consistent (contradictory pins
      // admit no mapping), so the witness must honour every one of them.
      for (const auto& [av, bv] : pinned) {
        EXPECT_EQ(r.mapping[av], bv) << "trial " << trial;
      }
    }

    CompiledTarget target(b);
    HomResult rc = FindHomomorphism(a, target, pinned);
    EXPECT_EQ(rc.found, ref.exists) << "trial " << trial;
  }
}

TEST(HomReferenceTest, RandomPairsMarked) {
  base::Rng rng(777);
  for (int trial = 0; trial < 150; ++trial) {
    Schema s = RandomSchema(rng);
    MarkedInstance a{RandomSmallInstance(s, 5, 6, rng), {}};
    MarkedInstance b{RandomSmallInstance(s, 5, 10, rng), {}};
    const int num_marks = rng.IntIn(1, 2);
    for (int k = 0; k < num_marks; ++k) {
      a.marks.push_back(
          static_cast<ConstId>(rng.Below(a.instance.UniverseSize())));
      b.marks.push_back(
          static_cast<ConstId>(rng.Below(b.instance.UniverseSize())));
    }
    std::vector<std::pair<ConstId, ConstId>> pinned;
    for (int k = 0; k < num_marks; ++k) {
      pinned.emplace_back(a.marks[k], b.marks[k]);
    }
    const BruteResult ref = BruteForce(a.instance, b.instance, pinned);

    HomResult r;
    EXPECT_EQ(MarkedHomomorphismExists(a, b, HomOptions(), &r), ref.exists)
        << "trial " << trial;
    if (ref.exists) CheckWitness(a.instance, b.instance, r);

    CompiledTarget target(b.instance);
    EXPECT_EQ(MarkedHomomorphismExists(a, target, b.marks), ref.exists)
        << "trial " << trial;
  }
}

TEST(HomReferenceTest, CompiledTargetReuseAcrossSources) {
  // One target, many sources: the reuse pattern the compiled form exists
  // for. Verdicts must match fresh single-shot searches.
  base::Rng rng(99);
  Schema s;
  s.AddRelation("E", 2);
  Instance b = RandomDigraph("E", 6, 14, rng);
  CompiledTarget target(b);
  for (int trial = 0; trial < 60; ++trial) {
    Instance a = RandomDigraph("E", 4, static_cast<std::size_t>(
                                            rng.IntIn(0, 8)), rng);
    const BruteResult ref = BruteForce(a, b);
    HomResult r = FindHomomorphism(a, target);
    EXPECT_EQ(r.found, ref.exists) << "trial " << trial;
    if (r.found) CheckWitness(a, b, r);
  }
}

TEST(HomReferenceTest, CountRespectsLimit) {
  // K2 -> K4 has 4*3 = 12 homomorphisms; a limit of 5 stops early.
  Instance a = Clique("E", 2);
  Instance b = Clique("E", 4);
  auto full = CountHomomorphisms(a, b, 100);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, 12u);
  auto capped = CountHomomorphisms(a, b, 5);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(*capped, 5u);
}

TEST(HomReferenceTest, BudgetExhaustionReturnsError) {
  // A tiny budget on a nontrivial search must surface as
  // kResourceExhausted, not abort.
  Instance a = Clique("E", 4);
  Instance b = Clique("E", 6);
  HomOptions options;
  options.node_budget = 1;
  auto exists = HomomorphismExists(a, b, options);
  EXPECT_FALSE(exists.ok());
  EXPECT_EQ(exists.status().code(), base::StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace obda::data
