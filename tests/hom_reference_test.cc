// Randomized differential test of the MAC homomorphism solver against a
// brute-force reference enumerator. Instances are kept small enough that
// exhaustive enumeration of all |B|^|A| mappings is cheap, then the
// solver's existence verdict, solution count, witness mappings, pinned
// search and marked search are all checked pair by pair, for both the
// Instance and the CompiledTarget entry points.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/simd.h"
#include "data/generator.h"
#include "data/homomorphism.h"
#include "data/instance.h"
#include "data/schema.h"

namespace obda::data {
namespace {

struct BruteResult {
  bool exists = false;
  std::uint64_t count = 0;
};

/// Enumerates every mapping universe(A) -> universe(B) compatible with
/// `pinned` and counts the homomorphisms among them.
BruteResult BruteForce(
    const Instance& a, const Instance& b,
    const std::vector<std::pair<ConstId, ConstId>>& pinned = {}) {
  BruteResult out;
  const std::size_t n = a.UniverseSize();
  const std::size_t m = b.UniverseSize();
  std::vector<ConstId> mapping(n, 0);
  std::vector<bool> is_pinned(n, false);
  for (const auto& [av, bv] : pinned) {
    // Contradictory double-pins admit no mapping at all.
    if (is_pinned[av] && mapping[av] != bv) return out;
    mapping[av] = bv;
    is_pinned[av] = true;
  }
  if (n == 0) {
    out.exists = IsHomomorphism(a, b, mapping);
    out.count = out.exists ? 1 : 0;
    return out;
  }
  if (m == 0) return out;
  for (;;) {
    if (IsHomomorphism(a, b, mapping)) {
      out.exists = true;
      ++out.count;
    }
    std::size_t pos = 0;
    while (pos < n) {
      if (is_pinned[pos]) {
        ++pos;
        continue;
      }
      if (++mapping[pos] < m) break;
      mapping[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return out;
}

/// A random schema with 1-3 relations of arity 1-3.
Schema RandomSchema(base::Rng& rng) {
  Schema s;
  const int num_rels = rng.IntIn(1, 3);
  for (int r = 0; r < num_rels; ++r) {
    s.AddRelation("R" + std::to_string(r), rng.IntIn(1, 3));
  }
  return s;
}

Instance RandomSmallInstance(const Schema& s, int max_constants,
                             int max_facts, base::Rng& rng) {
  RandomInstanceOptions opts;
  opts.num_constants = static_cast<std::size_t>(rng.IntIn(1, max_constants));
  opts.facts_per_relation = static_cast<std::size_t>(rng.IntIn(0, max_facts));
  return RandomInstance(s, opts, rng);
}

void CheckWitness(const Instance& a, const Instance& b, const HomResult& r) {
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.mapping.size(), a.UniverseSize());
  EXPECT_TRUE(IsHomomorphism(a, b, r.mapping));
}

TEST(HomReferenceTest, RandomPairsExistenceAndCount) {
  base::Rng rng(20260807);
  int found = 0;
  for (int trial = 0; trial < 250; ++trial) {
    Schema s = RandomSchema(rng);
    Instance a = RandomSmallInstance(s, 5, 8, rng);
    Instance b = RandomSmallInstance(s, 5, 10, rng);
    const BruteResult ref = BruteForce(a, b);

    HomResult r = FindHomomorphism(a, b);
    ASSERT_FALSE(r.budget_exhausted);
    EXPECT_EQ(r.found, ref.exists) << "trial " << trial;
    if (r.found) {
      CheckWitness(a, b, r);
      ++found;
    }

    // The compiled-target overload must agree bit for bit.
    CompiledTarget target(b);
    HomResult rc = FindHomomorphism(a, target);
    EXPECT_EQ(rc.found, ref.exists) << "trial " << trial;
    if (rc.found) CheckWitness(a, b, rc);

    auto exists = HomomorphismExists(a, target);
    ASSERT_TRUE(exists.ok());
    EXPECT_EQ(*exists, ref.exists) << "trial " << trial;

    HomResult count_result;
    auto count = CountHomomorphisms(a, b, 10'000, &count_result);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, ref.count) << "trial " << trial;
    if (ref.exists) CheckWitness(a, b, count_result);
  }
  // The generator parameters should produce a healthy mix of positive and
  // negative pairs; guard against a degenerate distribution.
  EXPECT_GT(found, 25);
  EXPECT_LT(found, 225);
}

TEST(HomReferenceTest, RandomPairsPinned) {
  base::Rng rng(4242);
  for (int trial = 0; trial < 150; ++trial) {
    Schema s = RandomSchema(rng);
    Instance a = RandomSmallInstance(s, 5, 6, rng);
    Instance b = RandomSmallInstance(s, 5, 10, rng);
    std::vector<std::pair<ConstId, ConstId>> pinned;
    const int num_pins = rng.IntIn(1, 2);
    for (int p = 0; p < num_pins; ++p) {
      pinned.emplace_back(
          static_cast<ConstId>(rng.Below(a.UniverseSize())),
          static_cast<ConstId>(rng.Below(b.UniverseSize())));
    }
    const BruteResult ref = BruteForce(a, b, pinned);

    HomResult r = FindHomomorphism(a, b, pinned);
    ASSERT_FALSE(r.budget_exhausted);
    EXPECT_EQ(r.found, ref.exists) << "trial " << trial;
    if (r.found) {
      CheckWitness(a, b, r);
      // Reaching here means the pins were consistent (contradictory pins
      // admit no mapping), so the witness must honour every one of them.
      for (const auto& [av, bv] : pinned) {
        EXPECT_EQ(r.mapping[av], bv) << "trial " << trial;
      }
    }

    CompiledTarget target(b);
    HomResult rc = FindHomomorphism(a, target, pinned);
    EXPECT_EQ(rc.found, ref.exists) << "trial " << trial;
  }
}

TEST(HomReferenceTest, RandomPairsMarked) {
  base::Rng rng(777);
  for (int trial = 0; trial < 150; ++trial) {
    Schema s = RandomSchema(rng);
    MarkedInstance a{RandomSmallInstance(s, 5, 6, rng), {}};
    MarkedInstance b{RandomSmallInstance(s, 5, 10, rng), {}};
    const int num_marks = rng.IntIn(1, 2);
    for (int k = 0; k < num_marks; ++k) {
      a.marks.push_back(
          static_cast<ConstId>(rng.Below(a.instance.UniverseSize())));
      b.marks.push_back(
          static_cast<ConstId>(rng.Below(b.instance.UniverseSize())));
    }
    std::vector<std::pair<ConstId, ConstId>> pinned;
    for (int k = 0; k < num_marks; ++k) {
      pinned.emplace_back(a.marks[k], b.marks[k]);
    }
    const BruteResult ref = BruteForce(a.instance, b.instance, pinned);

    HomResult r;
    EXPECT_EQ(MarkedHomomorphismExists(a, b, HomOptions(), &r), ref.exists)
        << "trial " << trial;
    if (ref.exists) CheckWitness(a.instance, b.instance, r);

    CompiledTarget target(b.instance);
    EXPECT_EQ(MarkedHomomorphismExists(a, target, b.marks), ref.exists)
        << "trial " << trial;
  }
}

TEST(HomReferenceTest, CompiledTargetReuseAcrossSources) {
  // One target, many sources: the reuse pattern the compiled form exists
  // for. Verdicts must match fresh single-shot searches.
  base::Rng rng(99);
  Schema s;
  s.AddRelation("E", 2);
  Instance b = RandomDigraph("E", 6, 14, rng);
  CompiledTarget target(b);
  for (int trial = 0; trial < 60; ++trial) {
    Instance a = RandomDigraph("E", 4, static_cast<std::size_t>(
                                            rng.IntIn(0, 8)), rng);
    const BruteResult ref = BruteForce(a, b);
    HomResult r = FindHomomorphism(a, target);
    EXPECT_EQ(r.found, ref.exists) << "trial " << trial;
    if (r.found) CheckWitness(a, b, r);
  }
}

TEST(HomReferenceTest, CountRespectsLimit) {
  // K2 -> K4 has 4*3 = 12 homomorphisms; a limit of 5 stops early.
  Instance a = Clique("E", 2);
  Instance b = Clique("E", 4);
  auto full = CountHomomorphisms(a, b, 100);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, 12u);
  auto capped = CountHomomorphisms(a, b, 5);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(*capped, 5u);
}

/// One binary-relation graph on `n` named constants; edges added by the
/// caller. Universes > 256 push the bitset domains past one SIMD block,
/// exercising the multi-word sweep paths.
Instance WideGraph(const Schema& s, std::size_t n) {
  Instance g(s);
  for (std::size_t i = 0; i < n; ++i) {
    g.AddConstant("c" + std::to_string(i));
  }
  return g;
}

TEST(HomReferenceTest, WideDomainBothDispatchPathsAgree) {
  namespace simd = base::simd;
  Schema s;
  s.AddRelation("E", 2);
  // 300 constants: domains span 5 live words (padded to 8). An odd cycle
  // with one embedded triangle admits K3 -> B; the even cycle does not.
  const std::size_t kN = 300;
  Instance triangle = Clique("E", 3);
  Instance yes = WideGraph(s, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ConstId u = static_cast<ConstId>(i);
    ConstId v = static_cast<ConstId>((i + 1) % kN);
    yes.AddFact(0, {u, v});
    yes.AddFact(0, {v, u});
  }
  yes.AddFact(0, {0, 2});
  yes.AddFact(0, {2, 0});
  Instance no = WideGraph(s, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ConstId u = static_cast<ConstId>(i);
    ConstId v = static_cast<ConstId>((i + 1) % kN);
    no.AddFact(0, {u, v});
    no.AddFact(0, {v, u});
  }

  HomResult scalar_yes, scalar_no, active_yes, active_no;
  simd::ForceDispatch(simd::Dispatch::kScalar);
  scalar_yes = FindHomomorphism(triangle, yes);
  scalar_no = FindHomomorphism(triangle, no);
  simd::ForceDispatch(simd::Dispatch::kAvx2);
  active_yes = FindHomomorphism(triangle, yes);
  active_no = FindHomomorphism(triangle, no);
  simd::ForceDispatch(simd::Dispatch::kAuto);

  ASSERT_TRUE(scalar_yes.found);
  CheckWitness(triangle, yes, scalar_yes);
  EXPECT_FALSE(scalar_no.found);
  // Bit-identical searches: same verdicts, witnesses, node counts, and
  // kernel traffic on both dispatch paths.
  EXPECT_EQ(active_yes.found, scalar_yes.found);
  EXPECT_EQ(active_yes.mapping, scalar_yes.mapping);
  EXPECT_EQ(active_yes.nodes, scalar_yes.nodes);
  EXPECT_EQ(active_yes.sweep_bytes, scalar_yes.sweep_bytes);
  EXPECT_EQ(active_no.found, scalar_no.found);
  EXPECT_EQ(active_no.nodes, scalar_no.nodes);
  EXPECT_EQ(active_no.sweep_bytes, scalar_no.sweep_bytes);
}

TEST(HomReferenceTest, DispatchParityFuzz) {
  namespace simd = base::simd;
  // >= 200 seeds, each run once per dispatch path: the whole HomResult
  // must match field for field (the scalar table is the oracle). Covers
  // existence, counting, pinning, and compiled targets.
  for (std::uint64_t seed = 0; seed < 220; ++seed) {
    base::Rng gen_rng(1000 + seed);
    Schema s = RandomSchema(gen_rng);
    Instance a = RandomSmallInstance(s, 5, 8, gen_rng);
    Instance b = RandomSmallInstance(s, 6, 10, gen_rng);
    std::vector<std::pair<ConstId, ConstId>> pinned;
    if (a.UniverseSize() > 0 && b.UniverseSize() > 0 &&
        gen_rng.Chance(1, 2)) {
      pinned.emplace_back(
          static_cast<ConstId>(gen_rng.Below(a.UniverseSize())),
          static_cast<ConstId>(gen_rng.Below(b.UniverseSize())));
    }
    HomOptions options;
    options.max_solutions = 1 + gen_rng.Below(4);

    simd::ForceDispatch(simd::Dispatch::kScalar);
    CompiledTarget scalar_target(b);
    const HomResult want = FindHomomorphism(a, scalar_target, pinned,
                                            options);
    simd::ForceDispatch(simd::Dispatch::kAvx2);
    CompiledTarget active_target(b);
    const HomResult got = FindHomomorphism(a, active_target, pinned,
                                           options);
    simd::ForceDispatch(simd::Dispatch::kAuto);

    EXPECT_EQ(got.found, want.found) << "seed " << seed;
    EXPECT_EQ(got.mapping, want.mapping) << "seed " << seed;
    EXPECT_EQ(got.solution_count, want.solution_count) << "seed " << seed;
    EXPECT_EQ(got.nodes, want.nodes) << "seed " << seed;
    EXPECT_EQ(got.budget_exhausted, want.budget_exhausted)
        << "seed " << seed;
    EXPECT_EQ(got.sweep_bytes, want.sweep_bytes) << "seed " << seed;
  }
}

TEST(HomReferenceTest, SaturatedUnionSweepsMatchBruteForce) {
  namespace simd = base::simd;
  // Dense targets drive the union-of-adjacency-rows revise past the
  // saturation cutoff (32+ rows whose union covers the domain, so the
  // sweep breaks off early). At edge probability 1/2 and degree ~32 the
  // cutoff fires on essentially every post-branch revise; the
  // brute-force enumerator is the oracle that breaking off never changes
  // a verdict or a count, on either dispatch path.
  Schema s;
  s.AddRelation("E", 2);
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    base::Rng rng(7000 + seed);
    const std::size_t m = 64 + rng.Below(9);
    Instance b(s);
    for (std::size_t i = 0; i < m; ++i) {
      b.AddConstant("b" + std::to_string(i));
    }
    for (std::size_t u = 0; u < m; ++u) {
      for (std::size_t v = 0; v < m; ++v) {
        if (u != v && rng.Chance(1, 2)) {
          b.AddFact(0, {static_cast<ConstId>(u), static_cast<ConstId>(v)});
        }
      }
    }
    Instance a(s);
    for (int i = 0; i < 3; ++i) {
      a.AddConstant("a" + std::to_string(i));
    }
    a.AddFact(0, {0, 1});
    a.AddFact(0, {1, 2});
    if (rng.Chance(1, 2)) a.AddFact(0, {2, 0});

    const BruteResult want = BruteForce(a, b);
    HomOptions options;
    options.max_solutions = std::uint64_t{1} << 40;

    simd::ForceDispatch(simd::Dispatch::kScalar);
    const HomResult scalar_r = FindHomomorphism(a, b, {}, options);
    simd::ForceDispatch(simd::Dispatch::kAvx2);
    const HomResult active_r = FindHomomorphism(a, b, {}, options);
    simd::ForceDispatch(simd::Dispatch::kAuto);

    EXPECT_EQ(scalar_r.found, want.exists) << "seed " << seed;
    EXPECT_EQ(scalar_r.solution_count, want.count) << "seed " << seed;
    if (scalar_r.found) CheckWitness(a, b, scalar_r);
    EXPECT_EQ(active_r.found, scalar_r.found) << "seed " << seed;
    EXPECT_EQ(active_r.mapping, scalar_r.mapping) << "seed " << seed;
    EXPECT_EQ(active_r.solution_count, scalar_r.solution_count)
        << "seed " << seed;
    EXPECT_EQ(active_r.nodes, scalar_r.nodes) << "seed " << seed;
    EXPECT_EQ(active_r.sweep_bytes, scalar_r.sweep_bytes) << "seed " << seed;
  }
}

TEST(HomReferenceTest, BudgetExhaustionReturnsError) {
  // A tiny budget on a nontrivial search must surface as
  // kResourceExhausted, not abort.
  Instance a = Clique("E", 4);
  Instance b = Clique("E", 6);
  HomOptions options;
  options.node_budget = 1;
  auto exists = HomomorphismExists(a, b, options);
  EXPECT_FALSE(exists.ok());
  EXPECT_EQ(exists.status().code(), base::StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace obda::data
