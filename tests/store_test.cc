// Artifact-store tests (DESIGN.md §12): the stable FNV-1a hashes the
// on-disk index is addressed by, the flat serializers' round-trip and
// never-abort-on-garbage guarantees, the Remapper (de)serialization the
// SAT warm starts depend on, the write → mmap-load → FromArtifacts
// battery (≥50 seeded OMQ/instance pairs bit-identical to freshly
// compiled plans at threads {1,2,8}), grounding warm starts engaging the
// snapshot-time preprocessor, rejection of corrupt/truncated/skewed
// files, the two-tier PreparedCache, and the STORE INFO protocol verb.
// (This binary also runs under AddressSanitizer in CI — the mmap loader
// and the bounds-checked FlatReader are the point of that job.)

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/hash.h"
#include "base/rng.h"
#include "core/csp_translation.h"
#include "core/omq.h"
#include "data/generator.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "ddlog/program.h"
#include "dl/parser.h"
#include "obs/metrics.h"
#include "sat/preprocess.h"
#include "serve/planner.h"
#include "serve/prepared.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "store/flat.h"
#include "store/format.h"
#include "store/store.h"
#include "store/writer.h"

namespace obda::store {
namespace {

using data::Fact;
using data::Schema;
using serve::CacheKey;
using serve::PlanTier;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// The same two OMQ families planner_test pins (tier choices proven
// there); here they are the store's payloads.
base::Result<core::OntologyMediatedQuery> DisjunctionOmq() {
  auto ontology =
      dl::ParseOntology("LymeDisease | Listeriosis [= BacterialInfection");
  OBDA_CHECK(ontology.ok());
  Schema s;
  s.AddRelation("LymeDisease", 1);
  s.AddRelation("Listeriosis", 1);
  return core::OntologyMediatedQuery::WithAtomicQuery(s, *ontology,
                                                      "BacterialInfection");
}

base::Result<core::OntologyMediatedQuery> ReachabilityOmq() {
  auto ontology = dl::ParseOntology("A [= all R.A");
  OBDA_CHECK(ontology.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  return core::OntologyMediatedQuery::WithAtomicQuery(s, *ontology, "A");
}

/// A synthetic but well-formed store key: the loader only compares key
/// fields, so the battery does not need to route through MakeCacheKey
/// (which has its own tests below and an end-to-end CI replay).
CacheKey KeyFor(const std::string& family, PlanTier tier) {
  CacheKey key;
  key.ontology_hash = serve::HashText(family);
  key.query_hash = serve::HashText(serve::PlanTierName(tier));
  key.plan_mode = static_cast<std::uint32_t>(tier);
  key.planner_version = serve::kPlannerVersion;
  return key;
}

// --- Stable hashing ---------------------------------------------------------

TEST(StoreHashTest, FnvMatchesSpecVectors) {
  // Published FNV-1a 64 test vectors: persisting these hashes in files is
  // only sound because the function is pinned by spec, not by build.
  EXPECT_EQ(base::Fnv1a(""), base::kFnvOffsetBasis);
  EXPECT_EQ(base::Fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(base::Fnv1a("hello"), 0xa430d84680aabd0bULL);
  // Fnv1aU64 is the little-endian byte fold, bit-for-bit.
  EXPECT_EQ(base::Fnv1aU64(base::kFnvOffsetBasis, 0x61),
            base::Fnv1a(std::string_view("a\0\0\0\0\0\0\0", 8)));
}

TEST(StoreHashTest, CacheKeyHashIsTheDocumentedFnvChain) {
  CacheKey key;
  key.ontology_hash = 0x1122334455667788ULL;
  key.query_hash = 0x99aabbccddeeff00ULL;
  key.plan_mode = 3;
  key.planner_version = 7;
  key.size_class = 11;
  std::uint64_t expected = base::kFnvOffsetBasis;
  expected = base::Fnv1aU64(expected, key.ontology_hash);
  expected = base::Fnv1aU64(expected, key.query_hash);
  expected = base::Fnv1aU64(expected, key.plan_mode);
  expected = base::Fnv1aU64(expected, key.planner_version);
  expected = base::Fnv1aU64(expected, key.size_class);
  EXPECT_EQ(serve::CacheKeyHash{}(key),
            static_cast<std::size_t>(expected));
  EXPECT_EQ(serve::HashText("hello"), base::Fnv1a("hello"));
}

TEST(StoreHashTest, MakeCacheKeySeparatesWhatThePlanDependsOn) {
  Schema schema;
  ASSERT_TRUE(serve::AddRelationSpec("LymeDisease/1", schema).ok());
  ASSERT_TRUE(serve::AddRelationSpec("Listeriosis/1", schema).ok());
  const std::string onto = "LymeDisease | Listeriosis [= BacterialInfection";

  const CacheKey a = serve::MakeCacheKey(schema, onto, "AQ",
                                         "BacterialInfection",
                                         PlanTier::kAuto, 0);
  EXPECT_EQ(a, serve::MakeCacheKey(schema, onto, "AQ", "BacterialInfection",
                                   PlanTier::kAuto, 0));
  EXPECT_EQ(a.planner_version, serve::kPlannerVersion);

  // A forced tier is a distinct entry; a different payload or kind too.
  EXPECT_NE(a, serve::MakeCacheKey(schema, onto, "AQ", "BacterialInfection",
                                   PlanTier::kSat, 0));
  EXPECT_NE(a.query_hash,
            serve::MakeCacheKey(schema, onto, "BAQ", "BacterialInfection",
                                PlanTier::kAuto, 0)
                .query_hash);
  EXPECT_NE(a.query_hash,
            serve::MakeCacheKey(schema, onto, "AQ", "LymeDisease",
                                PlanTier::kAuto, 0)
                .query_hash);

  // Auto plans re-key per log2 size class; forced tiers are
  // size-independent (PlanProtocolTest pins the serving behavior).
  EXPECT_NE(a, serve::MakeCacheKey(schema, onto, "AQ", "BacterialInfection",
                                   PlanTier::kAuto, 1000));
  EXPECT_EQ(serve::MakeCacheKey(schema, onto, "AQ", "BacterialInfection",
                                PlanTier::kSat, 0),
            serve::MakeCacheKey(schema, onto, "AQ", "BacterialInfection",
                                PlanTier::kSat, 1000));
}

// --- Flat serializers -------------------------------------------------------

TEST(FlatIoTest, ScalarsRoundTripAndReadsPastEndError) {
  FlatWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFULL);
  w.I32(-42);
  w.F64(-2.5);
  w.Str("hello world");
  const std::string bytes = w.Take();

  FlatReader r(bytes);
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int32_t i32 = 0;
  double f64 = 0;
  std::string str;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I32(&i32).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Str(&str).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(f64, -2.5);
  EXPECT_EQ(str, "hello world");
  EXPECT_TRUE(r.ExpectEnd().ok());
  EXPECT_FALSE(r.U8(&u8).ok());  // past the end: error, not UB

  // A string whose length prefix overruns the buffer is an error too.
  FlatWriter lying;
  lying.U32(1000);
  lying.Bytes("short");
  FlatReader lr(lying.data());
  EXPECT_FALSE(lr.Str(&str).ok());
}

TEST(FlatIoTest, SchemaRoundTripsByteIdentically) {
  Schema schema;
  schema.AddRelation("E", 2);
  schema.AddRelation("Label", 1);
  schema.AddRelation("T", 3);
  FlatWriter w;
  AppendSchema(schema, &w);
  const std::string bytes = w.data();

  FlatReader r(bytes);
  auto back = ReadSchema(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_EQ(back->NumRelations(), schema.NumRelations());
  for (data::RelationId rel = 0;
       rel < static_cast<data::RelationId>(schema.NumRelations()); ++rel) {
    EXPECT_EQ(back->RelationName(rel), schema.RelationName(rel));
    EXPECT_EQ(back->Arity(rel), schema.Arity(rel));
  }
  FlatWriter again;
  AppendSchema(*back, &again);
  EXPECT_EQ(again.data(), bytes);
}

TEST(FlatIoTest, ProgramRoundTripsAndEveryTruncationFails) {
  Schema schema;
  schema.AddRelation("E", 2);
  auto program = ddlog::ParseProgram(
      schema,
      "B(x) | W(x) <- adom(x). goal <- B(x), B(y), E(x,y). "
      "goal <- W(x), W(y), E(x,y).");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  FlatWriter w;
  AppendProgram(*program, &w);
  const std::string bytes = w.data();

  FlatReader r(bytes);
  auto back = ReadProgram(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_TRUE(back->Validate().ok());
  FlatWriter again;
  AppendProgram(*back, &again);
  EXPECT_EQ(again.data(), bytes);

  // A full parse consumes every byte, so EVERY strict prefix must fail
  // with an error Status — never an abort (corrupt sections degrade).
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FlatReader prefix(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(ReadProgram(&prefix).ok()) << "prefix " << len;
  }
}

TEST(FlatIoTest, ExplainRoundTripsEveryField) {
  serve::PlanExplain explain;
  explain.tier = PlanTier::kDatalog;
  explain.chosen_by = serve::PlanChoice::kCost;
  explain.admissible = {PlanTier::kDatalog, PlanTier::kSat};
  explain.fo_rewritable = 0;
  explain.datalog_rewritable = -1;  // tri-state: unknown survives
  explain.templates = 5;
  explain.obstructions = 17;
  explain.datalog_rules = 9;
  explain.program_rules = 4;
  explain.cost_fo = 0.0;
  explain.cost_datalog = 123.5;
  explain.cost_sat = 99000.25;
  explain.facts_estimate = 4096;
  explain.prefilter = true;
  explain.budget_events = {"fo_decide:wall_budget", "datalog:templates"};

  FlatWriter w;
  AppendExplain(explain, &w);
  const std::string bytes = w.data();
  FlatReader r(bytes);
  auto back = ReadExplain(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(back->tier, explain.tier);
  EXPECT_EQ(back->chosen_by, explain.chosen_by);
  EXPECT_EQ(back->admissible, explain.admissible);
  EXPECT_EQ(back->fo_rewritable, explain.fo_rewritable);
  EXPECT_EQ(back->datalog_rewritable, explain.datalog_rewritable);
  EXPECT_EQ(back->templates, explain.templates);
  EXPECT_EQ(back->obstructions, explain.obstructions);
  EXPECT_EQ(back->datalog_rules, explain.datalog_rules);
  EXPECT_EQ(back->program_rules, explain.program_rules);
  EXPECT_EQ(back->cost_fo, explain.cost_fo);
  EXPECT_EQ(back->cost_datalog, explain.cost_datalog);
  EXPECT_EQ(back->cost_sat, explain.cost_sat);
  EXPECT_EQ(back->facts_estimate, explain.facts_estimate);
  EXPECT_EQ(back->prefilter, explain.prefilter);
  EXPECT_EQ(back->budget_events, explain.budget_events);
  // The EXPLAIN verb renders the loaded record identically.
  EXPECT_EQ(serve::ExplainLines(*back), serve::ExplainLines(explain));
  FlatWriter again;
  AppendExplain(*back, &again);
  EXPECT_EQ(again.data(), bytes);
}

TEST(FlatIoTest, InstanceSectionUsesTheBinaryFastPath) {
  auto instance = data::ParseInstanceAuto(
      "E(a,b). E(b,c). Label(a). E(c,a). !const lonely");
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  FlatWriter w;
  AppendInstance(*instance, &w);
  const std::string bytes = w.data();
  FlatReader r(bytes);
  auto back = ReadInstance(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_TRUE(r.ExpectEnd().ok());
  // ConstIds are bit-stable across the binary round trip, so the
  // serializations are byte-identical — and match data/io.h's own binary
  // format modulo framing (the section embeds it).
  FlatWriter again;
  AppendInstance(*back, &again);
  EXPECT_EQ(again.data(), bytes);
  std::string direct;
  data::AppendInstanceBinary(*instance, &direct);
  auto reparsed = data::ParseInstanceBinary(direct);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(back->UniverseSize(), reparsed->UniverseSize());

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FlatReader prefix(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(ReadInstance(&prefix).ok()) << "prefix " << len;
  }
}

// --- Remapper (de)serialization ---------------------------------------------

TEST(RemapperIoTest, TwentySeededCnfsRoundTripLitMapsAndModels) {
  base::Rng rng(0x5EED);
  int round_tripped = 0;
  for (int seed = 0; seed < 20; ++seed) {
    const std::size_t num_vars = 20;
    std::vector<std::vector<sat::Lit>> clauses;
    for (int c = 0; c < 60; ++c) {
      std::vector<sat::Lit> clause;
      const int size = 2 + static_cast<int>(rng.Below(3));
      for (int l = 0; l < size; ++l) {
        const sat::Var v = static_cast<sat::Var>(rng.Below(num_vars));
        clause.push_back(rng.Below(2) == 0 ? sat::Lit::Pos(v)
                                           : sat::Lit::Neg(v));
      }
      clauses.push_back(std::move(clause));
    }
    std::vector<bool> frozen(num_vars, false);
    for (std::size_t v = 0; v < 5; ++v) frozen[v] = true;
    const sat::PreprocessResult result =
        sat::Preprocess(num_vars, clauses, frozen);
    if (result.unsat) continue;  // remapper must not be used then
    ++round_tripped;

    FlatWriter w;
    SatIo::AppendRemapper(result.remapper, &w);
    const std::string bytes = w.data();
    FlatReader r(bytes);
    auto back = SatIo::ReadRemapper(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_TRUE(r.ExpectEnd().ok());

    ASSERT_EQ(back->num_vars(), result.remapper.num_vars());
    for (std::size_t v = 0; v < num_vars; ++v) {
      EXPECT_EQ(back->StateOf(static_cast<sat::Var>(v)),
                result.remapper.StateOf(static_cast<sat::Var>(v)))
          << "seed " << seed << " var " << v;
    }
    // Frozen variables are what probes assume on: their literal mapping
    // must survive the round trip exactly.
    for (std::size_t v = 0; v < 5; ++v) {
      for (sat::Lit l : {sat::Lit::Pos(static_cast<sat::Var>(v)),
                         sat::Lit::Neg(static_cast<sat::Var>(v))}) {
        const sat::Remapper::MappedLit a = result.remapper.MapLit(l);
        const sat::Remapper::MappedLit b = back->MapLit(l);
        EXPECT_EQ(a.kind, b.kind) << "seed " << seed;
        EXPECT_EQ(a.lit.code, b.lit.code) << "seed " << seed;
      }
    }
    // Model completion replays the recorded eliminations: identical
    // kept-variable values must complete identically.
    std::vector<char> model_a(num_vars);
    for (char& bit : model_a) bit = static_cast<char>(rng.Below(2));
    std::vector<char> model_b = model_a;
    result.remapper.CompleteModel(&model_a);
    back->CompleteModel(&model_b);
    EXPECT_EQ(model_a, model_b) << "seed " << seed;
  }
  EXPECT_GE(round_tripped, 10);  // the generator must not be all-UNSAT
}

// --- The round-trip battery -------------------------------------------------

/// Asserts `count` random facts (constants p0..p7) into every session in
/// `sessions` in the same order, so raw ConstId answers compare across
/// them (same helper as planner_test's parity battery).
void AssertRandomFacts(const Schema& schema, std::uint64_t seed, int count,
                       std::vector<serve::Session*> sessions) {
  base::Rng rng(0xFAC75 + seed);
  for (int i = 0; i < count; ++i) {
    const data::RelationId r =
        static_cast<data::RelationId>(rng.Below(schema.NumRelations()));
    std::vector<std::string> args;
    for (int a = 0; a < schema.Arity(r); ++a) {
      args.push_back("p" + std::to_string(rng.Below(8)));
    }
    const Fact fact{schema.RelationName(r), args};
    for (serve::Session* session : sessions) {
      ASSERT_TRUE(session->Assert(fact).ok());
    }
  }
}

struct BatteryFamily {
  std::string name;
  base::Result<core::OntologyMediatedQuery> omq;
  std::vector<PlanTier> tiers;  // every admissible forced tier
  int seeds = 0;
};

TEST(StoreFileTest, FiftyTwoSeededOmqsBitIdenticalAcrossThreads) {
  std::vector<BatteryFamily> families;
  families.push_back(
      {"fo", DisjunctionOmq(), {PlanTier::kFo, PlanTier::kSat}, 20});
  families.push_back(
      {"datalog", ReachabilityOmq(), {PlanTier::kDatalog, PlanTier::kSat},
       20});
  families.push_back({"conp", core::CspToOmq(data::Clique("E", 3)),
                      {PlanTier::kSat, PlanTier::kSatRaw}, 12});

  // Offline half: compile every (family, tier) plan and write ONE store.
  const std::string path = TempPath("battery.store");
  {
    StoreWriter writer;
    for (const BatteryFamily& family : families) {
      ASSERT_TRUE(family.omq.ok()) << family.name;
      for (PlanTier tier : family.tiers) {
        serve::PlannerOptions popts;
        popts.force = tier;
        auto plan = serve::PlanOmq(*family.omq, popts, /*session_facts=*/0);
        ASSERT_TRUE(plan.ok())
            << family.name << ": " << plan.status().ToString();
        ASSERT_TRUE(writer.AddPlan(KeyFor(family.name, tier), *plan).ok());
      }
    }
    ASSERT_EQ(writer.num_records(), 6u);
    ASSERT_TRUE(writer.WriteFile(path).ok());
  }

  auto store = ArtifactStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE((*store)->info().planner_version_match);
  EXPECT_EQ((*store)->info().num_plans, 6u);

  int pairs = 0;
  for (const BatteryFamily& family : families) {
    const core::OntologyMediatedQuery& omq = *family.omq;
    for (int threads : {1, 2, 8}) {
      // One (loaded, fresh) artifact pair per tier; answers must agree
      // bit-for-bit on every instance at every thread count.
      struct TierPair {
        PlanTier tier;
        std::shared_ptr<serve::PreparedQuery> loaded;
        std::shared_ptr<serve::PreparedQuery> fresh;
      };
      std::vector<TierPair> tier_pairs;
      for (PlanTier tier : family.tiers) {
        serve::PrepareOptions opts;
        opts.eval.threads = threads;
        opts.planner.force = tier;
        auto plan = (*store)->LoadPlan(KeyFor(family.name, tier));
        ASSERT_TRUE(plan.ok())
            << family.name << ": " << plan.status().ToString();
        EXPECT_EQ(plan->tier, tier);
        auto loaded =
            serve::PreparedQuery::FromArtifacts(std::move(*plan), opts);
        ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
        EXPECT_EQ((*loaded)->tier(), tier);
        auto fresh = serve::PreparedQuery::FromOmq(omq, opts);
        ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
        tier_pairs.push_back(TierPair{tier, *loaded, *fresh});
      }

      for (int seed = 0; seed < family.seeds; ++seed) {
        if (threads == 1) ++pairs;  // count OMQ/instance pairs once
        for (TierPair& pair : tier_pairs) {
          serve::Session loaded_session(omq.data_schema());
          serve::Session fresh_session(omq.data_schema());
          AssertRandomFacts(omq.data_schema(),
                            static_cast<std::uint64_t>(seed), 12,
                            {&loaded_session, &fresh_session});
          auto got = pair.loaded->Execute(loaded_session,
                                          serve::RequestBudget{});
          auto want =
              pair.fresh->Execute(fresh_session, serve::RequestBudget{});
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_TRUE(want.ok()) << want.status().ToString();
          EXPECT_EQ(got->tuples, want->tuples)
              << family.name << " seed " << seed << " threads " << threads
              << " tier " << serve::PlanTierName(pair.tier);
          EXPECT_EQ(got->inconsistent, want->inconsistent);
        }
      }
    }
  }
  EXPECT_GE(pairs, 50);
}

TEST(StoreFileTest, GroundingWarmStartSeedsThePreprocessor) {
  auto omq = ReachabilityOmq();
  ASSERT_TRUE(omq.ok());
  serve::PlannerOptions popts;
  popts.force = PlanTier::kSat;
  auto plan = serve::PlanOmq(*omq, popts, /*session_facts=*/0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->program.has_value());

  const std::vector<Fact> facts = {Fact{"A", {"ann"}},
                                   Fact{"R", {"ann", "bob"}},
                                   Fact{"R", {"bob", "cat"}},
                                   Fact{"R", {"cat", "dan"}}};
  serve::Session offline(omq->data_schema());
  for (const Fact& fact : facts) ASSERT_TRUE(offline.Assert(fact).ok());
  const serve::Session::Snapshot snapshot = offline.Materialize();

  const serve::PrepareOptions prepare;
  auto grounded = ddlog::GroundedQuery::Build(*plan->program,
                                              *snapshot.instance,
                                              prepare.eval);
  ASSERT_TRUE(grounded.ok()) << grounded.status().ToString();
  auto seed = grounded->ExportPreprocess();
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();

  const CacheKey key = KeyFor("warm", PlanTier::kSat);
  const std::string path = TempPath("warm.store");
  {
    StoreWriter writer;
    ASSERT_TRUE(writer.AddPlan(key, *plan).ok());
    ASSERT_TRUE(writer
                    .AddGrounding(key, snapshot.content_hash,
                                  *snapshot.instance, *seed)
                    .ok());
    ASSERT_TRUE(writer.WriteFile(path).ok());
  }
  auto store = ArtifactStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->info().num_groundings, 1u);

  // The grounding is addressed by (key, fact-set content hash): any other
  // fact set is a sound miss, never a wrong warm start.
  auto grounding = (*store)->LoadGrounding(key, snapshot.content_hash);
  ASSERT_TRUE(grounding.ok()) << grounding.status().ToString();
  ASSERT_NE(grounding->seed, nullptr);
  EXPECT_EQ(grounding->seed->fingerprint, seed->fingerprint);
  EXPECT_EQ((*store)
                ->LoadGrounding(key, snapshot.content_hash ^ 1)
                .status()
                .code(),
            base::StatusCode::kNotFound);

  // Serving half: the loaded seed short-circuits the snapshot-time
  // preprocessing passes (ddlog.preprocess_seeded), answers unchanged.
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().ResetAll();
  obs::Counter& seeded = obs::GetCounter("ddlog.preprocess_seeded");
  auto loaded_plan = (*store)->LoadPlan(key);
  ASSERT_TRUE(loaded_plan.ok());
  serve::PrepareOptions opts;
  opts.planner.force = PlanTier::kSat;
  auto warm = serve::PreparedQuery::FromArtifacts(std::move(*loaded_plan),
                                                  opts, grounding->seed);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  serve::Session serving(omq->data_schema());
  for (const Fact& fact : facts) ASSERT_TRUE(serving.Assert(fact).ok());
  auto got = (*warm)->Execute(serving, serve::RequestBudget{});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(seeded.value(), 1u);

  auto cold = serve::PreparedQuery::FromOmq(*omq, opts);
  ASSERT_TRUE(cold.ok());
  serve::Session cold_session(omq->data_schema());
  for (const Fact& fact : facts) {
    ASSERT_TRUE(cold_session.Assert(fact).ok());
  }
  auto want = (*cold)->Execute(cold_session, serve::RequestBudget{});
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->tuples, want->tuples);
  ASSERT_EQ(got->tuples.size(), 4u);  // ann and everything R-reachable
}

// --- Corruption, truncation, version skew -----------------------------------

/// Writes a one-plan store and returns its bytes.
std::string ValidStoreBytes(const std::string& path) {
  auto omq = DisjunctionOmq();
  OBDA_CHECK(omq.ok());
  serve::PlannerOptions popts;
  popts.force = PlanTier::kFo;
  auto plan = serve::PlanOmq(*omq, popts, 0);
  OBDA_CHECK(plan.ok());
  StoreWriter writer;
  OBDA_CHECK(writer.AddPlan(KeyFor("corrupt", PlanTier::kFo), *plan).ok());
  OBDA_CHECK(writer.WriteFile(path).ok());
  return ReadAll(path);
}

TEST(StoreFileTest, RejectsCorruptionTruncationAndFormatSkew) {
  const std::string path = TempPath("corrupt.store");
  const std::string valid = ValidStoreBytes(path);
  FileHeader header;
  std::memcpy(&header, valid.data(), sizeof(header));
  const CacheKey key = KeyFor("corrupt", PlanTier::kFo);
  ASSERT_TRUE(ArtifactStore::Open(path).ok());  // baseline sanity

  const std::string mutated = TempPath("mutated.store");
  auto open_fails = [&](const std::string& bytes, const char* why) {
    WriteAll(mutated, bytes);
    auto store = ArtifactStore::Open(mutated);
    EXPECT_FALSE(store.ok()) << why;
    if (!store.ok()) {
      EXPECT_EQ(store.status().code(),
                base::StatusCode::kInvalidArgument)
          << why << ": " << store.status().ToString();
    }
  };

  // Truncation: shorter than the header, mid-index, and one byte short.
  open_fails(valid.substr(0, sizeof(FileHeader) - 1), "header cut");
  open_fails(valid.substr(0, sizeof(FileHeader)), "index cut");
  open_fails(valid.substr(0, valid.size() - 1), "one byte short");

  // Single-byte flips in every checksummed span are caught at Open: the
  // header (including its magic) and the record index.
  for (std::size_t pos = 0; pos < sizeof(FileHeader); pos += 7) {
    std::string bytes = valid;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5A);
    open_fails(bytes, "header flip");
  }
  for (std::uint64_t pos = header.index_offset;
       pos < header.index_offset + header.index_bytes; pos += 13) {
    std::string bytes = valid;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5A);
    open_fails(bytes, "index flip");
  }

  // Payload flips: Open stays O(index) and succeeds, but the per-record
  // checksum fails the load — a corrupt artifact is never deserialized.
  const RecordEntry* entry = reinterpret_cast<const RecordEntry*>(
      valid.data() + header.index_offset);
  for (std::uint64_t pos = entry->offset;
       pos < entry->offset + entry->bytes; pos += 31) {
    std::string bytes = valid;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5A);
    WriteAll(mutated, bytes);
    auto store = ArtifactStore::Open(mutated);
    ASSERT_TRUE(store.ok()) << "payload flips must not fail Open";
    EXPECT_EQ((*store)->LoadPlan(key).status().code(),
              base::StatusCode::kInvalidArgument)
        << "payload flip at " << pos;
  }

  // Format-version skew with a VALID checksum is still rejected outright.
  {
    std::string bytes = valid;
    FileHeader skewed = header;
    skewed.format_version = kStoreFormatVersion + 1;
    skewed.header_checksum = 0;
    FileHeader for_hash = skewed;
    skewed.header_checksum = base::Fnv1a(std::string_view(
        reinterpret_cast<const char*>(&for_hash), sizeof(for_hash)));
    std::memcpy(bytes.data(), &skewed, sizeof(skewed));
    open_fails(bytes, "format skew");
  }
}

TEST(StoreFileTest, PlannerVersionSkewIsStaleNotMisused) {
  auto omq = DisjunctionOmq();
  ASSERT_TRUE(omq.ok());
  serve::PlannerOptions popts;
  popts.force = PlanTier::kFo;
  auto plan = serve::PlanOmq(*omq, popts, 0);
  ASSERT_TRUE(plan.ok());

  CacheKey key = KeyFor("stale", PlanTier::kFo);
  key.planner_version = serve::kPlannerVersion + 1;
  const std::string path = TempPath("stale.store");
  {
    // The generator stamps ITS planner version; a mismatched key is a
    // generator bug and refused immediately.
    StoreWriter writer(serve::kPlannerVersion + 1);
    ASSERT_TRUE(writer.AddPlan(key, *plan).ok());
    ASSERT_FALSE(writer.AddPlan(KeyFor("stale", PlanTier::kFo), *plan).ok());
    ASSERT_TRUE(writer.WriteFile(path).ok());
  }

  // The file opens fine (format is compatible) but every lookup is a
  // stale miss: plans compiled by another planner are rejected, not
  // misused.
  auto store = ArtifactStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_FALSE((*store)->info().planner_version_match);
  obs::EnableMetrics(true);
  obs::Counter& stale = obs::GetCounter("store.stale");
  const std::uint64_t stale_before = stale.value();
  EXPECT_EQ((*store)->LoadPlan(key).status().code(),
            base::StatusCode::kNotFound);
  EXPECT_EQ((*store)->LoadGrounding(key, 0).status().code(),
            base::StatusCode::kNotFound);
  EXPECT_EQ(stale.value(), stale_before + 2);
}

// --- The two-tier cache and the serving protocol ----------------------------

TEST(PreparedCacheTest, SecondTierLoaderPromotesIntoMemory) {
  auto omq = DisjunctionOmq();
  ASSERT_TRUE(omq.ok());
  auto artifact = serve::PreparedQuery::FromOmq(*omq, {});
  ASSERT_TRUE(artifact.ok());

  serve::PreparedCache cache(4);
  const CacheKey hit_key = KeyFor("cache", PlanTier::kFo);
  int loader_calls = 0;
  std::uint64_t last_content_hash = 0;
  cache.SetSecondTier(
      [&](const CacheKey& key, std::uint64_t session_content_hash)
          -> std::shared_ptr<serve::PreparedQuery> {
        ++loader_calls;
        last_content_hash = session_content_hash;
        if (key == hit_key) return *artifact;
        return nullptr;
      });

  // Miss in memory → loader hit → promoted: the second lookup is pure
  // memory (the loader is not consulted again).
  EXPECT_EQ(cache.Lookup(hit_key, /*session_content_hash=*/42).get(),
            artifact->get());
  EXPECT_EQ(loader_calls, 1);
  EXPECT_EQ(last_content_hash, 42u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(hit_key, 42).get(), artifact->get());
  EXPECT_EQ(loader_calls, 1);

  // Loader miss stays a miss and is NOT cached (the store may be
  // attached later / the key may appear in a regenerated store).
  const CacheKey miss_key = KeyFor("cache", PlanTier::kSat);
  EXPECT_EQ(cache.Lookup(miss_key), nullptr);
  EXPECT_EQ(loader_calls, 2);
  EXPECT_EQ(cache.Lookup(miss_key), nullptr);
  EXPECT_EQ(loader_calls, 3);
}

TEST(ServerStoreTest, PrepareServesFromStoreAndStoreInfoReports) {
  // Generate a store holding the auto-planned artifact for the exact
  // PREPARE the server will receive — MakeCacheKey is the shared key
  // builder, so the server's probe must hit it.
  Schema schema;
  ASSERT_TRUE(serve::AddRelationSpec("LymeDisease/1", schema).ok());
  ASSERT_TRUE(serve::AddRelationSpec("Listeriosis/1", schema).ok());
  const std::string onto = "LymeDisease | Listeriosis [= BacterialInfection";
  auto ontology = dl::ParseOntology(onto);
  ASSERT_TRUE(ontology.ok());
  auto omq = core::OntologyMediatedQuery::WithAtomicQuery(
      schema, *ontology, "BacterialInfection");
  ASSERT_TRUE(omq.ok());
  auto plan = serve::PlanOmq(*omq, serve::PlannerOptions(), 0);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->tier, PlanTier::kFo);  // pinned by the smoke golden too
  const CacheKey key = serve::MakeCacheKey(
      schema, onto, "AQ", "BacterialInfection", PlanTier::kAuto, 0);

  const std::string path = TempPath("server.store");
  {
    StoreWriter writer;
    ASSERT_TRUE(writer.AddPlan(key, *plan).ok());
    ASSERT_TRUE(writer.WriteFile(path).ok());
  }
  auto store = ArtifactStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().ResetAll();
  serve::ServerOptions options;
  options.store = *store;
  serve::Server server(options);
  auto client = server.NewClient();

  // STORE INFO needs no session.
  const std::string info = client->HandleLine("STORE INFO");
  EXPECT_NE(info.find("path " + path), std::string::npos) << info;
  EXPECT_NE(info.find("format_version 1"), std::string::npos);
  EXPECT_NE(info.find("(match)"), std::string::npos);
  EXPECT_NE(info.find("records 1"), std::string::npos);
  EXPECT_NE(info.find("plans 1"), std::string::npos);
  EXPECT_NE(info.find("groundings 0"), std::string::npos);
  EXPECT_NE(info.find("hits=0 misses=0 stale=0"), std::string::npos)
      << info;

  ASSERT_EQ(client->HandleLine("SCHEMA LymeDisease/1 Listeriosis/1"),
            "OK relations=2\n");
  ASSERT_EQ(client->HandleLine("ONTOLOGY " + onto),
            "OK axioms=1 language=ALC\n");
  // First PREPARE of this key in the process: the in-memory cache
  // misses, the mmap store hits — cached=1 with no compilation.
  EXPECT_EQ(client->HandleLine("PREPARE q AQ BacterialInfection"),
            "OK plan=fo_rewriting tier=fo cached=1 arity=1\n");
  EXPECT_EQ(obs::GetCounter("store.hits").value(), 1u);
  // The loaded artifact answers like any compiled one.
  ASSERT_EQ(client->HandleLine("ASSERT LymeDisease(ann)"),
            "OK added=1 generation=1\n");
  EXPECT_EQ(client->HandleLine("QUERY q"),
            "(ann)\nOK n=1 plan=fo_rewriting generation=1 grounded=1 "
            "delta=0\n");
  const std::string after = client->HandleLine("STORE INFO");
  EXPECT_NE(after.find("hits=1"), std::string::npos) << after;

  // A key the store lacks falls back to compiling (store.misses moves).
  EXPECT_EQ(client->HandleLine("PREPARE qs PLAN=sat AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat cached=0 arity=1\n");
  EXPECT_GE(obs::GetCounter("store.misses").value(), 1u);

  // Without a store the verb says so instead of inventing numbers.
  serve::Server bare;
  auto bare_client = bare.NewClient();
  EXPECT_EQ(bare_client->HandleLine("STORE INFO"),
            "ERR NOT_FOUND: no artifact store attached (--store)\n");
  EXPECT_EQ(bare_client->HandleLine("STORE BOGUS"),
            "ERR INVALID_ARGUMENT: usage: STORE INFO\n");
}

}  // namespace
}  // namespace obda::store
