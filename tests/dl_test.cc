#include <gtest/gtest.h>

#include "data/io.h"
#include "dl/bounded_model.h"
#include "dl/concept.h"
#include "dl/ontology.h"
#include "dl/parser.h"
#include "dl/reasoner.h"
#include "dl/transform.h"

namespace obda::dl {
namespace {

TEST(ConceptTest, BuildAndPrint) {
  Concept c = Concept::Exists(Role::Named("R"),
                              Concept::And(Concept::Name("A"),
                                           Concept::Not(Concept::Name("B"))));
  EXPECT_EQ(c.ToString(), "some R.(A & ~B)");
  EXPECT_EQ(c.kind(), Concept::Kind::kExists);
}

TEST(ConceptTest, NnfPushesNegation) {
  auto c = ParseConcept("~(A & some R.B)");
  ASSERT_TRUE(c.ok());
  Concept nnf = c->Nnf();
  EXPECT_EQ(nnf.ToString(), "(~A | all R.~B)");
}

TEST(ConceptTest, NnfDoubleNegation) {
  auto c = ParseConcept("~~A");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->Nnf().ToString(), "A");
}

TEST(ConceptTest, SubconceptsCollected) {
  auto c = ParseConcept("some R.(A & B)");
  ASSERT_TRUE(c.ok());
  auto subs = c->Subconcepts();
  EXPECT_EQ(subs.size(), 4u);  // some R.(A&B), A&B, A, B
}

TEST(ParserTest, Precedence) {
  auto c = ParseConcept("A & B | C");
  ASSERT_TRUE(c.ok());
  // & binds tighter than |.
  EXPECT_EQ(c->ToString(), "((A & B) | C)");
}

TEST(ParserTest, RolesAndQuantifiers) {
  auto c = ParseConcept("some inv(R).all U!.top");
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->role().inverse);
  EXPECT_TRUE(c->child().role().IsUniversal());
}

TEST(ParserTest, OntologyStatements) {
  auto o = ParseOntology(R"(
    # medical example, Table I
    some HasFinding.ErythemaMigrans [= some HasDiagnosis.LymeDisease
    LymeDisease | Listeriosis [= BacterialInfection
    some HasParent.HereditaryPredisposition [= HereditaryPredisposition
    rsub(HasFinding, HasSymptomLink)
    trans(HasParent)
    func(HasBirthMother)
  )");
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_EQ(o->inclusions().size(), 3u);
  EXPECT_EQ(o->role_inclusions().size(), 1u);
  EXPECT_EQ(o->transitive_roles().count("HasParent"), 1u);
  EXPECT_EQ(o->functional_roles().count("HasBirthMother"), 1u);
  DlFeatures f = o->Features();
  EXPECT_TRUE(f.role_hierarchies);
  EXPECT_TRUE(f.transitive_roles);
  EXPECT_TRUE(f.functional_roles);
  EXPECT_FALSE(f.inverse_roles);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseConcept("some .A").ok());
  EXPECT_FALSE(ParseOntology("A <~ B").ok());
}

// --- Type-elimination reasoner ---------------------------------------------

TEST(ReasonerTest, TautologyAndContradiction) {
  Ontology empty;
  auto sat = IsSatisfiable(empty, *ParseConcept("A & ~A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
  sat = IsSatisfiable(empty, *ParseConcept("A | ~A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

TEST(ReasonerTest, TBoxPropagation) {
  auto o = ParseOntology("A [= B\nB [= C");
  ASSERT_TRUE(o.ok());
  auto sub = IsSubsumed(*o, *ParseConcept("A"), *ParseConcept("C"));
  ASSERT_TRUE(sub.ok());
  EXPECT_TRUE(*sub);
  auto not_sub = IsSubsumed(*o, *ParseConcept("C"), *ParseConcept("A"));
  ASSERT_TRUE(not_sub.ok());
  EXPECT_FALSE(*not_sub);
}

TEST(ReasonerTest, ExistentialWitnessRequired) {
  // A ⊑ ∃R.B and B ⊑ ⊥ makes A unsatisfiable.
  auto o = ParseOntology("A [= some R.B\nB [= bot");
  ASSERT_TRUE(o.ok());
  auto sat = IsSatisfiable(*o, *ParseConcept("A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
}

TEST(ReasonerTest, ForallInteraction) {
  // A ⊑ ∃R.B ⊓ ∀R.¬B is unsatisfiable.
  auto o = ParseOntology("A [= some R.B & all R.~B");
  ASSERT_TRUE(o.ok());
  auto sat = IsSatisfiable(*o, *ParseConcept("A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
}

TEST(ReasonerTest, ClassicExptimeStylePattern) {
  // ⊤ ⊑ ∃R.⊤; A ⊑ ∀R.A; A ⊓ B unsat if A ⊑ ¬B... sanity combination.
  auto o = ParseOntology("top [= some R.top\nA [= all R.A\nA [= ~B");
  ASSERT_TRUE(o.ok());
  auto sat = IsSatisfiable(*o, *ParseConcept("A & B"));
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
  sat = IsSatisfiable(*o, *ParseConcept("A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

TEST(ReasonerTest, InverseRoles) {
  // ∃R.A ⊓ ∀R.∀inv(R).¬(∃R.A) is unsatisfiable: going R then back via
  // inverse returns to an element with ∃R.A.
  auto o = ParseOntology("top [= top");  // empty-ish ontology
  ASSERT_TRUE(o.ok());
  auto c = ParseConcept("some R.A & all R.all inv(R).~some R.A");
  ASSERT_TRUE(c.ok());
  auto sat = IsSatisfiable(*o, *c);
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
}

TEST(ReasonerTest, RoleHierarchy) {
  // R ⊑ S: ∃R.A ⊓ ∀S.¬A unsatisfiable.
  auto o = ParseOntology("rsub(R, S)");
  ASSERT_TRUE(o.ok());
  auto sat = IsSatisfiable(*o, *ParseConcept("some R.A & all S.~A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
  // Without the hierarchy it is satisfiable.
  Ontology empty;
  auto sat2 = IsSatisfiable(empty, *ParseConcept("some R.A & all S.~A"));
  ASSERT_TRUE(sat2.ok());
  EXPECT_TRUE(*sat2);
}

TEST(ReasonerTest, TransitiveRolePropagation) {
  // trans(R): ∃R.∃R.A ⊓ ∀R.¬A is unsatisfiable (the 2-step reach is
  // 1-step by transitivity).
  auto o = ParseOntology("trans(R)");
  ASSERT_TRUE(o.ok());
  auto sat = IsSatisfiable(*o, *ParseConcept("some R.some R.A & all R.~A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
  Ontology empty;
  auto sat2 =
      IsSatisfiable(empty, *ParseConcept("some R.some R.A & all R.~A"));
  ASSERT_TRUE(sat2.ok());
  EXPECT_TRUE(*sat2);
}

TEST(ReasonerTest, UniversalRole) {
  // ∃U.A ⊓ ∀U.¬A is unsatisfiable.
  Ontology empty;
  auto sat = IsSatisfiable(empty, *ParseConcept("some U!.A & all U!.~A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
  // ∃U.A ⊓ ¬A is satisfiable (witness elsewhere).
  auto sat2 = IsSatisfiable(empty, *ParseConcept("some U!.A & ~A"));
  ASSERT_TRUE(sat2.ok());
  EXPECT_TRUE(*sat2);
}

TEST(ReasonerTest, UniversalRoleGlobalConstraint) {
  // O = {⊤ ⊑ ∀U.¬A}: A is unsatisfiable.
  auto o = ParseOntology("top [= all U!.~A");
  ASSERT_TRUE(o.ok());
  auto sat = IsSatisfiable(*o, *ParseConcept("A"));
  ASSERT_TRUE(sat.ok());
  EXPECT_FALSE(*sat);
}

TEST(ReasonerTest, EdgeCompatibility) {
  auto o = ParseOntology("A [= all R.B");
  ASSERT_TRUE(o.ok());
  auto r = TypeReasoner::Create(*o, {*ParseConcept("A"), *ParseConcept("B")});
  ASSERT_TRUE(r.ok());
  // Find a type with A and a type without B: they must not be R-linkable.
  Concept a = *ParseConcept("A");
  Concept b = *ParseConcept("B");
  bool found_violation = false;
  for (TypeId t1 = 0; t1 < static_cast<TypeId>(r->NumSurvivingTypes());
       ++t1) {
    if (!r->TypeContains(t1, a)) continue;
    for (TypeId t2 = 0; t2 < static_cast<TypeId>(r->NumSurvivingTypes());
         ++t2) {
      if (r->TypeContains(t2, b)) continue;
      EXPECT_FALSE(r->EdgeCompatible(t1, t2, Role::Named("R")));
      found_violation = true;
    }
  }
  EXPECT_TRUE(found_violation);
}

// --- Transformations --------------------------------------------------------

TEST(TransformTest, NormalizeToExists) {
  auto c = ParseConcept("all R.A | B");
  ASSERT_TRUE(c.ok());
  Concept n = NormalizeToExists(*c);
  // No ∀ or ⊔ in the output.
  for (const Concept& sub : n.Subconcepts()) {
    EXPECT_NE(sub.kind(), Concept::Kind::kForall);
    EXPECT_NE(sub.kind(), Concept::Kind::kOr);
  }
}

TEST(TransformTest, InverseEliminationPreservesSatisfiability) {
  auto o = ParseOntology("A [= some inv(R).B\nB [= some R.A");
  ASSERT_TRUE(o.ok());
  InverseElimination elim = EliminateInverseRoles(*o);
  EXPECT_FALSE(elim.ontology.Features().inverse_roles);
  auto sat_orig = IsSatisfiable(*o, *ParseConcept("A"));
  auto sat_elim = IsSatisfiable(elim.ontology, *ParseConcept("A"));
  ASSERT_TRUE(sat_orig.ok());
  ASSERT_TRUE(sat_elim.ok());
  EXPECT_EQ(*sat_orig, *sat_elim);
}

TEST(TransformTest, TransitivityEliminationDropsTrans) {
  auto o = ParseOntology("trans(R)\nA [= all R.B");
  ASSERT_TRUE(o.ok());
  Ontology elim = EliminateTransitivity(*o);
  EXPECT_TRUE(elim.transitive_roles().empty());
  EXPECT_GT(elim.inclusions().size(), o->inclusions().size());
}

TEST(TransformTest, HierarchyEliminationDropsRsub) {
  auto o = ParseOntology("rsub(R, S)\nA [= all S.B");
  ASSERT_TRUE(o.ok());
  Ontology elim = EliminateRoleHierarchies(*o);
  EXPECT_TRUE(elim.role_inclusions().empty());
  // ∃R.⊤ ⊓ A ⊓ ∀R... : check a consequence: A ⊓ ∃R.¬B unsat in both.
  auto c = ParseConcept("A & some R.~B");
  ASSERT_TRUE(c.ok());
  auto sat_orig = IsSatisfiable(*o, *c);
  auto sat_elim = IsSatisfiable(elim, *c);
  ASSERT_TRUE(sat_orig.ok());
  ASSERT_TRUE(sat_elim.ok());
  EXPECT_FALSE(*sat_orig);
  EXPECT_EQ(*sat_orig, *sat_elim);
}

// --- Bounded-model reference engine ----------------------------------------

TEST(BoundedModelTest, MedicalExampleCertainAnswers) {
  // Example 2.1 end-to-end on the reference engine.
  auto o = ParseOntology(R"(
    some HasFinding.ErythemaMigrans [= some HasDiagnosis.LymeDisease
    LymeDisease | Listeriosis [= BacterialInfection
  )");
  ASSERT_TRUE(o.ok());
  data::Schema s;
  s.AddRelation("ErythemaMigrans", 1);
  s.AddRelation("LymeDisease", 1);
  s.AddRelation("Listeriosis", 1);
  s.AddRelation("HasFinding", 2);
  s.AddRelation("HasDiagnosis", 2);
  auto d = data::ParseInstance(s, R"(
    HasFinding(patient1, jan12find1). ErythemaMigrans(jan12find1).
    HasDiagnosis(patient2, may7diag2). Listeriosis(may7diag2)
  )");
  ASSERT_TRUE(d.ok());
  // q(x) = ∃y HasDiagnosis(x,y) ∧ BacterialInfection(y); the query may use
  // sig(O) symbols, so its schema extends the data schema.
  data::Schema qs = s;
  qs.AddRelation("BacterialInfection", 1);
  fo::ConjunctiveQuery cq(qs, 1);
  fo::QVar y = cq.AddVariable();
  ASSERT_TRUE(cq.AddAtomByName("HasDiagnosis", {0, y}).ok());
  ASSERT_TRUE(cq.AddAtomByName("BacterialInfection", {y}).ok());
  fo::UnionOfCq q(qs, 1);
  q.AddDisjunct(cq);

  auto answers = BoundedCertainAnswers(*o, *d, q);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // certq,O(D) = {patient1, patient2} per the paper.
  ASSERT_EQ(answers->size(), 2u);
  std::vector<std::string> names;
  for (const auto& t : *answers) names.push_back(d->ConstantName(t[0]));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"patient1", "patient2"}));
}

TEST(BoundedModelTest, DatalogStyleRecursion) {
  // Example 2.2: HereditaryPredisposition propagates along HasParent.
  auto o = ParseOntology(
      "some HasParent.HereditaryPredisposition [= HereditaryPredisposition");
  ASSERT_TRUE(o.ok());
  data::Schema s;
  s.AddRelation("HereditaryPredisposition", 1);
  s.AddRelation("HasParent", 2);
  auto d = data::ParseInstance(s, R"(
    HasParent(c, p). HasParent(p, g). HereditaryPredisposition(g)
  )");
  ASSERT_TRUE(d.ok());
  fo::UnionOfCq q(s, 1);
  q.AddDisjunct(fo::MakeAtomicQuery(s, "HereditaryPredisposition"));
  auto answers = BoundedCertainAnswers(*o, *d, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 3u);  // c, p, g
}

TEST(BoundedModelTest, DisjunctionIsOpenWorld) {
  // O = {A ⊑ B ⊔ C}: neither B nor C is certain for an A-individual.
  auto o = ParseOntology("A [= B | C");
  ASSERT_TRUE(o.ok());
  data::Schema s;
  s.AddRelation("A", 1);
  auto d = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d.ok());
  data::Schema qs = s;
  qs.AddRelation("B", 1);
  fo::UnionOfCq qb(qs, 1);
  qb.AddDisjunct(fo::MakeAtomicQuery(qs, "B"));
  auto answers = BoundedCertainAnswers(*o, *d, qb);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
  // But B-or-C as a UCQ is certain.
  data::Schema qs2 = qs;
  qs2.AddRelation("C", 1);
  fo::UnionOfCq qbc(qs2, 1);
  qbc.AddDisjunct(fo::MakeAtomicQuery(qs2, "B"));
  qbc.AddDisjunct(fo::MakeAtomicQuery(qs2, "C"));
  auto answers2 = BoundedCertainAnswers(*o, *d, qbc);
  ASSERT_TRUE(answers2.ok());
  EXPECT_EQ(answers2->size(), 1u);
}

TEST(BoundedModelTest, InconsistencyMakesEverythingCertain) {
  auto o = ParseOntology("A [= bot");
  ASSERT_TRUE(o.ok());
  data::Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("Other", 1);
  auto d = data::ParseInstance(s, "A(a). Other(b)");
  ASSERT_TRUE(d.ok());
  auto consistent = BoundedConsistent(*o, *d);
  ASSERT_TRUE(consistent.ok());
  EXPECT_FALSE(*consistent);
  fo::UnionOfCq q(s, 1);
  q.AddDisjunct(fo::MakeAtomicQuery(s, "Other"));
  auto answers = BoundedCertainAnswers(*o, *d, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // both a and b
}

TEST(BoundedModelTest, FunctionalRoleInconsistency) {
  // Thm 3.10 (ALCF part): D = {R(a,b1), R(a,b2)} inconsistent with
  // func(R) under the standard names assumption.
  auto o = ParseOntology("func(R)");
  ASSERT_TRUE(o.ok());
  data::Schema s;
  s.AddRelation("R", 2);
  auto d1 = data::ParseInstance(s, "R(a,b1). R(a,b2)");
  ASSERT_TRUE(d1.ok());
  auto c1 = BoundedConsistent(*o, *d1);
  ASSERT_TRUE(c1.ok());
  EXPECT_FALSE(*c1);
  auto d2 = data::ParseInstance(s, "R(a,b)");
  ASSERT_TRUE(d2.ok());
  auto c2 = BoundedConsistent(*o, *d2);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(*c2);
}

TEST(BoundedModelTest, AgreesWithTypeReasonerOnSatisfiability) {
  // Cross-validation: concept satisfiable iff a one-element instance
  // asserting a marker has a bounded model with the marker forced.
  const char* ontologies[] = {
      "A [= some R.B\nB [= bot",
      "A [= some R.B & all R.~B",
      "A [= all R.B",
      "top [= some R.top\nA [= all R.A\nA [= ~B",
  };
  const char* concepts[] = {"A", "A & B", "some R.A", "A | B"};
  for (const char* otext : ontologies) {
    auto o = ParseOntology(otext);
    ASSERT_TRUE(o.ok());
    for (const char* ctext : concepts) {
      auto c = ParseConcept(ctext);
      ASSERT_TRUE(c.ok());
      auto expected = IsSatisfiable(*o, *c);
      ASSERT_TRUE(expected.ok());
      // Encode: Marker ⊑ C with fresh Marker; D = {Marker(a)}.
      Ontology extended = *o;
      extended.AddInclusion(Concept::Name("ObdaTestMarker"), *c);
      data::Schema s;
      s.AddRelation("ObdaTestMarker", 1);
      auto d = data::ParseInstance(s, "ObdaTestMarker(a)");
      ASSERT_TRUE(d.ok());
      BoundedModelOptions options;
      options.extra_elements = 6;
      auto consistent = BoundedConsistent(extended, *d, options);
      ASSERT_TRUE(consistent.ok());
      EXPECT_EQ(*consistent, *expected)
          << "ontology:\n" << otext << "\nconcept: " << ctext;
    }
  }
}

}  // namespace
}  // namespace obda::dl
