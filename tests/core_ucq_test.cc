#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/omq.h"
#include "core/ucq_translation.h"
#include "data/generator.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "dl/parser.h"

namespace obda::core {
namespace {

using data::Instance;
using data::Schema;

/// Builds the medical OMQ of Example 2.1 (without the HasParent axiom).
OntologyMediatedQuery MedicalOmq() {
  auto o = dl::ParseOntology(R"(
    some HasFinding.ErythemaMigrans [= some HasDiagnosis.LymeDisease
    LymeDisease | Listeriosis [= BacterialInfection
  )");
  OBDA_CHECK(o.ok());
  Schema s;
  s.AddRelation("ErythemaMigrans", 1);
  s.AddRelation("LymeDisease", 1);
  s.AddRelation("Listeriosis", 1);
  s.AddRelation("HasFinding", 2);
  s.AddRelation("HasDiagnosis", 2);
  auto qs = QuerySchema(s, *o);
  OBDA_CHECK(qs.ok());
  fo::ConjunctiveQuery cq(*qs, 1);
  fo::QVar y = cq.AddVariable();
  OBDA_CHECK(cq.AddAtomByName("HasDiagnosis", {0, y}).ok());
  OBDA_CHECK(cq.AddAtomByName("BacterialInfection", {y}).ok());
  fo::UnionOfCq q(*qs, 1);
  q.AddDisjunct(cq);
  auto omq = OntologyMediatedQuery::Create(s, *o, q);
  OBDA_CHECK(omq.ok());
  return *omq;
}

TEST(UcqTranslationTest, MedicalExample21) {
  OntologyMediatedQuery omq = MedicalOmq();
  auto program = CompileUcqToMddlog(omq);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->IsMonadic());
  ASSERT_TRUE(program->Validate().ok());

  auto d = data::ParseInstance(omq.data_schema(), R"(
    HasFinding(patient1, jan12find1). ErythemaMigrans(jan12find1).
    HasDiagnosis(patient2, may7diag2). Listeriosis(may7diag2)
  )");
  ASSERT_TRUE(d.ok());
  auto answers = ddlog::CertainAnswers(*program, *d);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->tuples.size(), 2u);
  std::vector<std::string> names;
  for (const auto& t : answers->tuples) {
    names.push_back(d->ConstantName(t[0]));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"patient1", "patient2"}));
}

TEST(UcqTranslationTest, PlainCqWithoutOntology) {
  // With an empty ontology the program must evaluate the UCQ itself.
  Schema s;
  s.AddRelation("E", 2);
  dl::Ontology o;
  fo::ConjunctiveQuery cq(s, 0);
  fo::QVar x = cq.AddVariable();
  fo::QVar y = cq.AddVariable();
  fo::QVar z = cq.AddVariable();
  cq.AddAtom(0, {x, y});
  cq.AddAtom(0, {y, z});
  fo::UnionOfCq q(s, 0);
  q.AddDisjunct(cq);
  auto omq = OntologyMediatedQuery::Create(s, o, q);
  ASSERT_TRUE(omq.ok());
  auto program = CompileUcqToMddlog(*omq);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  // Directed path of length 2 matches; a single edge does not.
  auto yes = ddlog::EvaluateBoolean(*program, data::DirectedPath("E", 2));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = ddlog::EvaluateBoolean(*program, data::DirectedPath("E", 1));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  // A loop also matches (homomorphic semantics).
  auto loop = ddlog::EvaluateBoolean(*program, data::Loop("E"));
  ASSERT_TRUE(loop.ok());
  EXPECT_TRUE(*loop);
}

TEST(UcqTranslationTest, TreeWitnessRequired) {
  // O = {A ⊑ ∃R.(B ⊓ ∃R.C)}: q() = ∃x,y,z R(x,y) ∧ B(y) ∧ R(y,z) ∧ C(z)
  // becomes certain on D = {A(a)} through the anonymous tree part.
  auto o = dl::ParseOntology("A [= some R.(B & some R.C)");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto qs = QuerySchema(s, *o);
  ASSERT_TRUE(qs.ok());
  fo::ConjunctiveQuery cq(*qs, 0);
  fo::QVar x = cq.AddVariable();
  fo::QVar y = cq.AddVariable();
  fo::QVar z = cq.AddVariable();
  ASSERT_TRUE(cq.AddAtomByName("R", {x, y}).ok());
  ASSERT_TRUE(cq.AddAtomByName("B", {y}).ok());
  ASSERT_TRUE(cq.AddAtomByName("R", {y, z}).ok());
  ASSERT_TRUE(cq.AddAtomByName("C", {z}).ok());
  fo::UnionOfCq q(*qs, 0);
  q.AddDisjunct(cq);
  auto omq = OntologyMediatedQuery::Create(s, *o, q);
  ASSERT_TRUE(omq.ok());
  auto program = CompileUcqToMddlog(*omq);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto d = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d.ok());
  auto certain = ddlog::EvaluateBoolean(*program, *d);
  ASSERT_TRUE(certain.ok());
  EXPECT_TRUE(*certain);

  auto d2 = data::ParseInstance(s, "R(a,b)");
  ASSERT_TRUE(d2.ok());
  auto not_certain = ddlog::EvaluateBoolean(*program, *d2);
  ASSERT_TRUE(not_certain.ok());
  EXPECT_FALSE(*not_certain);
}

TEST(UcqTranslationTest, MixedCoreAndTreeMatch) {
  // O = {A ⊑ ∃R.B}; q(x) = ∃y R(x,y) ∧ B(y). Data R-edges to B-elements
  // and A-facts both produce answers.
  auto o = dl::ParseOntology("A [= some R.B");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  s.AddRelation("R", 2);
  auto qs = QuerySchema(s, *o);
  ASSERT_TRUE(qs.ok());
  fo::ConjunctiveQuery cq(*qs, 1);
  fo::QVar y = cq.AddVariable();
  ASSERT_TRUE(cq.AddAtomByName("R", {0, y}).ok());
  ASSERT_TRUE(cq.AddAtomByName("B", {y}).ok());
  fo::UnionOfCq q(*qs, 1);
  q.AddDisjunct(cq);
  auto omq = OntologyMediatedQuery::Create(s, *o, q);
  ASSERT_TRUE(omq.ok());
  auto program = CompileUcqToMddlog(*omq);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto d = data::ParseInstance(s, "A(a). R(u,v). B(v). R(p,q)");
  ASSERT_TRUE(d.ok());
  auto answers = ddlog::CertainAnswers(*program, *d);
  ASSERT_TRUE(answers.ok());
  std::vector<std::string> names;
  for (const auto& t : answers->tuples) {
    names.push_back(d->ConstantName(t[0]));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "u"}));
}

TEST(UcqTranslationTest, RejectsUnsupportedFeatures) {
  Schema s;
  s.AddRelation("R", 2);
  {
    auto o = dl::ParseOntology("trans(R)");
    ASSERT_TRUE(o.ok());
    fo::UnionOfCq q(*QuerySchema(s, *o), 0);
    auto omq = OntologyMediatedQuery::Create(s, *o, q);
    ASSERT_TRUE(omq.ok());
    EXPECT_FALSE(CompileUcqToMddlog(*omq).ok());
  }
  {
    auto o = dl::ParseOntology("A [= some inv(R).B");
    ASSERT_TRUE(o.ok());
    fo::UnionOfCq q(*QuerySchema(s, *o), 0);
    auto omq = OntologyMediatedQuery::Create(s, *o, q);
    ASSERT_TRUE(omq.ok());
    EXPECT_FALSE(CompileUcqToMddlog(*omq).ok());
  }
}

// --- Thm 3.6(1): inverse-role elimination at the OMQ level ------------------

TEST(InverseEliminationTest, QueryRewriteDistributes) {
  auto o = dl::ParseOntology("A [= some inv(R).B");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  s.AddRelation("R", 2);
  auto qs = QuerySchema(s, *o);
  ASSERT_TRUE(qs.ok());
  fo::ConjunctiveQuery cq(*qs, 0);
  fo::QVar x = cq.AddVariable();
  fo::QVar y = cq.AddVariable();
  ASSERT_TRUE(cq.AddAtomByName("R", {x, y}).ok());
  ASSERT_TRUE(cq.AddAtomByName("B", {x}).ok());
  fo::UnionOfCq q(*qs, 0);
  q.AddDisjunct(cq);
  auto omq = OntologyMediatedQuery::Create(s, *o, q);
  ASSERT_TRUE(omq.ok());
  auto eliminated = EliminateInverseRolesInOmq(*omq);
  ASSERT_TRUE(eliminated.ok()) << eliminated.status().ToString();
  EXPECT_FALSE(eliminated->ontology().Features().inverse_roles);
  // One binary atom -> two disjuncts.
  EXPECT_EQ(eliminated->query().disjuncts().size(), 2u);
}

TEST(InverseEliminationTest, CertainAnswersPreserved) {
  // O = {A ⊑ ∃inv(R).B}: every A-element gets an incoming R-edge from an
  // (anonymous) B-element. q() = ∃x,y R(x,y) ∧ B(x) is then certain on
  // D = {A(a)}.
  auto o = dl::ParseOntology("A [= some inv(R).B");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  s.AddRelation("R", 2);
  auto qs = QuerySchema(s, *o);
  ASSERT_TRUE(qs.ok());
  fo::ConjunctiveQuery cq(*qs, 0);
  fo::QVar x = cq.AddVariable();
  fo::QVar y = cq.AddVariable();
  ASSERT_TRUE(cq.AddAtomByName("R", {x, y}).ok());
  ASSERT_TRUE(cq.AddAtomByName("B", {x}).ok());
  fo::UnionOfCq q(*qs, 0);
  q.AddDisjunct(cq);
  auto omq = OntologyMediatedQuery::Create(s, *o, q);
  ASSERT_TRUE(omq.ok());

  auto eliminated = EliminateInverseRolesInOmq(*omq);
  ASSERT_TRUE(eliminated.ok());
  auto program = CompileUcqToMddlog(*eliminated);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto d1 = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d1.ok());
  auto r1 = ddlog::EvaluateBoolean(*program, *d1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  auto d2 = data::ParseInstance(s, "R(u,v). B(v)");  // B at the target
  ASSERT_TRUE(d2.ok());
  auto r2 = ddlog::EvaluateBoolean(*program, *d2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
  auto d3 = data::ParseInstance(s, "R(u,v). B(u)");  // direct data match
  ASSERT_TRUE(d3.ok());
  auto r3 = ddlog::EvaluateBoolean(*program, *d3);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(*r3);
}

// --- Randomized cross-validation against the reference engine ---------------

class UcqVsBoundedTest : public ::testing::TestWithParam<int> {};

TEST_P(UcqVsBoundedTest, AgreeOnRandomData) {
  base::Rng rng(GetParam());
  auto o = dl::ParseOntology(R"(
    A [= some R.B
    B [= C | D
    some R.C [= C
  )");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  s.AddRelation("R", 2);
  auto qs = QuerySchema(s, *o);
  ASSERT_TRUE(qs.ok());
  // q(x) = ∃y R(x,y) ∧ C(y)  ∨  ∃y R(x,y) ∧ D(y).
  fo::UnionOfCq q(*qs, 1);
  for (const char* target : {"C", "D"}) {
    fo::ConjunctiveQuery cq(*qs, 1);
    fo::QVar y = cq.AddVariable();
    ASSERT_TRUE(cq.AddAtomByName("R", {0, y}).ok());
    ASSERT_TRUE(cq.AddAtomByName(target, {y}).ok());
    q.AddDisjunct(cq);
  }
  auto omq = OntologyMediatedQuery::Create(s, *o, q);
  ASSERT_TRUE(omq.ok());
  auto program = CompileUcqToMddlog(*omq);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  data::RandomInstanceOptions opts;
  opts.num_constants = 3;
  opts.facts_per_relation = 3;
  Instance d = data::RandomInstance(s, opts, rng);
  auto via_program = ddlog::CertainAnswers(*program, d);
  ASSERT_TRUE(via_program.ok());
  dl::BoundedModelOptions bounded;
  bounded.extra_elements = 4;
  auto reference = omq->CertainAnswersBounded(d, bounded);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(via_program->tuples, *reference)
      << "seed " << GetParam() << "\ndata:\n" << d.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, UcqVsBoundedTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace obda::core
