#include <gtest/gtest.h>

#include "base/rng.h"
#include "data/generator.h"
#include "data/homomorphism.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "gfo/fo_formula.h"
#include "gfo/fo_omq.h"

namespace obda::gfo {
namespace {

using data::Instance;
using data::Schema;

TEST(FoFormulaTest, BuildAndEvaluate) {
  // ∃x,y E(x,y) ∧ E(y,x)
  FoFormula f = FoFormula::Exists(
      {0, 1}, FoFormula::And({FoFormula::Atom("E", {0, 1}),
                              FoFormula::Atom("E", {1, 0})}));
  EXPECT_TRUE(f.Holds(data::DirectedCycle("E", 2)));
  EXPECT_FALSE(f.Holds(data::DirectedCycle("E", 3)));
  EXPECT_TRUE(f.FreeVars().empty());
}

TEST(FoFormulaTest, ForallSemantics) {
  // ∀x,y (¬E(x,y) ∨ E(y,x))  — symmetry.
  FoFormula f = FoFormula::Forall(
      {0, 1}, FoFormula::Or({FoFormula::Not(FoFormula::Atom("E", {0, 1})),
                             FoFormula::Atom("E", {1, 0})}));
  EXPECT_TRUE(f.Holds(data::Clique("E", 3)));          // symmetric
  EXPECT_FALSE(f.Holds(data::DirectedCycle("E", 3)));  // not symmetric
}

TEST(FoFormulaTest, EqualityAndAssignment) {
  FoFormula loop = FoFormula::Atom("E", {0, 0});
  Instance l = data::Loop("E");
  EXPECT_TRUE(loop.Holds(l, {0}));
  FoFormula eq = FoFormula::Equals(0, 1);
  EXPECT_TRUE(eq.Holds(l, {0, 0}));
}

TEST(FoFormulaTest, FragmentChecks) {
  // UNFO: ¬∃x,y E(x,y) is UNFO (sentence negation).
  FoFormula unfo = FoFormula::Not(
      FoFormula::Exists({0, 1}, FoFormula::Atom("E", {0, 1})));
  EXPECT_TRUE(unfo.IsUnfo());
  EXPECT_TRUE(unfo.IsGnfo());

  // ∃x,y ¬E(x,y): not UNFO, not GNFO (unguarded binary negation).
  FoFormula not_unfo = FoFormula::Exists(
      {0, 1}, FoFormula::Not(FoFormula::Atom("E", {0, 1})));
  EXPECT_FALSE(not_unfo.IsUnfo());
  EXPECT_FALSE(not_unfo.IsGnfo());

  // Guarded negation: ∃x,y (E(x,y) ∧ ¬F(x,y)) is GNFO but not UNFO.
  FoFormula gn = FoFormula::Exists(
      {0, 1}, FoFormula::And({FoFormula::Atom("E", {0, 1}),
                              FoFormula::Not(FoFormula::Atom("F", {0, 1}))}));
  EXPECT_TRUE(gn.IsGnfo());
  EXPECT_FALSE(gn.IsUnfo());

  // GFO: ∀x,y (E(x,y) → F(x,y)) with the guard idiom.
  FoFormula gfo = FoFormula::Forall(
      {0, 1}, FoFormula::Or({FoFormula::Not(FoFormula::Atom("E", {0, 1})),
                             FoFormula::Atom("F", {0, 1})}));
  EXPECT_TRUE(gfo.IsGfo());
  // Unguarded ∀ over two variables is not GFO.
  FoFormula not_gfo = FoFormula::Forall({0, 1},
                                        FoFormula::Atom("F", {0, 1}));
  EXPECT_FALSE(not_gfo.IsGfo());
}

// --- Thm 3.17(2): frontier-guarded DDlog → (GNFO, UCQ) ----------------------

TEST(FgToGnfoTest, TranslationProducesGnfo) {
  ddlog::Program program = Prop315Program();
  ASSERT_TRUE(program.IsFrontierGuarded());
  auto omq = FgDdlogToGnfoOmq(program);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  EXPECT_TRUE(omq->ontology.IsGnfo());
  EXPECT_EQ(omq->query.arity(), 0);
}

TEST(FgToGnfoTest, AgreesWithProgramOnFamilies) {
  ddlog::Program program = Prop315Program();
  auto omq = FgDdlogToGnfoOmq(program);
  ASSERT_TRUE(omq.ok());
  for (int m : {2, 3, 4}) {
    Instance yes = Prop315YesInstance(m);
    Instance no = Prop315NoInstance(m);
    auto p_yes = ddlog::EvaluateBoolean(program, yes);
    auto p_no = ddlog::EvaluateBoolean(program, no);
    ASSERT_TRUE(p_yes.ok());
    ASSERT_TRUE(p_no.ok());
    EXPECT_TRUE(*p_yes) << "m=" << m;
    EXPECT_FALSE(*p_no) << "m=" << m;
    FoBoundedOptions options;
    options.extra_elements = 0;  // no fresh elements needed here
    auto o_yes = BoundedCertainAnswersFo(*omq, yes, options);
    auto o_no = BoundedCertainAnswersFo(*omq, no, options);
    ASSERT_TRUE(o_yes.ok()) << o_yes.status().ToString();
    ASSERT_TRUE(o_no.ok());
    EXPECT_EQ(o_yes->size(), 1u) << "m=" << m;
    EXPECT_TRUE(o_no->empty()) << "m=" << m;
  }
}

TEST(FgToGnfoTest, RandomAgreement) {
  ddlog::Program program = Prop315Program();
  auto omq = FgDdlogToGnfoOmq(program);
  ASSERT_TRUE(omq.ok());
  base::Rng rng(13);
  const data::Schema& s = program.edb_schema();
  for (int trial = 0; trial < 6; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 3;
    opts.facts_per_relation = 3;
    Instance d = data::RandomInstance(s, opts, rng);
    auto via_program = ddlog::EvaluateBoolean(program, d);
    ASSERT_TRUE(via_program.ok());
    FoBoundedOptions options;
    options.extra_elements = 0;
    auto via_omq = BoundedCertainAnswersFo(*omq, d, options);
    ASSERT_TRUE(via_omq.ok());
    EXPECT_EQ(*via_program, via_omq->size() == 1)
        << "trial " << trial << "\n" << d.ToString();
  }
}

// --- Prop 3.15 / Lemma 3.9: MDDlog inexpressibility -------------------------

TEST(Prop315Test, Lemma39ColoringProperty) {
  // The proof's construction: for given k, n, with m = k^(n+1) + 2n
  // (small variant), every k-coloring of D0 admits a k-coloring of D1
  // whose ≤n-element subinstances map into D0. We verify the
  // homomorphism half on a small case: subinstances of D1 missing at
  // least one chain element map into D0.
  const int m = 4;
  Instance d1 = Prop315YesInstance(m);
  Instance d0 = Prop315NoInstance(m);
  // D1 itself does NOT map into D0 (the query separates them)...
  EXPECT_FALSE(*data::HomomorphismExists(d1, d0));
  // ...but dropping any single P-fact of D1 yields a mappable instance.
  auto p = d1.schema().FindRelation("P");
  ASSERT_TRUE(p.has_value());
  for (std::uint32_t skip = 0; skip < d1.NumTuples(*p); ++skip) {
    Instance sub(d1.schema());
    for (data::ConstId c = 0; c < d1.UniverseSize(); ++c) {
      sub.AddConstant(d1.ConstantName(c));
    }
    for (data::RelationId r = 0; r < d1.schema().NumRelations(); ++r) {
      for (std::uint32_t i = 0; i < d1.NumTuples(r); ++i) {
        if (r == *p && i == skip) continue;
        sub.AddFact(r, d1.Tuple(r, i));
      }
    }
    EXPECT_TRUE(*data::HomomorphismExists(sub, d0)) << "skip " << skip;
  }
}

}  // namespace
}  // namespace obda::gfo

namespace obda::gfo {
namespace {

TEST(Prop315GfoTest, OntologyIsGuardedFragment) {
  FoOmq omq = Prop315GfoOmq();
  EXPECT_TRUE(omq.ontology.IsGfo());
  EXPECT_EQ(omq.query.arity(), 0);
}

TEST(Prop315GfoTest, GfoOmqMatchesProgramOnFamilies) {
  // The (GFO,UCQ) formulation of (†) from the proof of Prop 3.15 defines
  // the same query as the frontier-guarded program.
  FoOmq omq = Prop315GfoOmq();
  ddlog::Program program = Prop315Program();
  for (int m : {2, 3}) {
    for (bool yes : {true, false}) {
      data::Instance d =
          yes ? Prop315YesInstance(m) : Prop315NoInstance(m);
      auto via_program = ddlog::EvaluateBoolean(program, d);
      FoBoundedOptions options;
      options.extra_elements = 0;
      auto via_gfo = BoundedCertainAnswersFo(omq, d, options);
      ASSERT_TRUE(via_program.ok());
      ASSERT_TRUE(via_gfo.ok()) << via_gfo.status().ToString();
      EXPECT_EQ(*via_program, via_gfo->size() == 1)
          << "m=" << m << " yes=" << yes;
      EXPECT_EQ(*via_program, yes) << "m=" << m;
    }
  }
}

}  // namespace
}  // namespace obda::gfo
