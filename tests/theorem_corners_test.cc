// Focused tests for theorem corners not already covered elsewhere:
// role hierarchies on the UCQ path (Thm 3.6(2)), the Boolean backward
// translation (Thm 3.13), schema-free rewritability (Thm 6.3), and
// transformation cross-validation against the reference engine.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/csp_translation.h"
#include "core/mddlog_translation.h"
#include "core/omq.h"
#include "core/rewritability.h"
#include "core/schema_free.h"
#include "core/ucq_translation.h"
#include "data/generator.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "dl/bounded_model.h"
#include "dl/parser.h"
#include "dl/transform.h"

namespace obda::core {
namespace {

using data::Instance;
using data::Schema;

// --- Thm 3.6(2): ALCH on the UCQ→MDDlog path -------------------------------

TEST(AlchUcqTest, RoleHierarchyFeedsTreeQueries) {
  // O: A ⊑ ∃Narrow.B with Narrow ⊑ Wide; q() = ∃x,y Wide(x,y) ∧ B(y).
  // The anonymous Narrow-edge counts as a Wide-edge for the query.
  auto o = dl::ParseOntology("rsub(Narrow, Wide)\nA [= some Narrow.B");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  s.AddRelation("Narrow", 2);
  s.AddRelation("Wide", 2);
  auto qs = QuerySchema(s, *o);
  ASSERT_TRUE(qs.ok());
  fo::ConjunctiveQuery cq(*qs, 0);
  fo::QVar x = cq.AddVariable();
  fo::QVar y = cq.AddVariable();
  ASSERT_TRUE(cq.AddAtomByName("Wide", {x, y}).ok());
  ASSERT_TRUE(cq.AddAtomByName("B", {y}).ok());
  fo::UnionOfCq q(*qs, 0);
  q.AddDisjunct(cq);
  auto omq = OntologyMediatedQuery::Create(s, *o, q);
  ASSERT_TRUE(omq.ok());
  auto program = CompileUcqToMddlog(*omq);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  auto d1 = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d1.ok());
  auto r1 = ddlog::EvaluateBoolean(*program, *d1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);  // anonymous Narrow ⊑ Wide edge satisfies the query
  auto d2 = data::ParseInstance(s, "Narrow(u,v). B(v)");
  ASSERT_TRUE(d2.ok());
  auto r2 = ddlog::EvaluateBoolean(*program, *d2);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);  // data Narrow edge also counts
  // A(v) creates an anonymous Narrow ⊑ Wide edge out of v, so even this
  // instance is certain; a truly negative case has no A and no B-target.
  auto d3 = data::ParseInstance(s, "Wide(u,v). A(v)");
  ASSERT_TRUE(d3.ok());
  auto r3 = ddlog::EvaluateBoolean(*program, *d3);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(*r3);
  auto d4 = data::ParseInstance(s, "Wide(u,v). B(u)");
  ASSERT_TRUE(d4.ok());
  auto r4 = ddlog::EvaluateBoolean(*program, *d4);
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(*r4);  // B only at the edge SOURCE: no match anywhere
}

class AlchUcqRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(AlchUcqRandomTest, AgreesWithReference) {
  auto o = dl::ParseOntology(R"(
    rsub(Narrow, Wide)
    A [= some Narrow.B
    B [= C | D
  )");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  s.AddRelation("Narrow", 2);
  s.AddRelation("Wide", 2);
  auto qs = QuerySchema(s, *o);
  ASSERT_TRUE(qs.ok());
  fo::UnionOfCq q(*qs, 1);
  for (const char* target : {"C", "D"}) {
    fo::ConjunctiveQuery cq(*qs, 1);
    fo::QVar y = cq.AddVariable();
    EXPECT_TRUE(cq.AddAtomByName("Wide", {0, y}).ok());
    EXPECT_TRUE(cq.AddAtomByName(target, {y}).ok());
    q.AddDisjunct(cq);
  }
  auto omq = OntologyMediatedQuery::Create(s, *o, q);
  ASSERT_TRUE(omq.ok());
  auto program = CompileUcqToMddlog(*omq);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  base::Rng rng(GetParam());
  data::RandomInstanceOptions opts;
  opts.num_constants = 3;
  opts.facts_per_relation = 2;
  Instance d = data::RandomInstance(s, opts, rng);
  auto via_program = ddlog::CertainAnswers(*program, d);
  ASSERT_TRUE(via_program.ok());
  dl::BoundedModelOptions bounded;
  bounded.extra_elements = 4;
  auto reference = omq->CertainAnswersBounded(d, bounded);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(via_program->tuples, *reference)
      << "seed " << GetParam() << "\n" << d.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlchUcqRandomTest, ::testing::Range(0, 8));

// --- Thm 3.13: Boolean backward translation ---------------------------------

TEST(BooleanBackwardTest, SimpleMddlogToOmqBooleanGoal) {
  // goal() ← R(x,y) ∧ P(y) becomes ∃R.P ⊑ goal with BAQ ∃x.goal(x)
  // (the paper's Thm 3.13 example).
  Schema s;
  s.AddRelation("R", 2);
  s.AddRelation("A", 1);
  auto program = ddlog::ParseProgram(s, R"(
    P(x) <- A(x).
    goal <- R(x,y), P(y).
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->QueryArity(), 0);
  auto omq = SimpleMddlogToOmq(*program);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  EXPECT_TRUE(omq->BooleanAtomicQueryConcept().has_value());

  base::Rng rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 3;
    opts.facts_per_relation = 3;
    Instance d = data::RandomInstance(s, opts, rng);
    auto via_program = ddlog::EvaluateBoolean(*program, d);
    auto via_omq = CertainAnswersViaCsp(*omq, d);
    ASSERT_TRUE(via_program.ok());
    ASSERT_TRUE(via_omq.ok());
    EXPECT_EQ(*via_program, via_omq->size() == 1) << "trial " << trial;
  }
}

// --- Thm 6.3: rewritability of schema-free OMQs ------------------------------

TEST(SchemaFreeRewritabilityTest, DecisionsMatchFixedSchema) {
  // Thm 6.3: the schema-free OMQ built from a template classifies the
  // same way as the underlying CSP. P_1 (FO) vs K2 (datalog-only).
  {
    auto omq = CspToSchemaFreeOmq(data::DirectedPath("E", 1));
    ASSERT_TRUE(omq.ok());
    auto dl = IsDatalogRewritable(*omq);
    ASSERT_TRUE(dl.ok()) << dl.status().ToString();
    EXPECT_TRUE(*dl);
  }
  {
    auto omq = CspToSchemaFreeOmq(data::Clique("E", 2));
    ASSERT_TRUE(omq.ok());
    auto fo = IsFoRewritable(*omq);
    ASSERT_TRUE(fo.ok()) << fo.status().ToString();
    EXPECT_FALSE(*fo);
  }
}

// --- Transformation cross-validation -----------------------------------------

class TransformPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TransformPropertyTest, TransitivityEliminationPreservesAqAnswers) {
  // Thm 3.11: certq,O = certq,O' for AQs after transitivity elimination.
  auto o = dl::ParseOntology("trans(R)\nsome R.Bad [= Alarm");
  ASSERT_TRUE(o.ok());
  dl::Ontology eliminated = dl::EliminateTransitivity(*o);
  ASSERT_TRUE(eliminated.transitive_roles().empty());
  Schema s;
  s.AddRelation("Bad", 1);
  s.AddRelation("R", 2);
  auto q1 = OntologyMediatedQuery::WithAtomicQuery(s, *o, "Alarm");
  auto q2 = OntologyMediatedQuery::WithAtomicQuery(s, eliminated, "Alarm");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  base::Rng rng(GetParam());
  data::RandomInstanceOptions opts;
  opts.num_constants = 4;
  opts.facts_per_relation = 4;
  Instance d = data::RandomInstance(s, opts, rng);
  auto a1 = CertainAnswersViaCsp(*q1, d);
  auto a2 = CertainAnswersViaCsp(*q2, d);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(*a1, *a2) << "seed " << GetParam() << "\n" << d.ToString();
}

TEST_P(TransformPropertyTest, HierarchyEliminationPreservesAqAnswers) {
  auto o = dl::ParseOntology("rsub(Narrow, Wide)\nsome Wide.A [= Hit");
  ASSERT_TRUE(o.ok());
  dl::Ontology eliminated = dl::EliminateRoleHierarchies(*o);
  ASSERT_TRUE(eliminated.role_inclusions().empty());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("Narrow", 2);
  s.AddRelation("Wide", 2);
  auto q1 = OntologyMediatedQuery::WithAtomicQuery(s, *o, "Hit");
  auto q2 = OntologyMediatedQuery::WithAtomicQuery(s, eliminated, "Hit");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  base::Rng rng(100 + GetParam());
  data::RandomInstanceOptions opts;
  opts.num_constants = 4;
  opts.facts_per_relation = 3;
  Instance d = data::RandomInstance(s, opts, rng);
  auto a1 = CertainAnswersViaCsp(*q1, d);
  auto a2 = CertainAnswersViaCsp(*q2, d);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(*a1, *a2) << "seed " << GetParam() << "\n" << d.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace obda::core
