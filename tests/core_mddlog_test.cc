#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/csp_translation.h"
#include "core/mddlog_translation.h"
#include "core/omq.h"
#include "data/generator.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "dl/parser.h"

namespace obda::core {
namespace {

using data::Instance;
using data::Schema;

// --- Thm 3.4 forward: (ALC,AQ) → unary connected simple MDDlog --------------

TEST(AqToMddlogTest, ProgramClassMatchesThm34) {
  auto o = dl::ParseOntology("A [= B | C\nsome R.C [= D");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "D");
  ASSERT_TRUE(omq.ok());
  auto program = CompileAqToMddlog(*omq);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->IsMonadic());
  EXPECT_TRUE(program->IsSimple());
  EXPECT_TRUE(program->IsConnected());  // no universal role
  EXPECT_TRUE(program->IsUnary());
  EXPECT_TRUE(program->Validate().ok());
}

TEST(AqToMddlogTest, UniversalRoleBreaksConnectednessOnly) {
  auto o = dl::ParseOntology("A [= all U!.Goal");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "Goal");
  ASSERT_TRUE(omq.ok());
  auto program = CompileAqToMddlog(*omq);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->IsMonadic());
  EXPECT_TRUE(program->IsSimple());
  EXPECT_FALSE(program->IsConnected());  // Thm 3.12: U drops connectivity
}

TEST(AqToMddlogTest, AnswersMatchCspCompilation) {
  auto o = dl::ParseOntology(
      "some HasParent.HereditaryPredisposition [= HereditaryPredisposition");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("HereditaryPredisposition", 1);
  s.AddRelation("HasParent", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(
      s, *o, "HereditaryPredisposition");
  ASSERT_TRUE(omq.ok());
  auto program = CompileAqToMddlog(*omq);
  ASSERT_TRUE(program.ok());
  auto d = data::ParseInstance(s, R"(
    HasParent(c, p). HasParent(p, g). HereditaryPredisposition(g).
    HasParent(x, y)
  )");
  ASSERT_TRUE(d.ok());
  auto via_program = ddlog::CertainAnswers(*program, *d);
  ASSERT_TRUE(via_program.ok()) << via_program.status().ToString();
  auto via_csp = CertainAnswersViaCsp(*omq, *d);
  ASSERT_TRUE(via_csp.ok());
  EXPECT_EQ(via_program->tuples, *via_csp);
  EXPECT_EQ(via_program->tuples.size(), 3u);
}

TEST(AqToMddlogTest, BooleanProgram) {
  auto o = dl::ParseOntology("A [= some R.Goal");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithBooleanAtomicQuery(s, *o, "Goal");
  ASSERT_TRUE(omq.ok());
  auto program = CompileAqToMddlog(*omq);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->QueryArity(), 0);
  auto d1 = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d1.ok());
  auto r1 = ddlog::EvaluateBoolean(*program, *d1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  auto d2 = data::ParseInstance(s, "R(a,b)");
  ASSERT_TRUE(d2.ok());
  auto r2 = ddlog::EvaluateBoolean(*program, *d2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

// --- Thm 3.3(2): MDDlog → (ALC,UCQ) -----------------------------------------

TEST(MddlogToOmqTest, TwoColoringRoundTrip) {
  Schema s;
  s.AddRelation("E", 2);
  auto program = ddlog::ParseProgram(s, R"(
    B(x) | W(x) <- adom(x).
    goal <- B(x), B(y), E(x,y).
    goal <- W(x), W(y), E(x,y).
  )");
  ASSERT_TRUE(program.ok());
  auto omq = MddlogToOmq(*program);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();

  // The OMQ and the program agree: goal iff not 2-colorable.
  for (int n : {3, 4, 5, 6}) {
    Instance d = data::DirectedCycle("E", n);
    auto via_program = ddlog::EvaluateBoolean(*program, d);
    ASSERT_TRUE(via_program.ok());
    dl::BoundedModelOptions options;
    options.extra_elements = 1;
    auto via_omq = omq->CertainAnswersBounded(d, options);
    ASSERT_TRUE(via_omq.ok());
    EXPECT_EQ(*via_program, via_omq->size() == 1) << "cycle " << n;
    EXPECT_EQ(*via_program, n % 2 == 1);
  }
}

TEST(MddlogToOmqTest, UnaryProgramRoundTrip) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("Good", 1);
  auto program = ddlog::ParseProgram(s, R"(
    P(x) <- Good(x).
    P(y) <- P(x), E(x,y).
    goal(x) <- P(x).
  )");
  ASSERT_TRUE(program.ok());
  auto omq = MddlogToOmq(*program);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  auto d = data::ParseInstance(s, "Good(a). E(a,b). E(z,a)");
  ASSERT_TRUE(d.ok());
  auto via_program = ddlog::CertainAnswers(*program, *d);
  ASSERT_TRUE(via_program.ok());
  dl::BoundedModelOptions options;
  options.extra_elements = 1;
  auto via_omq = omq->CertainAnswersBounded(*d, options);
  ASSERT_TRUE(via_omq.ok());
  EXPECT_EQ(via_program->tuples, *via_omq);
  EXPECT_EQ(via_omq->size(), 2u);  // a and b
}

TEST(MddlogToOmqTest, SizeIsLinear) {
  // Thm 3.3(2): |q| and |O| are O(|Π|).
  Schema s;
  s.AddRelation("E", 2);
  auto program = ddlog::ParseProgram(s, R"(
    C1(x) | C2(x) | C3(x) <- adom(x).
    goal <- C1(x), C1(y), E(x,y).
    goal <- C2(x), C2(y), E(x,y).
    goal <- C3(x), C3(y), E(x,y).
  )");
  ASSERT_TRUE(program.ok());
  auto omq = MddlogToOmq(*program);
  ASSERT_TRUE(omq.ok());
  // Generous linear bound with a constant factor.
  EXPECT_LE(omq->SymbolSize(), 20 * program->SymbolSize() + 100);
}

// --- Thm 3.4(2): simple connected MDDlog → (ALC,AQ) -------------------------

TEST(SimpleMddlogToOmqTest, PaperExampleRules) {
  Schema s;
  s.AddRelation("R", 2);
  auto program = ddlog::ParseProgram(s, R"(
    goal(x) <- R(x,y).
  )");
  ASSERT_TRUE(program.ok());
  auto omq = SimpleMddlogToOmq(*program);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  // ∃R.⊤ ⊑ goal: elements with an outgoing edge are answers.
  auto d = data::ParseInstance(s, "R(a,b). R(b,c)");
  ASSERT_TRUE(d.ok());
  auto answers = CertainAnswersViaCsp(*omq, *d);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);
}

TEST(SimpleMddlogToOmqTest, DisjunctiveRuleWithNegations) {
  // P1(x) ∨ P2(y) ← R(x,y), P3(x), P4(y) — the paper's showcase rule —
  // embedded in a runnable program.
  Schema s;
  s.AddRelation("R", 2);
  s.AddRelation("A3", 1);
  s.AddRelation("A4", 1);
  auto program = ddlog::ParseProgram(s, R"(
    P3(x) <- A3(x).
    P4(x) <- A4(x).
    P1(x) | P2(y) <- R(x,y), P3(x), P4(y).
    goal(x) <- P1(x).
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(program->IsSimple());
  ASSERT_TRUE(program->IsConnected());
  auto omq = SimpleMddlogToOmq(*program);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();

  base::Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    Instance d(s);
    for (int i = 0; i < 4; ++i) d.AddConstant("c" + std::to_string(i));
    for (int k = 0; k < 4; ++k) {
      d.AddFact(0, {static_cast<data::ConstId>(rng.Below(4)),
                    static_cast<data::ConstId>(rng.Below(4))});
    }
    d.AddFact(1, {static_cast<data::ConstId>(rng.Below(4))});
    d.AddFact(2, {static_cast<data::ConstId>(rng.Below(4))});
    auto via_program = ddlog::CertainAnswers(*program, d);
    ASSERT_TRUE(via_program.ok());
    auto via_omq = CertainAnswersViaCsp(*omq, d);
    ASSERT_TRUE(via_omq.ok());
    EXPECT_EQ(via_program->tuples, *via_omq) << "trial " << trial;
  }
}

TEST(SimpleMddlogToOmqTest, DisconnectedRuleUsesUniversalRole) {
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  auto program = ddlog::ParseProgram(s, R"(
    P(x) <- A(x).
    Q(y) <- B(y).
    goal(x) <- P(x), Q(y).
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_FALSE(program->IsConnected());
  auto omq = SimpleMddlogToOmq(*program);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  EXPECT_TRUE(omq->ontology().Features().universal_role);
  auto d = data::ParseInstance(s, "A(a). B(b)");
  ASSERT_TRUE(d.ok());
  auto answers = CertainAnswersViaCsp(*omq, *d);
  ASSERT_TRUE(answers.ok());
  // Only a is an answer (needs P(a), which needs A(a)).
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(d->ConstantName((*answers)[0][0]), "a");
  auto d2 = data::ParseInstance(s, "A(a). A(b)");
  ASSERT_TRUE(d2.ok());
  auto answers2 = CertainAnswersViaCsp(*omq, *d2);
  ASSERT_TRUE(answers2.ok());
  EXPECT_TRUE(answers2->empty());  // no B-fact anywhere
}

// --- Round trips: OMQ → MDDlog → OMQ agreement ------------------------------

class MddlogRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(MddlogRoundTripTest, AqProgramMatchesBoundedReference) {
  base::Rng rng(GetParam());
  std::vector<std::string> concepts = {"A", "B", "C"};
  std::vector<std::string> roles = {"R"};
  Schema s;
  for (const auto& c : concepts) s.AddRelation(c, 1);
  for (const auto& r : roles) s.AddRelation(r, 2);
  // Random small ALC ontology.
  dl::Ontology o;
  auto name = [&] {
    return dl::Concept::Name(concepts[rng.Below(concepts.size())]);
  };
  for (int i = 0; i < 2; ++i) {
    dl::Concept lhs = name();
    dl::Concept rhs;
    switch (rng.Below(4)) {
      case 0:
        rhs = dl::Concept::Or(name(), name());
        break;
      case 1:
        rhs = dl::Concept::Exists(dl::Role::Named("R"), name());
        break;
      case 2:
        rhs = dl::Concept::Forall(dl::Role::Named("R"), name());
        break;
      default:
        rhs = dl::Concept::Not(name());
        break;
    }
    o.AddInclusion(lhs, rhs);
  }
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, o, "C");
  ASSERT_TRUE(omq.ok());
  auto program = CompileAqToMddlog(*omq);
  ASSERT_TRUE(program.ok());
  for (int trial = 0; trial < 3; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 3;
    opts.facts_per_relation = 2;
    Instance d = data::RandomInstance(s, opts, rng);
    auto via_program = ddlog::CertainAnswers(*program, d);
    ASSERT_TRUE(via_program.ok());
    dl::BoundedModelOptions bounded;
    bounded.extra_elements = 5;
    auto reference = omq->CertainAnswersBounded(d, bounded);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(via_program->tuples, *reference)
        << "seed " << GetParam() << " trial " << trial << "\n"
        << o.ToString() << d.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MddlogRoundTripTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace obda::core
