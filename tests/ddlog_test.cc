#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "base/rng.h"
#include "data/generator.h"
#include "data/homomorphism.h"
#include "data/io.h"
#include "ddlog/datalog.h"
#include "ddlog/eval.h"
#include "ddlog/program.h"

namespace obda::ddlog {
namespace {

using data::ConstId;
using data::Instance;
using data::Schema;

Schema GraphSchema() {
  Schema s;
  s.AddRelation("E", 2);
  return s;
}

TEST(ProgramTest, ParseAndPrint) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, R"(
    P(x) | Q(x) <- adom(x).
    <- P(x), Q(x).
    goal(x) <- P(x), E(x,y), Q(y).
  )");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->HasGoal());
  EXPECT_EQ(p->QueryArity(), 1);
  // adom rules (2 for E) + 3 written rules.
  EXPECT_EQ(p->rules().size(), 5u);
  EXPECT_TRUE(p->Validate().ok());
}

TEST(ProgramTest, ClassPredicates) {
  Schema s = GraphSchema();
  auto monadic = ParseProgram(s, "goal(x) <- E(x,y). P(x) <- E(x,y).");
  ASSERT_TRUE(monadic.ok());
  EXPECT_TRUE(monadic->IsMonadic());
  EXPECT_TRUE(monadic->IsSimple());
  EXPECT_TRUE(monadic->IsConnected());
  EXPECT_TRUE(monadic->IsUnary());
  EXPECT_TRUE(monadic->IsFrontierGuarded());
  EXPECT_TRUE(monadic->IsDisjunctionFree());

  auto binary_idb = ParseProgram(s, "R2(x,y) <- E(x,y). goal(x) <- R2(x,x).");
  ASSERT_TRUE(binary_idb.ok());
  EXPECT_FALSE(binary_idb->IsMonadic());

  auto not_simple = ParseProgram(s, "goal(x) <- E(x,y), E(y,z).");
  ASSERT_TRUE(not_simple.ok());
  EXPECT_FALSE(not_simple->IsSimple());

  auto reflexive_edb = ParseProgram(s, "goal(x) <- E(x,x).");
  ASSERT_TRUE(reflexive_edb.ok());
  EXPECT_FALSE(reflexive_edb->IsSimple());  // repeated var in EDB atom

  auto disconnected = ParseProgram(s, "goal(x) <- E(x,x1), P(y). P(y) <- E(y,z).");
  ASSERT_TRUE(disconnected.ok());
  EXPECT_FALSE(disconnected->IsConnected());

  auto disjunctive = ParseProgram(s, "P(x) | Q(x) <- E(x,y). goal(x) <- P(x).");
  ASSERT_TRUE(disjunctive.ok());
  EXPECT_FALSE(disjunctive->IsDisjunctionFree());
}

TEST(ProgramTest, FrontierGuardedness) {
  Schema s;
  s.AddRelation("R", 3);
  // Head P(x,y) guarded by R(x,y,z).
  auto guarded = ParseProgram(s, "P(x,y) <- R(x,y,z). goal(x) <- P(x,x).");
  ASSERT_TRUE(guarded.ok());
  EXPECT_TRUE(guarded->IsFrontierGuarded());
  // Head P(x,z) not contained in any single body atom.
  auto unguarded =
      ParseProgram(s, "P(x,z) <- R(x,y,y), R(y,z,z). goal(x) <- P(x,x).");
  ASSERT_TRUE(unguarded.ok());
  EXPECT_FALSE(unguarded->IsFrontierGuarded());
}

TEST(ProgramTest, RejectsUnsafeRule) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, "goal(x) <- E(y,z).");
  EXPECT_FALSE(p.ok());
}

TEST(ProgramTest, RejectsEdbHead) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, "E(x,y) <- E(y,x). goal(x) <- E(x,x).");
  EXPECT_FALSE(p.ok());
}

TEST(ProgramTest, RejectsGoalInBody) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, "goal(x) <- E(x,y). P(x) <- goal(x).");
  EXPECT_FALSE(p.ok());
}

// --- Certain answers (disjunctive) ----------------------------------------

TEST(EvalTest, TwoColorabilityComplement) {
  // goal() holds iff the graph is NOT 2-colorable.
  Schema s = GraphSchema();
  auto p = ParseProgram(s, R"(
    B(x) | W(x) <- adom(x).
    goal <- B(x), B(y), E(x,y).
    goal <- W(x), W(y), E(x,y).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();

  Instance odd = data::DirectedCycle("E", 5);
  auto r1 = EvaluateBoolean(*p, odd);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);  // odd cycle not 2-colorable

  Instance even = data::DirectedCycle("E", 6);
  auto r2 = EvaluateBoolean(*p, even);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST(EvalTest, UnaryReachability) {
  // Certain answer x: every model containing Good seeds derives goal(x)
  // along E-paths — plain datalog expressed in DDlog.
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("Good", 1);
  auto p = ParseProgram(s, R"(
    P(x) <- Good(x).
    P(y) <- P(x), E(x,y).
    goal(x) <- P(x).
  )");
  ASSERT_TRUE(p.ok());
  auto d = data::ParseInstance(s, "Good(a). E(a,b). E(b,c). E(z,a)");
  ASSERT_TRUE(d.ok());
  auto answers = CertainAnswers(*p, *d);
  ASSERT_TRUE(answers.ok());
  EXPECT_FALSE(answers->inconsistent);
  // a, b, c are answers; z is not.
  ASSERT_EQ(answers->tuples.size(), 3u);
  std::vector<std::string> names;
  for (const auto& t : answers->tuples) {
    names.push_back(d->ConstantName(t[0]));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(EvalTest, InconsistencyYieldsAllTuples) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, R"(
    <- E(x,y).
    goal(x) <- adom(x).
  )");
  ASSERT_TRUE(p.ok());
  auto d = data::ParseInstance(s, "E(a,b)");
  ASSERT_TRUE(d.ok());
  auto answers = CertainAnswers(*p, *d);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->inconsistent);
  EXPECT_EQ(answers->tuples.size(), 2u);  // both a and b
}

TEST(EvalTest, DisjunctionIsNotChoice) {
  // P(x) | Q(x) <- adom(x), goal(x) <- P(x): goal is NOT certain (a model
  // may choose Q everywhere).
  Schema s = GraphSchema();
  auto p = ParseProgram(s, R"(
    P(x) | Q(x) <- adom(x).
    goal(x) <- P(x).
  )");
  ASSERT_TRUE(p.ok());
  auto d = data::ParseInstance(s, "E(a,b)");
  ASSERT_TRUE(d.ok());
  auto answers = CertainAnswers(*p, *d);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->tuples.empty());
}

TEST(EvalTest, DisjunctionWithBothBranchesDeriving) {
  // If both disjuncts lead to goal, goal is certain.
  Schema s = GraphSchema();
  auto p = ParseProgram(s, R"(
    P(x) | Q(x) <- adom(x).
    goal(x) <- P(x).
    goal(x) <- Q(x).
  )");
  ASSERT_TRUE(p.ok());
  auto d = data::ParseInstance(s, "E(a,b)");
  ASSERT_TRUE(d.ok());
  auto answers = CertainAnswers(*p, *d);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->tuples.size(), 2u);
}

TEST(EvalTest, ProbeBatchSizesAgree) {
  // Certainty per tuple is a property of the ground CNF, so grouping the
  // co-NP probes (probe_batch > 1) must leave the answer set bit-identical
  // to per-tuple probing at every batch size and thread count. Binary goal
  // so batches group along a genuine shared prefix, plus a disjunctive
  // rule so some probes truly need the solver.
  Schema s;
  s.AddRelation("E", 2);
  auto p = ParseProgram(s, R"(
    R(x,x) <- adom(x).
    R(x,y) <- R(x,z), E(z,y).
    B(x) | W(x) <- adom(x).
    goal(x,y) <- R(x,y).
  )");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto d = data::ParseInstance(
      s, "E(a,b). E(b,c). E(c,a). E(d,e). E(e,d). E(c,d)");
  ASSERT_TRUE(d.ok());

  EvalOptions base_options;
  base_options.probe_batch = 1;
  base_options.threads = 1;
  auto want = CertainAnswers(*p, *d, base_options);
  ASSERT_TRUE(want.ok());
  EXPECT_GT(want->tuples.size(), 5u);  // reflexive pairs + reachability

  for (int batch : {2, 3, 64}) {
    for (int threads : {1, 3}) {
      for (bool preprocess : {true, false}) {
        EvalOptions options;
        options.probe_batch = batch;
        options.threads = threads;
        options.preprocess = preprocess;
        auto got = CertainAnswers(*p, *d, options);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got->tuples, want->tuples)
            << "probe_batch=" << batch << " threads=" << threads
            << " preprocess=" << preprocess;
      }
    }
  }
}

TEST(EvalTest, EmptyInstanceBooleanQuery) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, "goal <- E(x,y).");
  ASSERT_TRUE(p.ok());
  Instance empty(s);
  auto r = EvaluateBoolean(*p, empty);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(EvalTest, ZeroAryGoalOnTriangle) {
  // goal iff graph not 3-colorable: K4 yes, K3 no.
  Schema s = GraphSchema();
  auto p = ParseProgram(s, R"(
    C1(x) | C2(x) | C3(x) <- adom(x).
    goal <- C1(x), C1(y), E(x,y).
    goal <- C2(x), C2(y), E(x,y).
    goal <- C3(x), C3(y), E(x,y).
  )");
  ASSERT_TRUE(p.ok());
  auto no = EvaluateBoolean(*p, data::Clique("E", 3));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  auto yes = EvaluateBoolean(*p, data::Clique("E", 4));
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
}

// --- Plain datalog fixpoint ------------------------------------------------

TEST(DatalogTest, TransitiveClosure) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("Good", 1);
  auto p = ParseProgram(s, R"(
    P(x) <- Good(x).
    P(y) <- P(x), E(x,y).
    goal(x) <- P(x).
  )");
  ASSERT_TRUE(p.ok());
  auto d = data::ParseInstance(s, "Good(a). E(a,b). E(b,c). E(z,a)");
  ASSERT_TRUE(d.ok());
  auto r = EvaluateDatalog(*p, *d);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->inconsistent);
  EXPECT_EQ(r->goal_tuples.size(), 3u);
}

TEST(DatalogTest, MatchesDisjunctiveEvaluator) {
  // On disjunction-free programs, the SAT-based evaluator and the fixpoint
  // evaluator must agree.
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("Good", 1);
  auto p = ParseProgram(s, R"(
    P(x) <- Good(x).
    P(y) <- P(x), E(x,y).
    goal(x) <- P(x).
  )");
  ASSERT_TRUE(p.ok());
  base::Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    Instance d(s);
    int n = 5;
    for (int i = 0; i < n; ++i) d.AddConstant("c" + std::to_string(i));
    for (int i = 0; i < 7; ++i) {
      ConstId u = static_cast<ConstId>(rng.Below(n));
      ConstId v = static_cast<ConstId>(rng.Below(n));
      d.AddFact(0, {u, v});
    }
    d.AddFact(1, {static_cast<ConstId>(rng.Below(n))});
    auto fix = EvaluateDatalog(*p, d);
    auto sat = CertainAnswers(*p, d);
    ASSERT_TRUE(fix.ok());
    ASSERT_TRUE(sat.ok());
    EXPECT_EQ(fix->goal_tuples, sat->tuples) << "trial " << trial;
  }
}

TEST(DatalogTest, ConstraintFiringReportsInconsistent) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, "<- E(x,x). goal(x) <- E(x,y).");
  ASSERT_TRUE(p.ok());
  auto d = data::ParseInstance(s, "E(a,a)");
  ASSERT_TRUE(d.ok());
  auto r = EvaluateDatalog(*p, *d);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->inconsistent);
}

TEST(DatalogTest, RejectsDisjunctiveRules) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, "P(x) | Q(x) <- E(x,y). goal(x) <- P(x).");
  ASSERT_TRUE(p.ok());
  auto d = data::ParseInstance(s, "E(a,b)");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(EvaluateDatalog(*p, *d).ok());
}

// --- Property: MDDlog answers are preserved under homomorphisms -----------
// (Paper, proof of Thm 3.10: every MDDlog program is preserved under
// homomorphisms.)

class MddlogHomPreservationTest : public ::testing::TestWithParam<int> {};

TEST_P(MddlogHomPreservationTest, AnswersTransport) {
  Schema s = GraphSchema();
  auto p = ParseProgram(s, R"(
    B(x) | W(x) <- adom(x).
    goal(x) <- B(x), W(x).
    goal(x) <- B(x), B(y), E(x,y), E(y,x).
  )");
  ASSERT_TRUE(p.ok());
  base::Rng rng(GetParam());
  Instance d1 = data::RandomDigraph("E", 4, 5, rng);
  Instance d2 = data::RandomDigraph("E", 5, 9, rng);
  data::HomResult h = data::FindHomomorphism(d1, d2);
  if (!h.found) GTEST_SKIP() << "no homomorphism for this seed";
  auto a1 = CertainAnswers(*p, d1);
  auto a2 = CertainAnswers(*p, d2);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  for (const auto& t : a1->tuples) {
    std::vector<ConstId> image = {h.mapping[t[0]]};
    EXPECT_TRUE(std::find(a2->tuples.begin(), a2->tuples.end(), image) !=
                a2->tuples.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MddlogHomPreservationTest,
                         ::testing::Range(0, 10));

// --- Incremental delta grounding -------------------------------------------

/// A fact over the {E/2, L/1} schema, identified by constant indices into
/// the fixed pool c0..c5 every instance of one test interns up front (so
/// ConstIds mean the same constants in every instance, the ApplyDelta
/// interning contract).
struct IndexedFact {
  int rel = 0;  // 0 = E, 1 = L
  std::vector<int> args;

  auto operator<=>(const IndexedFact&) const = default;
};

class DeltaGroundTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeltaGroundTest, PatchedGroundingMatchesFreshBuild) {
  const int seed = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  constexpr int kNumConstants = 6;

  Schema schema;
  schema.AddRelation("E", 2);
  schema.AddRelation("L", 1);
  // Disjunction + recursion + a constraint, so mutation sequences cross
  // in and out of inconsistency and the inconsistent flag is exercised.
  auto program = ParseProgram(schema, R"(
    P(x) | Q(x) <- adom(x).
    Q(y) <- P(x), E(x,y).
    P(y) <- Q(x), E(x,y).
    <- P(x), Q(x), L(x).
    goal(x) <- Q(x).
  )");
  ASSERT_TRUE(program.ok());

  base::Rng rng(6200 + 10 * seed + threads);
  auto random_fact = [&rng]() {
    IndexedFact f;
    if (rng.Chance(2, 3)) {
      f.rel = 0;
      f.args = {static_cast<int>(rng.Below(kNumConstants)),
                static_cast<int>(rng.Below(kNumConstants))};
    } else {
      f.rel = 1;
      f.args = {static_cast<int>(rng.Below(kNumConstants))};
    }
    return f;
  };
  std::set<IndexedFact> facts;
  for (int i = 0, n = static_cast<int>(rng.Below(8)); i < n; ++i) {
    facts.insert(random_fact());
  }

  // All instances of the run stay alive: the grounding references the one
  // it was last patched against.
  std::vector<std::unique_ptr<Instance>> pinned;
  auto materialize = [&schema, &facts, &pinned]() -> Instance* {
    auto instance = std::make_unique<Instance>(schema);
    for (int c = 0; c < kNumConstants; ++c) {
      instance->AddConstant("c" + std::to_string(c));
    }
    for (const IndexedFact& f : facts) {
      std::vector<std::string> names;
      for (int a : f.args) names.push_back("c" + std::to_string(a));
      OBDA_CHECK(
          instance->AddFactByName(f.rel == 0 ? "E" : "L", names).ok());
    }
    pinned.push_back(std::move(instance));
    return pinned.back().get();
  };

  EvalOptions options;
  options.threads = threads;
  ASSERT_TRUE(options.enable_delta);  // the default under test

  Instance* current = materialize();
  auto built = GroundedQuery::Build(*program, *current, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  GroundedQuery grounded = std::move(built).value();

  for (int batch = 0; batch < 6; ++batch) {
    // A batch of random mutations, netted into one InstanceDelta.
    const std::set<IndexedFact> before = facts;
    const int muts = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < muts; ++m) {
      if (!facts.empty() && rng.Chance(1, 3)) {
        auto it = facts.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.Below(facts.size())));
        facts.erase(it);
      } else {
        facts.insert(random_fact());
      }
    }
    InstanceDelta delta;
    auto to_change = [](const IndexedFact& f) {
      InstanceDelta::FactChange change;
      change.relation = static_cast<data::RelationId>(f.rel);
      for (int a : f.args) {
        change.args.push_back(static_cast<ConstId>(a));
      }
      return change;
    };
    for (const IndexedFact& f : facts) {
      if (before.count(f) == 0) delta.added.push_back(to_change(f));
    }
    for (const IndexedFact& f : before) {
      if (facts.count(f) == 0) delta.removed.push_back(to_change(f));
    }

    current = materialize();
    base::Status applied = grounded.ApplyDelta(*current, delta);
    ASSERT_TRUE(applied.ok()) << applied.ToString();

    auto patched = grounded.ComputeCertainAnswers();
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    auto fresh = CertainAnswers(*program, *current, options);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_EQ(patched->tuples, fresh->tuples)
        << "seed " << seed << " threads " << threads << " batch " << batch;
    EXPECT_EQ(patched->inconsistent, fresh->inconsistent)
        << "seed " << seed << " threads " << threads << " batch " << batch;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DeltaGroundTest,
    ::testing::Combine(::testing::Range(0, 50), ::testing::Values(1, 2, 8)));

TEST(DeltaGroundTest, RequiresBuildTimeOptIn) {
  Schema schema = GraphSchema();
  auto program = ParseProgram(schema, "goal(x) <- E(x,y).");
  ASSERT_TRUE(program.ok());
  Instance instance(schema);
  ASSERT_TRUE(instance.AddFactByName("E", {"a", "b"}).ok());
  EvalOptions options;
  options.enable_delta = false;
  auto grounded = GroundedQuery::Build(*program, instance, options);
  ASSERT_TRUE(grounded.ok());
  base::Status status = grounded->ApplyDelta(instance, InstanceDelta{});
  EXPECT_EQ(status.code(), base::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace obda::ddlog
