#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"

namespace obda::base {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad arity");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, SplitDropsEmpty) {
  auto parts = StrSplit("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripWhitespace("  x y\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(13), 13u);
}

TEST(RngTest, IntInInclusive) {
  Rng rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.IntIn(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace obda::base
