#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "base/arena.h"
#include "base/rng.h"
#include "base/simd.h"
#include "base/status.h"
#include "base/strings.h"

namespace obda::base {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad arity");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, SplitDropsEmpty) {
  auto parts = StrSplit("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripWhitespace("  x y\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(13), 13u);
}

TEST(RngTest, IntInInclusive) {
  Rng rng(2);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.IntIn(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ArenaTest, AlignsAndZeroFillsBitsetRows) {
  Arena arena;
  std::uint64_t* rows = arena.AllocateBitsetRows(37);
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(rows) % Arena::kAlignment, 0u);
  for (std::size_t i = 0; i < 37; ++i) EXPECT_EQ(rows[i], 0u);
  auto* ints = arena.AllocateArray<std::uint32_t>(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ints) % Arena::kAlignment, 0u);
  EXPECT_GT(arena.bytes_allocated(), 0u);
}

TEST(ArenaTest, SurvivesChunkGrowthAndMove) {
  Arena arena;
  std::vector<std::uint32_t*> ptrs;
  for (int i = 0; i < 64; ++i) {
    auto* p = arena.AllocateArray<std::uint32_t>(4096);
    p[0] = static_cast<std::uint32_t>(i);
    p[4095] = static_cast<std::uint32_t>(i) + 7u;
    ptrs.push_back(p);
  }
  Arena moved = std::move(arena);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)][0],
              static_cast<std::uint32_t>(i));
    EXPECT_EQ(ptrs[static_cast<std::size_t>(i)][4095],
              static_cast<std::uint32_t>(i) + 7u);
  }
  auto* after = moved.AllocateArray<std::uint32_t>(8);
  EXPECT_NE(after, nullptr);
}

// Randomized parity battery: every kernel must agree bit-for-bit between
// the scalar table and whatever table is active (AVX2 when compiled in
// and supported; otherwise this degenerates to scalar-vs-scalar, which
// still exercises the dispatch plumbing).
TEST(SimdTest, KernelTablesAgreeOnRandomRows) {
  namespace simd = obda::base::simd;
  const simd::Kernels& scalar = simd::ScalarKernels();
  const simd::Kernels& active = simd::Active();
  Rng rng(20260808);
  for (int round = 0; round < 50; ++round) {
    const std::size_t words =
        simd::PaddedWords(1 + rng.Below(13));  // 4..16 words, padded
    std::vector<std::uint64_t> a(words), b(words);
    for (auto& w : a) w = rng.Next();
    for (auto& w : b) w = rng.Next();
    std::vector<std::uint64_t> d1(words), d2(words);

    EXPECT_EQ(scalar.count(a.data(), words), active.count(a.data(), words));

    std::uint64_t c1 = scalar.and_count(d1.data(), a.data(), b.data(), words);
    std::uint64_t c2 = active.and_count(d2.data(), a.data(), b.data(), words);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(d1, d2);

    c1 = scalar.andnot_count(d1.data(), a.data(), b.data(), words);
    c2 = active.andnot_count(d2.data(), a.data(), b.data(), words);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(d1, d2);

    scalar.or_into(d1.data(), a.data(), words);
    active.or_into(d2.data(), a.data(), words);
    EXPECT_EQ(d1, d2);

    scalar.fill(d1.data(), 0, words);
    active.fill(d2.data(), 0, words);
    EXPECT_EQ(d1, d2);
  }
}

TEST(SimdTest, MrvScanAgreesAndSkipsDecidedEntries) {
  namespace simd = obda::base::simd;
  const simd::Kernels& scalar = simd::ScalarKernels();
  const simd::Kernels& active = simd::Active();
  Rng rng(424242);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.Below(40);
    std::vector<std::uint32_t> sizes(n);
    for (auto& s : sizes) s = rng.Below(6);  // plenty of 0/1 entries
    std::uint32_t b1 = 0, b2 = 0;
    std::uint64_t t1 = 0, t2 = 0;
    std::size_t i1 = 0, i2 = 0;
    const bool f1 = scalar.mrv_scan(sizes.data(), n, &b1, &i1, &t1);
    const bool f2 = active.mrv_scan(sizes.data(), n, &b2, &i2, &t2);
    EXPECT_EQ(f1, f2);
    if (f1) {
      EXPECT_EQ(b1, b2);
      EXPECT_EQ(i1, i2);
      EXPECT_EQ(t1, t2);
      EXPECT_GE(b1, 2u);  // entries < 2 are decided / dead, never picked
      EXPECT_EQ(sizes[i1], b1);
    } else {
      for (std::uint32_t s : sizes) EXPECT_LT(s, 2u);
    }
  }
}

TEST(SimdTest, ForceDispatchSwitchesTables) {
  namespace simd = obda::base::simd;
  simd::ForceDispatch(simd::Dispatch::kScalar);
  EXPECT_STREQ(simd::ActiveName(), "scalar");
  simd::ForceDispatch(simd::Dispatch::kAvx2);
  if (simd::Avx2Compiled() && simd::Avx2Available()) {
    EXPECT_STREQ(simd::ActiveName(), "avx2");
  } else {
    EXPECT_STREQ(simd::ActiveName(), "scalar");  // graceful fallback
  }
  simd::ForceDispatch(simd::Dispatch::kAuto);
}

}  // namespace
}  // namespace obda::base
