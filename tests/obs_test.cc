#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "data/homomorphism.h"
#include "data/instance.h"
#include "obs/metrics.h"

namespace obda {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    obs::MetricsRegistry::Global().ResetAll();
    obs::EnableMetrics(false);
  }
};

TEST_F(ObsTest, CounterBasics) {
  obs::Counter& c = obs::GetCounter("test.basic");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&obs::GetCounter("test.basic"), &c);
  obs::MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, DisabledCountersDoNotMove) {
  obs::Counter& c = obs::GetCounter("test.gated");
  obs::EnableMetrics(false);
  c.Add(100);
  EXPECT_EQ(c.value(), 0u);
  obs::EnableMetrics(true);
  c.Add(100);
  EXPECT_EQ(c.value(), 100u);
}

TEST_F(ObsTest, EnvVarParsing) {
  // OBDA_METRICS unset / "0" / empty => off; anything else => on, with
  // "json" selecting JSON dumps.
  EXPECT_FALSE(obs::internal::ParseEnv(nullptr, nullptr).metrics_enabled);
  EXPECT_FALSE(obs::internal::ParseEnv("", nullptr).metrics_enabled);
  EXPECT_FALSE(obs::internal::ParseEnv("0", nullptr).metrics_enabled);
  auto text = obs::internal::ParseEnv("1", nullptr);
  EXPECT_TRUE(text.metrics_enabled);
  EXPECT_EQ(text.dump_format, "text");
  auto json = obs::internal::ParseEnv("json", nullptr);
  EXPECT_TRUE(json.metrics_enabled);
  EXPECT_EQ(json.dump_format, "json");
  EXPECT_FALSE(obs::internal::ParseEnv(nullptr, nullptr).trace_enabled);
  EXPECT_FALSE(obs::internal::ParseEnv(nullptr, "0").trace_enabled);
  EXPECT_TRUE(obs::internal::ParseEnv(nullptr, "1").trace_enabled);
}

TEST_F(ObsTest, ConcurrentCounterBumps) {
  obs::Counter& c = obs::GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kBumpsPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kBumpsPerThread; ++j) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kBumpsPerThread);
}

TEST_F(ObsTest, ConcurrentRegistration) {
  // Many threads racing to create/resolve the same and distinct names must
  // agree on addresses and lose no bumps.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int j = 0; j < 500; ++j) {
        obs::GetCounter("test.shared").Add();
        obs::GetCounter("test.reg." + std::to_string(t)).Add();
        obs::GetTimer("test.reg_timer").AddNanos(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(obs::GetCounter("test.shared").value(), 8u * 500u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(obs::GetCounter("test.reg." + std::to_string(t)).value(),
              500u);
  }
  EXPECT_EQ(obs::GetTimer("test.reg_timer").count(), 8u * 500u);
}

TEST_F(ObsTest, ScopedTimerAccumulates) {
  obs::TimerStat& t = obs::GetTimer("test.timer");
  { obs::ScopedTimer timer(t); }
  { obs::ScopedTimer timer(t); }
  EXPECT_EQ(t.count(), 2u);
  // Disabled timers record nothing.
  obs::EnableMetrics(false);
  { obs::ScopedTimer timer(t); }
  EXPECT_EQ(t.count(), 2u);
}

TEST_F(ObsTest, JsonEscaping) {
  EXPECT_EQ(obs::EscapeJson("plain"), "plain");
  EXPECT_EQ(obs::EscapeJson("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeJson("line1\nline2\t."), "line1\\nline2\\t.");
  EXPECT_EQ(obs::EscapeJson(std::string("\x01", 1)), "\\u0001");
}

/// Minimal structural JSON scan: balanced braces, no raw control bytes,
/// quotes all escaped. Enough to catch malformed export without a parser.
void ExpectWellFormedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char ch : text) {
    ASSERT_GE(static_cast<unsigned char>(ch), 0x20)
        << "raw control byte in JSON";
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++depth;
    if (ch == '}') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ObsTest, JsonExportWellFormed) {
  obs::GetCounter("test.export \"quoted\"\n").Add(7);
  obs::GetCounter("test.export.plain").Add(1);
  obs::GetTimer("test.export.timer").AddNanos(1'500'000);
  std::string json = obs::MetricsRegistry::Global().ExportJson();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"test.export \\\"quoted\\\"\\n\": 7"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.export.plain\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(ObsTest, SnapshotJsonStableAndSharedWithExport) {
  obs::GetCounter("test.sj.b").Add(2);
  obs::GetCounter("test.sj.a").Add(1);
  obs::GetTimer("test.sj.t").AddNanos(2'000'000);
  const std::string json = obs::MetricsRegistry::Global().SnapshotJson();
  ExpectWellFormedJson(json);
  // Stable key order: sorted by name inside each section.
  const auto a = json.find("\"test.sj.a\": 1");
  const auto b = json.find("\"test.sj.b\": 2");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(json.find("\"test.sj.t\""), std::string::npos);
  // ExportJson is an alias: same snapshot, byte-identical rendering.
  EXPECT_EQ(json, obs::MetricsRegistry::Global().ExportJson());
  // The static per-section formatters agree with the combined form.
  auto snap = obs::MetricsRegistry::Global().Snap();
  const std::string expected =
      "{\"counters\": " + obs::MetricsRegistry::CountersJson(snap) +
      ", \"timers\": " + obs::MetricsRegistry::TimersJson(snap) + "}";
  EXPECT_EQ(json, expected);
}

TEST_F(ObsTest, SnapshotSkipsZeroesAndSorts) {
  obs::GetCounter("test.snap.b").Add(2);
  obs::GetCounter("test.snap.a").Add(1);
  obs::GetCounter("test.snap.zero");
  auto snap = obs::MetricsRegistry::Global().Snap();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "test.snap.a");
  EXPECT_EQ(snap.counters[1].name, "test.snap.b");
}

/// The K3 -> K2 non-3-coloring-ish search: a path that needs real
/// backtracking so the solver counters all move.
TEST_F(ObsTest, HomSolverCountersMove) {
  data::Schema s;
  data::RelationId e = s.AddRelation("E", 2);
  // A: a 5-cycle. B: a 4-cycle (no hom: odd cycle into bipartite graph).
  data::Instance a(s);
  std::vector<data::ConstId> av;
  for (int i = 0; i < 5; ++i) {
    av.push_back(a.AddConstant("a" + std::to_string(i)));
  }
  for (int i = 0; i < 5; ++i) a.AddFact(e, {av[i], av[(i + 1) % 5]});
  data::Instance b(s);
  std::vector<data::ConstId> bv;
  for (int i = 0; i < 4; ++i) {
    bv.push_back(b.AddConstant("b" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) b.AddFact(e, {bv[i], bv[(i + 1) % 4]});

  data::HomResult r = data::FindHomomorphism(a, b);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(obs::GetCounter("hom.calls").value(), 1u);
  EXPECT_EQ(obs::GetCounter("hom.nodes").value(), r.nodes);
  EXPECT_GT(obs::GetCounter("hom.prunes").value(), 0u);
  EXPECT_EQ(obs::GetTimer("hom.search").count(), 1u);

  // A second search that succeeds also counts a solution.
  data::HomResult r2 = data::FindHomomorphism(b, b);
  EXPECT_TRUE(r2.found);
  EXPECT_EQ(obs::GetCounter("hom.calls").value(), 2u);
  EXPECT_EQ(obs::GetCounter("hom.solutions").value(), 1u);
}

TEST_F(ObsTest, BudgetExhaustionPropagatesAndCounts) {
  data::Schema s;
  data::RelationId e = s.AddRelation("E", 2);
  // A: 2x2 complete bipartite-ish pattern; B: larger clique so the search
  // tree exceeds a one-node budget without being unsatisfiable.
  data::Instance a(s);
  std::vector<data::ConstId> av;
  for (int i = 0; i < 4; ++i) {
    av.push_back(a.AddConstant("a" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) a.AddFact(e, {av[i], av[j]});
    }
  }
  data::Instance b(s);
  std::vector<data::ConstId> bv;
  for (int i = 0; i < 6; ++i) {
    bv.push_back(b.AddConstant("b" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) b.AddFact(e, {bv[i], bv[j]});
    }
  }
  data::HomOptions options;
  options.node_budget = 1;
  data::HomResult result;
  data::MarkedInstance ma{a, {}};
  data::MarkedInstance mb{b, {}};
  // With the out-param, exhaustion is reported instead of aborting.
  data::MarkedHomomorphismExists(ma, mb, options, &result);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_GT(result.nodes, 0u);
  EXPECT_EQ(obs::GetCounter("hom.budget_exhausted").value(), 1u);

  data::HomResult count_result;
  std::uint64_t count =
      *data::CountHomomorphisms(a, b, 1'000'000, &count_result);
  EXPECT_GT(count_result.nodes, 0u);
  EXPECT_EQ(count, count_result.solution_count);
  EXPECT_EQ(count, 360u);  // injections of K4 into K6: 6*5*4*3
}

TEST_F(ObsTest, MarkedHomPropagatesWitness) {
  data::Schema s;
  data::RelationId e = s.AddRelation("E", 2);
  data::Instance a(s);
  data::ConstId a0 = a.AddConstant("a0");
  data::ConstId a1 = a.AddConstant("a1");
  a.AddFact(e, {a0, a1});
  data::Instance b(s);
  data::ConstId b0 = b.AddConstant("b0");
  data::ConstId b1 = b.AddConstant("b1");
  b.AddFact(e, {b0, b1});
  data::MarkedInstance ma{a, {a0}};
  data::MarkedInstance mb{b, {b0}};
  data::HomResult result;
  EXPECT_TRUE(data::MarkedHomomorphismExists(ma, mb, data::HomOptions(),
                                             &result));
  EXPECT_TRUE(result.found);
  EXPECT_FALSE(result.budget_exhausted);
  ASSERT_EQ(result.mapping.size(), 2u);
  EXPECT_EQ(result.mapping[a0], b0);
  EXPECT_EQ(result.mapping[a1], b1);
}

}  // namespace
}  // namespace obda
