#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "data/homomorphism.h"
#include "data/instance.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace obda {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EnableMetrics(true);
    obs::MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    obs::MetricsRegistry::Global().ResetAll();
    obs::EnableMetrics(false);
  }
};

TEST_F(ObsTest, CounterBasics) {
  obs::Counter& c = obs::GetCounter("test.basic");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&obs::GetCounter("test.basic"), &c);
  obs::MetricsRegistry::Global().ResetAll();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, DisabledCountersDoNotMove) {
  obs::Counter& c = obs::GetCounter("test.gated");
  obs::EnableMetrics(false);
  c.Add(100);
  EXPECT_EQ(c.value(), 0u);
  obs::EnableMetrics(true);
  c.Add(100);
  EXPECT_EQ(c.value(), 100u);
}

TEST_F(ObsTest, EnvVarParsing) {
  // OBDA_METRICS unset / "0" / empty => off; anything else => on, with
  // "json" selecting JSON dumps.
  EXPECT_FALSE(obs::internal::ParseEnv(nullptr, nullptr).metrics_enabled);
  EXPECT_FALSE(obs::internal::ParseEnv("", nullptr).metrics_enabled);
  EXPECT_FALSE(obs::internal::ParseEnv("0", nullptr).metrics_enabled);
  auto text = obs::internal::ParseEnv("1", nullptr);
  EXPECT_TRUE(text.metrics_enabled);
  EXPECT_EQ(text.dump_format, "text");
  auto json = obs::internal::ParseEnv("json", nullptr);
  EXPECT_TRUE(json.metrics_enabled);
  EXPECT_EQ(json.dump_format, "json");
  EXPECT_FALSE(obs::internal::ParseEnv(nullptr, nullptr).trace_enabled);
  EXPECT_FALSE(obs::internal::ParseEnv(nullptr, "0").trace_enabled);
  EXPECT_TRUE(obs::internal::ParseEnv(nullptr, "1").trace_enabled);
}

TEST_F(ObsTest, ConcurrentCounterBumps) {
  obs::Counter& c = obs::GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kBumpsPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kBumpsPerThread; ++j) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kBumpsPerThread);
}

TEST_F(ObsTest, ConcurrentRegistration) {
  // Many threads racing to create/resolve the same and distinct names must
  // agree on addresses and lose no bumps.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int j = 0; j < 500; ++j) {
        obs::GetCounter("test.shared").Add();
        obs::GetCounter("test.reg." + std::to_string(t)).Add();
        obs::GetTimer("test.reg_timer").AddNanos(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(obs::GetCounter("test.shared").value(), 8u * 500u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(obs::GetCounter("test.reg." + std::to_string(t)).value(),
              500u);
  }
  EXPECT_EQ(obs::GetTimer("test.reg_timer").count(), 8u * 500u);
}

TEST_F(ObsTest, ScopedTimerAccumulates) {
  obs::TimerStat& t = obs::GetTimer("test.timer");
  { obs::ScopedTimer timer(t); }
  { obs::ScopedTimer timer(t); }
  EXPECT_EQ(t.count(), 2u);
  // Disabled timers record nothing.
  obs::EnableMetrics(false);
  { obs::ScopedTimer timer(t); }
  EXPECT_EQ(t.count(), 2u);
}

TEST_F(ObsTest, JsonEscaping) {
  EXPECT_EQ(obs::EscapeJson("plain"), "plain");
  EXPECT_EQ(obs::EscapeJson("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeJson("line1\nline2\t."), "line1\\nline2\\t.");
  EXPECT_EQ(obs::EscapeJson(std::string("\x01", 1)), "\\u0001");
}

/// Minimal structural JSON scan: balanced braces/brackets, no raw control
/// bytes, quotes all escaped. Enough to catch malformed export without a
/// parser.
void ExpectWellFormedJson(const std::string& text) {
  int depth = 0;
  int array_depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char ch : text) {
    ASSERT_GE(static_cast<unsigned char>(ch), 0x20)
        << "raw control byte in JSON";
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++depth;
    if (ch == '}') {
      --depth;
      ASSERT_GE(depth, 0);
    }
    if (ch == '[') ++array_depth;
    if (ch == ']') {
      --array_depth;
      ASSERT_GE(array_depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(array_depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ObsTest, JsonExportWellFormed) {
  obs::GetCounter("test.export \"quoted\"\n").Add(7);
  obs::GetCounter("test.export.plain").Add(1);
  obs::GetTimer("test.export.timer").AddNanos(1'500'000);
  std::string json = obs::MetricsRegistry::Global().ExportJson();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"test.export \\\"quoted\\\"\\n\": 7"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.export.plain\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(ObsTest, SnapshotJsonStableAndSharedWithExport) {
  obs::GetCounter("test.sj.b").Add(2);
  obs::GetCounter("test.sj.a").Add(1);
  obs::GetTimer("test.sj.t").AddNanos(2'000'000);
  const std::string json = obs::MetricsRegistry::Global().SnapshotJson();
  ExpectWellFormedJson(json);
  // Stable key order: sorted by name inside each section.
  const auto a = json.find("\"test.sj.a\": 1");
  const auto b = json.find("\"test.sj.b\": 2");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(json.find("\"test.sj.t\""), std::string::npos);
  // ExportJson is an alias: same snapshot, byte-identical rendering.
  EXPECT_EQ(json, obs::MetricsRegistry::Global().ExportJson());
  // The static per-section formatters agree with the combined form.
  auto snap = obs::MetricsRegistry::Global().Snap();
  const std::string expected =
      "{\"counters\": " + obs::MetricsRegistry::CountersJson(snap) +
      ", \"timers\": " + obs::MetricsRegistry::TimersJson(snap) +
      ", \"histograms\": " + obs::MetricsRegistry::HistogramsJson(snap) +
      "}";
  EXPECT_EQ(json, expected);
}

TEST_F(ObsTest, SnapshotKeepsZeroesAndSorts) {
  obs::GetCounter("test.snap.b").Add(2);
  obs::GetCounter("test.snap.a").Add(1);
  obs::GetCounter("test.snap.zero");
  obs::GetHistogram("test.snap.hist_zero");
  auto snap = obs::MetricsRegistry::Global().Snap();
  // Zero-valued entries stay in the snapshot: once a name is registered
  // it never vanishes, so consecutive snapshots share a key set. (Other
  // tests register names in the same process-wide registry; filter to
  // this test's prefix.)
  std::vector<obs::MetricsRegistry::CounterSnapshot> mine;
  for (const auto& c : snap.counters) {
    if (c.name.rfind("test.snap.", 0) == 0) mine.push_back(c);
  }
  ASSERT_EQ(mine.size(), 3u);
  EXPECT_EQ(mine[0].name, "test.snap.a");
  EXPECT_EQ(mine[0].value, 1u);
  EXPECT_EQ(mine[1].name, "test.snap.b");
  EXPECT_EQ(mine[1].value, 2u);
  EXPECT_EQ(mine[2].name, "test.snap.zero");
  EXPECT_EQ(mine[2].value, 0u);
  // Same for histograms: the empty one is present with count 0.
  bool found_hist = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "test.snap.hist_zero") {
      found_hist = true;
      EXPECT_EQ(h.data.count, 0u);
    }
  }
  EXPECT_TRUE(found_hist);
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketBoundaries) {
  using H = obs::Histogram;
  EXPECT_EQ(H::BucketOf(0), 0);
  EXPECT_EQ(H::BucketOf(1), 1);
  EXPECT_EQ(H::BucketOf(2), 2);
  EXPECT_EQ(H::BucketOf(3), 2);
  EXPECT_EQ(H::BucketOf(4), 3);
  EXPECT_EQ(H::BucketOf(7), 3);
  EXPECT_EQ(H::BucketOf(8), 4);
  EXPECT_EQ(H::BucketOf(std::numeric_limits<std::uint64_t>::max()), 64);
  EXPECT_EQ(H::BucketLowerBound(0), 0u);
  EXPECT_EQ(H::BucketLowerBound(1), 1u);
  EXPECT_EQ(H::BucketLowerBound(4), 8u);
  EXPECT_EQ(H::BucketLowerBound(64), std::uint64_t{1} << 63);
  // Every value falls inside its bucket's [lower, next-lower) range.
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
        std::uint64_t{3}, std::uint64_t{100}, std::uint64_t{1'000'000}}) {
    const int b = H::BucketOf(v);
    EXPECT_GE(v, H::BucketLowerBound(b)) << v;
    if (b < H::kBuckets - 1) {
      EXPECT_LT(v, H::BucketLowerBound(b + 1)) << v;
    }
  }
}

TEST_F(ObsTest, HistogramRecordAndSnap) {
  obs::Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(5);
  h.Record(1'000);
  auto snap = h.Snap();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.total, 1'011u);
  EXPECT_EQ(snap.buckets[0], 1u);                             // the zero
  EXPECT_EQ(snap.buckets[obs::Histogram::BucketOf(5)], 2u);   // the fives
  EXPECT_EQ(snap.buckets[obs::Histogram::BucketOf(1'000)], 1u);
  EXPECT_DOUBLE_EQ(snap.mean(), 1'011.0 / 5.0);
  // Disabled recording is a no-op.
  obs::EnableMetrics(false);
  h.Record(7);
  EXPECT_EQ(h.Snap().count, 5u);
  obs::EnableMetrics(true);
  h.Reset();
  EXPECT_EQ(h.Snap().count, 0u);
}

TEST_F(ObsTest, HistogramQuantilesWithinOneBucketOfExact) {
  // A deterministic pseudo-random sample; the histogram's interpolated
  // quantile must land within one log2 bucket of the exact sorted-sample
  // quantile — the accuracy contract E23's cross-check also asserts.
  obs::Histogram h;
  std::vector<std::uint64_t> samples;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 2'000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t v = (state >> 33) % 5'000'000;
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  auto snap = h.Snap();
  ASSERT_EQ(snap.count, samples.size());
  for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double estimate = snap.Quantile(q);
    const std::size_t rank = static_cast<std::size_t>(std::min(
        static_cast<double>(samples.size()) - 1,
        std::max(0.0, std::ceil(q * static_cast<double>(samples.size())) -
                          1)));
    const std::uint64_t exact = samples[rank];
    const int est_bucket =
        obs::Histogram::BucketOf(static_cast<std::uint64_t>(estimate));
    const int exact_bucket = obs::Histogram::BucketOf(exact);
    EXPECT_LE(std::abs(est_bucket - exact_bucket), 1)
        << "q=" << q << " estimate=" << estimate << " exact=" << exact;
  }
  // Quantiles are monotone in q.
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.9));
  EXPECT_LE(snap.Quantile(0.9), snap.Quantile(0.99));
}

TEST_F(ObsTest, HistogramConcurrentRecordingLosesNothing) {
  obs::Histogram& h = obs::GetHistogram("test.hist.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int j = 0; j < kPerThread; ++j) {
        h.Record(static_cast<std::uint64_t>(j) + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto snap = h.Snap();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Sum 1..kPerThread per thread.
  EXPECT_EQ(snap.total, static_cast<std::uint64_t>(kThreads) * kPerThread *
                            (kPerThread + 1) / 2);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : snap.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, snap.count);
}

TEST_F(ObsTest, HistogramSnapshotMerge) {
  obs::Histogram a;
  obs::Histogram b;
  a.Record(1);
  a.Record(100);
  b.Record(100);
  b.Record(10'000);
  auto merged = a.Snap();
  merged.Merge(b.Snap());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.total, 10'201u);
  EXPECT_EQ(merged.buckets[obs::Histogram::BucketOf(100)], 2u);
}

// ---------------------------------------------------------------------------
// Enable-flip regressions: spans and timers straddling a switch flip.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ScopedTimerStraddlingDisableRecordsNothing) {
  obs::TimerStat& t = obs::GetTimer("test.straddle");
  obs::Histogram& h = obs::GetHistogram("test.straddle_hist");
  {
    obs::ScopedTimer timer(t, &h);
    obs::EnableMetrics(false);
  }
  // The flip-off happened mid-span: nothing may count into the disabled
  // registry (the pre-fix behavior recorded the timer sample anyway).
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(h.Snap().count, 0u);
  // The reverse straddle (off at construction, on at destruction) also
  // records nothing: no start timestamp was ever taken.
  {
    obs::ScopedTimer timer(t, &h);
    obs::EnableMetrics(true);
  }
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(h.Snap().count, 0u);
  // A fully-enabled span records into both sinks.
  { obs::ScopedTimer timer(t, &h); }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_EQ(h.Snap().count, 1u);
}

TEST_F(ObsTest, TraceSpanDepthBalancedAcrossEnableFlip) {
  obs::EnableTracing(true);
  EXPECT_EQ(obs::internal::CurrentTraceDepth(), 0);
  {
    obs::TraceSpan outer("test.outer");
    EXPECT_EQ(obs::internal::CurrentTraceDepth(), 1);
    obs::EnableTracing(false);
    {
      // Opened while tracing is off: neither bumps nor drops the depth.
      obs::TraceSpan inner("test.inner");
      EXPECT_EQ(obs::internal::CurrentTraceDepth(), 1);
    }
    EXPECT_EQ(obs::internal::CurrentTraceDepth(), 1);
  }
  // The outer span printed its enter, so it still prints its exit and
  // restores the depth even though tracing flipped off mid-span.
  EXPECT_EQ(obs::internal::CurrentTraceDepth(), 0);
  obs::EnableTracing(false);
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, FlightRecorderCapturesSpansWithRequestIds) {
  obs::FlightRecorder::Enable(true, 256);
  obs::FlightRecorder::Reset();
  EXPECT_EQ(obs::CurrentRequestId(), 0u);
  {
    obs::RequestScope scope(42);
    EXPECT_EQ(obs::CurrentRequestId(), 42u);
    {
      obs::RequestScope nested(43);
      EXPECT_EQ(obs::CurrentRequestId(), 43u);
    }
    EXPECT_EQ(obs::CurrentRequestId(), 42u);
    obs::TraceSpan span("test.recorded");
  }
  EXPECT_EQ(obs::CurrentRequestId(), 0u);
  auto events = obs::FlightRecorder::Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].begin);
  EXPECT_FALSE(events[1].begin);
  EXPECT_STREQ(events[0].name, "test.recorded");
  EXPECT_EQ(events[0].request_id, 42u);
  EXPECT_EQ(events[1].request_id, 42u);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  obs::FlightRecorder::Enable(false, 256);
}

TEST_F(ObsTest, FlightRecorderWinsOverStderrTracing) {
  // With the recorder on, TraceSpan routes to the ring and leaves the
  // stderr indentation depth alone (pooled output would interleave).
  obs::FlightRecorder::Enable(true, 128);
  obs::FlightRecorder::Reset();
  obs::EnableTracing(true);
  {
    obs::TraceSpan span("test.routed");
    EXPECT_EQ(obs::internal::CurrentTraceDepth(), 0);
  }
  obs::EnableTracing(false);
  auto events = obs::FlightRecorder::Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.routed");
  obs::FlightRecorder::Enable(false, 128);
}

TEST_F(ObsTest, FlightRecorderBalancedAcrossEnableFlip) {
  // Disabling mid-span must not leave a dangling begin: the span saw its
  // begin recorded, so the end records unconditionally.
  obs::FlightRecorder::Enable(true, 64);
  obs::FlightRecorder::Reset();
  {
    obs::TraceSpan span("test.flip");
    obs::FlightRecorder::Enable(false, 64);
  }
  auto events = obs::FlightRecorder::Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[0].begin);
  EXPECT_FALSE(events[1].begin);
  // The reverse flip (off at begin, on at end) records neither boundary.
  obs::FlightRecorder::Reset();
  {
    obs::TraceSpan span("test.flip2");
    obs::FlightRecorder::Enable(true, 64);
  }
  EXPECT_EQ(obs::FlightRecorder::Events().size(), 0u);
  obs::FlightRecorder::Enable(false, 64);
}

TEST_F(ObsTest, FlightRecorderRingWraparound) {
  // A capacity-4 ring fed 20 events keeps only the 4 newest.
  obs::FlightRecorder::Enable(true, 4);
  obs::FlightRecorder::Reset();
  for (int i = 0; i < 10; ++i) {
    if (obs::FlightRecorder::RecordBegin("test.wrap")) {
      obs::FlightRecorder::RecordEnd("test.wrap");
    }
  }
  auto events = obs::FlightRecorder::Events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
  // The stream ends on the final RecordEnd.
  EXPECT_FALSE(events.back().begin);
  obs::FlightRecorder::Enable(false, 4);
}

TEST_F(ObsTest, ChromeTraceDumpWellFormed) {
  obs::FlightRecorder::Enable(true, 512);
  obs::FlightRecorder::Reset();
  {
    obs::RequestScope scope(7);
    obs::TraceSpan outer("test.dump.outer");
    obs::TraceSpan inner("test.dump.inner");
  }
  const std::string json = obs::FlightRecorder::DumpChromeTrace();
  ExpectWellFormedJson(json);
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"name\": \"test.dump.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.dump.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\": 7"), std::string::npos);
  obs::FlightRecorder::Enable(false, 512);
}

TEST_F(ObsTest, FormatRequestTreeNestsAndMarksOpenSpans) {
  obs::FlightRecorder::Enable(true, 1024);
  obs::FlightRecorder::Reset();
  {
    obs::RequestScope scope(11);
    obs::TraceSpan outer("test.tree.outer");
    { obs::TraceSpan inner("test.tree.inner"); }
  }
  {
    obs::RequestScope scope(11);
    // A begin the ring never sees closed: renders as "(open)".
    obs::FlightRecorder::RecordBegin("test.tree.hung");
  }
  const std::string tree = obs::FlightRecorder::FormatRequestTree(11);
  EXPECT_NE(tree.find("[tid "), std::string::npos);
  EXPECT_NE(tree.find("  test.tree.outer ("), std::string::npos);
  EXPECT_NE(tree.find("    test.tree.inner ("), std::string::npos);
  EXPECT_NE(tree.find("test.tree.hung (open)"), std::string::npos);
  // Other requests' spans don't leak in; unknown requests are empty.
  EXPECT_EQ(tree.find("test.dump"), std::string::npos);
  EXPECT_EQ(obs::FlightRecorder::FormatRequestTree(999), "");
  // Close the hung begin so later tests see balanced rings.
  obs::FlightRecorder::RecordEnd("test.tree.hung");
  obs::FlightRecorder::Enable(false, 1024);
}

/// The K3 -> K2 non-3-coloring-ish search: a path that needs real
/// backtracking so the solver counters all move.
TEST_F(ObsTest, HomSolverCountersMove) {
  data::Schema s;
  data::RelationId e = s.AddRelation("E", 2);
  // A: a 5-cycle. B: a 4-cycle (no hom: odd cycle into bipartite graph).
  data::Instance a(s);
  std::vector<data::ConstId> av;
  for (int i = 0; i < 5; ++i) {
    av.push_back(a.AddConstant("a" + std::to_string(i)));
  }
  for (int i = 0; i < 5; ++i) a.AddFact(e, {av[i], av[(i + 1) % 5]});
  data::Instance b(s);
  std::vector<data::ConstId> bv;
  for (int i = 0; i < 4; ++i) {
    bv.push_back(b.AddConstant("b" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) b.AddFact(e, {bv[i], bv[(i + 1) % 4]});

  data::HomResult r = data::FindHomomorphism(a, b);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(obs::GetCounter("hom.calls").value(), 1u);
  EXPECT_EQ(obs::GetCounter("hom.nodes").value(), r.nodes);
  EXPECT_GT(obs::GetCounter("hom.prunes").value(), 0u);
  EXPECT_EQ(obs::GetTimer("hom.search").count(), 1u);
  // The search latency histogram sees the same samples as the timer.
  EXPECT_EQ(obs::GetHistogram("hom.search").Snap().count, 1u);

  // A second search that succeeds also counts a solution.
  data::HomResult r2 = data::FindHomomorphism(b, b);
  EXPECT_TRUE(r2.found);
  EXPECT_EQ(obs::GetCounter("hom.calls").value(), 2u);
  EXPECT_EQ(obs::GetCounter("hom.solutions").value(), 1u);
}

TEST_F(ObsTest, BudgetExhaustionPropagatesAndCounts) {
  data::Schema s;
  data::RelationId e = s.AddRelation("E", 2);
  // A: 2x2 complete bipartite-ish pattern; B: larger clique so the search
  // tree exceeds a one-node budget without being unsatisfiable.
  data::Instance a(s);
  std::vector<data::ConstId> av;
  for (int i = 0; i < 4; ++i) {
    av.push_back(a.AddConstant("a" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) a.AddFact(e, {av[i], av[j]});
    }
  }
  data::Instance b(s);
  std::vector<data::ConstId> bv;
  for (int i = 0; i < 6; ++i) {
    bv.push_back(b.AddConstant("b" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) b.AddFact(e, {bv[i], bv[j]});
    }
  }
  data::HomOptions options;
  options.node_budget = 1;
  data::HomResult result;
  data::MarkedInstance ma{a, {}};
  data::MarkedInstance mb{b, {}};
  // With the out-param, exhaustion is reported instead of aborting.
  data::MarkedHomomorphismExists(ma, mb, options, &result);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_GT(result.nodes, 0u);
  EXPECT_EQ(obs::GetCounter("hom.budget_exhausted").value(), 1u);

  data::HomResult count_result;
  std::uint64_t count =
      *data::CountHomomorphisms(a, b, 1'000'000, &count_result);
  EXPECT_GT(count_result.nodes, 0u);
  EXPECT_EQ(count, count_result.solution_count);
  EXPECT_EQ(count, 360u);  // injections of K4 into K6: 6*5*4*3
}

TEST_F(ObsTest, MarkedHomPropagatesWitness) {
  data::Schema s;
  data::RelationId e = s.AddRelation("E", 2);
  data::Instance a(s);
  data::ConstId a0 = a.AddConstant("a0");
  data::ConstId a1 = a.AddConstant("a1");
  a.AddFact(e, {a0, a1});
  data::Instance b(s);
  data::ConstId b0 = b.AddConstant("b0");
  data::ConstId b1 = b.AddConstant("b1");
  b.AddFact(e, {b0, b1});
  data::MarkedInstance ma{a, {a0}};
  data::MarkedInstance mb{b, {b0}};
  data::HomResult result;
  EXPECT_TRUE(data::MarkedHomomorphismExists(ma, mb, data::HomOptions(),
                                             &result));
  EXPECT_TRUE(result.found);
  EXPECT_FALSE(result.budget_exhausted);
  ASSERT_EQ(result.mapping.size(), 2u);
  EXPECT_EQ(result.mapping[a0], b0);
  EXPECT_EQ(result.mapping[a1], b1);
}

}  // namespace
}  // namespace obda
