#include <gtest/gtest.h>

#include "base/rng.h"
#include "data/generator.h"
#include "data/homomorphism.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "mmsnp/formula.h"
#include "mmsnp/translate.h"

namespace obda::mmsnp {
namespace {

using data::Instance;
using data::Schema;

Schema GraphSchema() {
  Schema s;
  s.AddRelation("E", 2);
  return s;
}

/// The MMSNP sentence for 2-colorability: ∃B,W ∀x,y:
///   ⊤ → B(x) ∨ W(x);  B(x)∧B(y)∧E(x,y) → ⊥;  W(x)∧W(y)∧E(x,y) → ⊥.
/// (The "⊤ →" implication is expressed with a body E-atom padding per
/// the standard normalization: here we use B/W totality via an
/// adom-style pair of implications with input atoms.)
Formula TwoColoring() {
  Formula f(GraphSchema(), 0);
  SoVarId b = f.AddSoVar("B", 1);
  SoVarId w = f.AddSoVar("W", 1);
  auto so = [](SoVarId x, std::vector<int> vars) {
    Atom a;
    a.kind = AtomKind::kSecondOrder;
    a.pred = x;
    a.vars = std::move(vars);
    return a;
  };
  auto edge = [](int x, int y) {
    Atom a;
    a.kind = AtomKind::kInput;
    a.pred = 0;
    a.vars = {x, y};
    return a;
  };
  // Totality via edges: E(x,y) → B(x) ∨ W(x)  and  E(x,y) → B(y) ∨ W(y).
  {
    Implication imp;
    imp.body = {edge(0, 1)};
    imp.head = {so(b, {0}), so(w, {0})};
    OBDA_CHECK(f.AddImplication(imp).ok());
  }
  {
    Implication imp;
    imp.body = {edge(0, 1)};
    imp.head = {so(b, {1}), so(w, {1})};
    OBDA_CHECK(f.AddImplication(imp).ok());
  }
  for (SoVarId color : {b, w}) {
    Implication imp;
    imp.body = {so(color, {0}), so(color, {1}), edge(0, 1)};
    OBDA_CHECK(f.AddImplication(imp).ok());
  }
  return f;
}

TEST(FormulaTest, TwoColoringSentence) {
  Formula f = TwoColoring();
  EXPECT_TRUE(f.IsMonadic());
  EXPECT_TRUE(f.IsGuarded());
  auto odd = f.Satisfied(data::DirectedCycle("E", 5), {});
  ASSERT_TRUE(odd.ok());
  EXPECT_FALSE(*odd);
  auto even = f.Satisfied(data::DirectedCycle("E", 6), {});
  ASSERT_TRUE(even.ok());
  EXPECT_TRUE(*even);
  // coMMSNP query: true exactly on non-2-colorable instances.
  auto co = f.EvaluateCo(data::DirectedCycle("E", 5));
  ASSERT_TRUE(co.ok());
  EXPECT_EQ(co->size(), 1u);  // Boolean true
}

TEST(FormulaTest, EmptyInstanceConvention) {
  Formula f = TwoColoring();
  Instance empty(GraphSchema());
  auto sat = f.Satisfied(empty, {});
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

TEST(FormulaTest, FreeVariablesAndEquality) {
  // Φ(y1, y2) with implication E(y1,y2) ∧ y1 = y2 → ⊥: the coMMSNP query
  // returns pairs (a, a) with a self-loop.
  Formula f(GraphSchema(), 2);
  Implication imp;
  Atom e;
  e.kind = AtomKind::kInput;
  e.pred = 0;
  e.vars = {0, 1};
  Atom eq;
  eq.kind = AtomKind::kEquality;
  eq.vars = {0, 1};
  imp.body = {e, eq};
  ASSERT_TRUE(f.AddImplication(imp).ok());
  auto d = data::ParseInstanceAuto("E(a,a). E(a,b)");
  ASSERT_TRUE(d.ok());
  auto co = f.EvaluateCo(*d);
  ASSERT_TRUE(co.ok());
  // Only (a,a) violates the sentence.
  ASSERT_EQ(co->size(), 1u);
  EXPECT_EQ((*co)[0][0], (*co)[0][1]);
}

// --- Prop 4.1: MMSNP ↔ MDDlog -----------------------------------------------

TEST(TranslateTest, TwoColoringToMddlog) {
  Formula f = TwoColoring();
  auto program = ToDdlog(f);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->IsMonadic());
  for (int n : {3, 4, 5, 6}) {
    Instance cycle = data::DirectedCycle("E", n);
    auto via_program = ddlog::EvaluateBoolean(*program, cycle);
    auto via_formula = f.EvaluateCo(cycle);
    ASSERT_TRUE(via_program.ok());
    ASSERT_TRUE(via_formula.ok());
    EXPECT_EQ(*via_program, via_formula->size() == 1) << "cycle " << n;
  }
}

TEST(TranslateTest, RoundTripProgramFormulaProgram) {
  Schema s = GraphSchema();
  auto program = ddlog::ParseProgram(s, R"(
    B(x) | W(x) <- adom(x).
    goal <- B(x), B(y), E(x,y).
    goal <- W(x), W(y), E(x,y).
  )");
  ASSERT_TRUE(program.ok());
  auto formula = FromDdlog(*program);
  ASSERT_TRUE(formula.ok()) << formula.status().ToString();
  EXPECT_TRUE(formula->IsMonadic());
  auto back = ToDdlog(*formula);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  base::Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    Instance d = data::RandomDigraph("E", 4, 5, rng);
    auto v1 = ddlog::EvaluateBoolean(*program, d);
    auto v2 = formula->EvaluateCo(d);
    auto v3 = ddlog::EvaluateBoolean(*back, d);
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());
    ASSERT_TRUE(v3.ok());
    EXPECT_EQ(*v1, v2->size() == 1) << "trial " << trial;
    EXPECT_EQ(*v1, *v3) << "trial " << trial;
  }
}

TEST(TranslateTest, UnaryProgramWithRepeatedHeadVars) {
  // goal(x,x) ← P(x): the conversion must introduce an equality atom.
  Schema s;
  s.AddRelation("P", 1);
  auto program = ddlog::ParseProgram(s, "goal(x,x) <- P(x).");
  ASSERT_TRUE(program.ok());
  auto formula = FromDdlog(*program);
  ASSERT_TRUE(formula.ok());
  auto d = data::ParseInstanceAuto("P(a). P(b)");
  ASSERT_TRUE(d.ok());
  auto answers = formula->EvaluateCo(d->ReductTo(s));
  ASSERT_TRUE(answers.ok());
  // Answers are (a,a) and (b,b) only.
  ASSERT_EQ(answers->size(), 2u);
  for (const auto& t : *answers) EXPECT_EQ(t[0], t[1]);
  // And back to a program (Prop 4.1 the other way).
  auto back = ToDdlog(*formula);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto via_back = ddlog::CertainAnswers(*back, d->ReductTo(s));
  ASSERT_TRUE(via_back.ok());
  EXPECT_EQ(via_back->tuples, *answers);
}

TEST(TranslateTest, GmsnpGuardedBinarySoVar) {
  // GMSNP with a binary SO variable X: E(x,y) → X(x,y);
  // X(x,y) ∧ E(y,x) → ⊥ — Boolean query: true iff a 2-cycle exists.
  Formula f(GraphSchema(), 0);
  SoVarId x = f.AddSoVar("X", 2);
  {
    Implication imp;
    Atom e;
    e.kind = AtomKind::kInput;
    e.pred = 0;
    e.vars = {0, 1};
    Atom head;
    head.kind = AtomKind::kSecondOrder;
    head.pred = x;
    head.vars = {0, 1};
    imp.body = {e};
    imp.head = {head};
    ASSERT_TRUE(f.AddImplication(imp).ok());
  }
  {
    Implication imp;
    Atom so;
    so.kind = AtomKind::kSecondOrder;
    so.pred = x;
    so.vars = {0, 1};
    Atom e;
    e.kind = AtomKind::kInput;
    e.pred = 0;
    e.vars = {1, 0};
    imp.body = {so, e};
    ASSERT_TRUE(f.AddImplication(imp).ok());
  }
  EXPECT_FALSE(f.IsMonadic());
  EXPECT_TRUE(f.IsGuarded());
  auto program = ToDdlog(f);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->IsFrontierGuarded());
  for (int n : {2, 3}) {
    Instance cycle = data::DirectedCycle("E", n);
    auto via_program = ddlog::EvaluateBoolean(*program, cycle);
    auto via_formula = f.EvaluateCo(cycle);
    ASSERT_TRUE(via_program.ok());
    ASSERT_TRUE(via_formula.ok());
    EXPECT_EQ(*via_program, via_formula->size() == 1) << "cycle " << n;
  }
}

// --- Prop 5.2: sentences from formulas ---------------------------------------

TEST(TranslateTest, SentenceWithMarkers) {
  // Unary query: E(y1, x) → ⊥-style: answers are elements with an
  // outgoing edge... use: Φ(y1): E(y1, z) → ⊥.
  Formula f(GraphSchema(), 1);
  Implication imp;
  Atom e;
  e.kind = AtomKind::kInput;
  e.pred = 0;
  e.vars = {0, 1};
  imp.body = {e};
  ASSERT_TRUE(f.AddImplication(imp).ok());

  Formula sentence = SentenceWithMarkers(f);
  EXPECT_EQ(sentence.num_free_vars(), 0);

  auto d = data::ParseInstance(GraphSchema(), "E(a,b)");
  ASSERT_TRUE(d.ok());
  auto answers = f.EvaluateCo(*d);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  // Cross-check each candidate against the marked sentence.
  for (const std::string& name : {"a", "b"}) {
    data::Instance marked = d->ReductTo(sentence.schema());
    auto mark = sentence.schema().FindRelation("Mark1");
    ASSERT_TRUE(mark.has_value());
    marked.AddFact(*mark, {*marked.FindConstant(name)});
    auto co = sentence.EvaluateCo(marked);
    ASSERT_TRUE(co.ok());
    bool is_answer = !co->empty();
    bool expected = d->ConstantName((*answers)[0][0]) == name;
    EXPECT_EQ(is_answer, expected) << name;
  }
}

// --- Prop 3.2: FPP ↔ Boolean MDDlog -------------------------------------------

ForbiddenPatternProblem TwoColoringFpp() {
  ForbiddenPatternProblem fpp;
  fpp.schema = GraphSchema();
  fpp.colors = {"Red", "Blue"};
  data::Schema colored = fpp.ColoredSchema();
  for (const char* color : {"Red", "Blue"}) {
    data::Instance pattern(colored);
    data::ConstId a = pattern.AddConstant("a");
    data::ConstId b = pattern.AddConstant("b");
    pattern.AddFact(*colored.FindRelation("E"), {a, b});
    pattern.AddFact(*colored.FindRelation(color), {a});
    pattern.AddFact(*colored.FindRelation(color), {b});
    fpp.patterns.push_back(std::move(pattern));
  }
  return fpp;
}

TEST(FppTest, TwoColoringForbiddenPatterns) {
  ForbiddenPatternProblem fpp = TwoColoringFpp();
  auto odd = fpp.CoQuery(data::DirectedCycle("E", 5));
  ASSERT_TRUE(odd.ok());
  EXPECT_TRUE(*odd);
  auto even = fpp.CoQuery(data::DirectedCycle("E", 6));
  ASSERT_TRUE(even.ok());
  EXPECT_FALSE(*even);
}

TEST(FppTest, FppToMddlogAgrees) {
  ForbiddenPatternProblem fpp = TwoColoringFpp();
  auto program = FppToMddlog(fpp);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->IsMonadic());
  base::Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    Instance d = data::RandomDigraph("E", 4, 5, rng);
    auto via_fpp = fpp.CoQuery(d);
    auto via_program = ddlog::EvaluateBoolean(*program, d);
    ASSERT_TRUE(via_fpp.ok());
    ASSERT_TRUE(via_program.ok());
    EXPECT_EQ(*via_fpp, *via_program) << "trial " << trial;
  }
}

TEST(FppTest, MddlogToFppAgrees) {
  Schema s = GraphSchema();
  auto program = ddlog::ParseProgram(s, R"(
    P(x) | Q(x) <- adom(x).
    goal <- P(x), E(x,y), P(y).
  )");
  ASSERT_TRUE(program.ok());
  auto fpp = MddlogToFpp(*program);
  ASSERT_TRUE(fpp.ok()) << fpp.status().ToString();
  base::Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    Instance d = data::RandomDigraph("E", 3, 4, rng);
    auto via_fpp = fpp->CoQuery(d);
    auto via_program = ddlog::EvaluateBoolean(*program, d);
    ASSERT_TRUE(via_fpp.ok()) << via_fpp.status().ToString();
    ASSERT_TRUE(via_program.ok());
    EXPECT_EQ(*via_fpp, *via_program) << "trial " << trial;
  }
}

}  // namespace
}  // namespace obda::mmsnp
