// Cross-module integration tests: the three evaluation engines (bounded
// reference, Thm 3.4 MDDlog + SAT, Thm 4.6 CSP) must agree across
// randomized ontologies using every supported DL feature, and the
// auxiliary decision procedures must be mutually consistent.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/consistency.h"
#include "core/csp_translation.h"
#include "core/mddlog_translation.h"
#include "core/omq.h"
#include "data/generator.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "dl/bounded_model.h"
#include "dl/parser.h"
#include "mmsnp/containment.h"
#include "mmsnp/translate.h"

namespace obda {
namespace {

using core::OntologyMediatedQuery;
using data::Instance;
using data::Schema;

Schema StandardSchema() {
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  s.AddRelation("R", 2);
  s.AddRelation("S", 2);
  return s;
}

/// Random ontology drawing from the full ALCHI(U) feature set.
dl::Ontology RandomFeatureOntology(base::Rng& rng) {
  dl::Ontology o;
  std::vector<std::string> concepts = {"A", "B", "C"};
  std::vector<std::string> roles = {"R", "S"};
  auto name = [&] {
    return dl::Concept::Name(concepts[rng.Below(concepts.size())]);
  };
  auto role = [&]() -> dl::Role {
    switch (rng.Below(4)) {
      case 0:
        return dl::Role::Named(roles[rng.Below(roles.size())]);
      case 1:
        return dl::Role::InverseOf(roles[rng.Below(roles.size())]);
      case 2:
        return dl::Role::Universal();
      default:
        return dl::Role::Named(roles[rng.Below(roles.size())]);
    }
  };
  for (int i = 0; i < 2; ++i) {
    dl::Concept lhs = name();
    dl::Concept rhs;
    switch (rng.Below(5)) {
      case 0:
        rhs = dl::Concept::Or(name(), name());
        break;
      case 1:
        rhs = dl::Concept::Exists(role(), name());
        break;
      case 2:
        rhs = dl::Concept::Forall(role(), name());
        break;
      case 3:
        rhs = dl::Concept::Not(name());
        break;
      default:
        rhs = dl::Concept::And(name(), name());
        break;
    }
    o.AddInclusion(lhs, rhs);
  }
  if (rng.Chance(1, 3)) o.AddRoleInclusion(dl::Role::Named("R"),
                                           dl::Role::Named("S"));
  // Keep the query concept C in sig(O) regardless of the random draws.
  o.AddInclusion(dl::Concept::Name("C"), dl::Concept::Top());
  return o;
}

class ThreeEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreeEngineTest, AqEnginesAgree) {
  base::Rng rng(GetParam());
  Schema s = StandardSchema();
  dl::Ontology o = RandomFeatureOntology(rng);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, o, "C");
  ASSERT_TRUE(omq.ok());
  auto csp = core::CompileToCsp(*omq);
  if (!csp.ok()) GTEST_SKIP() << csp.status().ToString();
  auto program = core::CompileAqToMddlog(*omq);
  ASSERT_TRUE(program.ok());

  for (int trial = 0; trial < 2; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 3;
    opts.facts_per_relation = 2;
    Instance d = data::RandomInstance(s, opts, rng);
    auto via_csp = csp->Evaluate(d);
    auto via_program = ddlog::CertainAnswers(*program, d);
    ASSERT_TRUE(via_program.ok());
    EXPECT_EQ(via_csp, via_program->tuples)
        << "seed " << GetParam() << " trial " << trial << "\n"
        << o.ToString() << d.ToString();
    dl::BoundedModelOptions bounded;
    bounded.extra_elements = 5;
    auto reference = omq->CertainAnswersBounded(d, bounded);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(via_csp, *reference)
        << "seed " << GetParam() << " trial " << trial << "\n"
        << o.ToString() << d.ToString();
  }
}

TEST_P(ThreeEngineTest, ConsistencyEnginesAgree) {
  base::Rng rng(500 + GetParam());
  Schema s = StandardSchema();
  dl::Ontology o = RandomFeatureOntology(rng);
  // Sharpen with a disjointness axiom so inconsistency actually occurs.
  o.AddInclusion(dl::Concept::And(dl::Concept::Name("A"),
                                  dl::Concept::Name("B")),
                 dl::Concept::Bottom());
  for (int trial = 0; trial < 2; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 3;
    opts.facts_per_relation = 3;
    Instance d = data::RandomInstance(s, opts, rng);
    auto exact = core::IsConsistent(o, d);
    if (!exact.ok()) GTEST_SKIP() << exact.status().ToString();
    dl::BoundedModelOptions bounded;
    bounded.extra_elements = 5;
    auto via_bounded = dl::BoundedConsistent(o, d, bounded);
    ASSERT_TRUE(via_bounded.ok());
    EXPECT_EQ(*exact, *via_bounded)
        << "seed " << GetParam() << " trial " << trial << "\n"
        << o.ToString() << d.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeEngineTest, ::testing::Range(0, 20));

TEST(ConsistencyTest, KnownCases) {
  auto o = dl::ParseOntology("A [= bot");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  auto bad = data::ParseInstance(s, "A(a)");
  Instance good(s);
  good.AddConstant("a");
  auto r1 = core::IsConsistent(*o, *bad);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(*r1);
  auto r2 = core::IsConsistent(*o, good);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
}

TEST(ConsistencyTest, RejectsFunctionalRoles) {
  auto o = dl::ParseOntology("func(R)");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("R", 2);
  Instance d(s);
  d.AddConstant("a");
  EXPECT_FALSE(core::IsConsistent(*o, d).ok());
}

// --- MMSNP containment (Prop 5.5 / Thm 5.6, bounded) -----------------------

TEST(MmsnpContainmentTest, SentenceContainment) {
  Schema s;
  s.AddRelation("E", 2);
  // Φ1: 3-colorable; Φ2: 2-colorable (as MMSNP sentences via MDDlog).
  auto make = [&s](int colors) {
    std::string text;
    std::string head;
    for (int c = 1; c <= colors; ++c) {
      if (c > 1) head += " | ";
      head += "P" + std::to_string(c) + "(x)";
    }
    text += head + " <- adom(x).\n";
    for (int c = 1; c <= colors; ++c) {
      text += "goal <- P" + std::to_string(c) + "(x), P" +
              std::to_string(c) + "(y), E(x,y).\n";
    }
    auto program = ddlog::ParseProgram(s, text);
    OBDA_CHECK(program.ok());
    auto formula = mmsnp::FromDdlog(*program);
    OBDA_CHECK(formula.ok());
    return *formula;
  };
  mmsnp::Formula co2 = make(2);
  mmsnp::Formula co3 = make(3);
  // not-3-colorable ⊆ not-2-colorable.
  auto c32 = mmsnp::ContainedBounded(co3, co2);
  ASSERT_TRUE(c32.ok());
  EXPECT_EQ(*c32, mmsnp::MmsnpContainment::kContainedWithinBound);
  auto c23 = mmsnp::ContainedBounded(co2, co3);
  ASSERT_TRUE(c23.ok());
  EXPECT_EQ(*c23, mmsnp::MmsnpContainment::kNotContained);
}

TEST(MmsnpContainmentTest, FormulaToSentenceReduction) {
  // Prop 5.5 / 5.2: containment of formulas reduces to containment of
  // the marker sentences. Verified on a unary pair where containment
  // holds one way only.
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("L", 1);
  // Φ1(y): E(y,z) ∧ L(y) → ⊥  (answers: L-labelled with out-edge)
  // Φ2(y): E(y,z) → ⊥         (answers: anything with out-edge)
  mmsnp::Formula f1(s, 1);
  {
    mmsnp::Implication imp;
    mmsnp::Atom e;
    e.kind = mmsnp::AtomKind::kInput;
    e.pred = 0;
    e.vars = {0, 1};
    mmsnp::Atom l;
    l.kind = mmsnp::AtomKind::kInput;
    l.pred = 1;
    l.vars = {0};
    imp.body = {e, l};
    ASSERT_TRUE(f1.AddImplication(imp).ok());
  }
  mmsnp::Formula f2(s, 1);
  {
    mmsnp::Implication imp;
    mmsnp::Atom e;
    e.kind = mmsnp::AtomKind::kInput;
    e.pred = 0;
    e.vars = {0, 1};
    imp.body = {e};
    ASSERT_TRUE(f2.AddImplication(imp).ok());
  }
  auto c12 = mmsnp::ContainedBounded(f1, f2);
  ASSERT_TRUE(c12.ok());
  EXPECT_EQ(*c12, mmsnp::MmsnpContainment::kContainedWithinBound);
  auto c21 = mmsnp::ContainedBounded(f2, f1);
  ASSERT_TRUE(c21.ok());
  EXPECT_EQ(*c21, mmsnp::MmsnpContainment::kNotContained);

  // The same verdicts through the marker sentences (Prop 5.2 transfer).
  mmsnp::Formula s1 = mmsnp::SentenceWithMarkers(f1);
  mmsnp::Formula s2 = mmsnp::SentenceWithMarkers(f2);
  auto m12 = mmsnp::ContainedBounded(s1, s2);
  ASSERT_TRUE(m12.ok());
  EXPECT_EQ(*m12, mmsnp::MmsnpContainment::kContainedWithinBound);
  auto m21 = mmsnp::ContainedBounded(s2, s1);
  ASSERT_TRUE(m21.ok());
  EXPECT_EQ(*m21, mmsnp::MmsnpContainment::kNotContained);
}

}  // namespace
}  // namespace obda
