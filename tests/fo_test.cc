#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"
#include "fo/cq.h"
#include "fo/tree.h"

namespace obda::fo {
namespace {

using data::Schema;

Schema MedSchema() {
  Schema s;
  s.AddRelation("HasDiagnosis", 2);
  s.AddRelation("BacterialInfection", 1);
  return s;
}

TEST(CqTest, BuildAndPrint) {
  // q(x) = ∃y HasDiagnosis(x,y) ∧ BacterialInfection(y)  (Example 2.1)
  ConjunctiveQuery q(MedSchema(), 1);
  QVar y = q.AddVariable();
  ASSERT_TRUE(q.AddAtomByName("HasDiagnosis", {0, y}).ok());
  ASSERT_TRUE(q.AddAtomByName("BacterialInfection", {y}).ok());
  EXPECT_EQ(q.arity(), 1);
  EXPECT_EQ(q.atoms().size(), 2u);
  EXPECT_NE(q.ToString().find("HasDiagnosis"), std::string::npos);
}

TEST(CqTest, EvaluateOnInstance) {
  ConjunctiveQuery q(MedSchema(), 1);
  QVar y = q.AddVariable();
  ASSERT_TRUE(q.AddAtomByName("HasDiagnosis", {0, y}).ok());
  ASSERT_TRUE(q.AddAtomByName("BacterialInfection", {y}).ok());
  auto d = data::ParseInstance(
      MedSchema(),
      "HasDiagnosis(p1,d1). BacterialInfection(d1). HasDiagnosis(p2,d2)");
  ASSERT_TRUE(d.ok());
  auto answers = q.Evaluate(*d);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(d->ConstantName(answers[0][0]), "p1");
}

TEST(CqTest, BooleanQuery) {
  Schema s;
  s.AddRelation("E", 2);
  ConjunctiveQuery q(s, 0);
  QVar x = q.AddVariable();
  QVar y = q.AddVariable();
  q.AddAtom(0, {x, y});
  q.AddAtom(0, {y, x});
  // true iff a directed 2-cycle exists.
  EXPECT_TRUE(q.Evaluate(data::DirectedCycle("E", 2)).size() == 1);
  EXPECT_TRUE(q.Evaluate(data::DirectedCycle("E", 3)).empty());
}

TEST(CqTest, AtomicQueryHelpers) {
  Schema s;
  s.AddRelation("A", 1);
  ConjunctiveQuery aq = MakeAtomicQuery(s, "A");
  EXPECT_EQ(aq.arity(), 1);
  ConjunctiveQuery baq = MakeBooleanAtomicQuery(s, "A");
  EXPECT_EQ(baq.arity(), 0);
  auto d = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(aq.Evaluate(*d).size(), 1u);
  EXPECT_EQ(baq.Evaluate(*d).size(), 1u);
}

TEST(CqTest, UcqEvaluateUnions) {
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  UnionOfCq q(s, 1);
  q.AddDisjunct(MakeAtomicQuery(s, "A"));
  q.AddDisjunct(MakeAtomicQuery(s, "B"));
  auto d = data::ParseInstance(s, "A(a). B(b). A(c). B(c)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(q.Evaluate(*d).size(), 3u);  // a, b, c (deduped)
}

TEST(CqTest, ContainmentChandraMerlin) {
  Schema s;
  s.AddRelation("E", 2);
  // q1(x) = ∃y,z E(x,y) ∧ E(y,z)   (path of length 2)
  ConjunctiveQuery q1(s, 1);
  QVar y1 = q1.AddVariable();
  QVar z1 = q1.AddVariable();
  q1.AddAtom(0, {0, y1});
  q1.AddAtom(0, {y1, z1});
  // q2(x) = ∃y E(x,y)
  ConjunctiveQuery q2(s, 1);
  QVar y2 = q2.AddVariable();
  q2.AddAtom(0, {0, y2});
  EXPECT_TRUE(CqContained(q1, q2));
  EXPECT_FALSE(CqContained(q2, q1));
  EXPECT_TRUE(CqContained(q1, q1));
}

TEST(CqTest, MergeVariablesDedupes) {
  Schema s;
  s.AddRelation("E", 2);
  ConjunctiveQuery q(s, 0);
  QVar a = q.AddVariable();
  QVar b = q.AddVariable();
  QVar c = q.AddVariable();
  q.AddAtom(0, {a, c});
  q.AddAtom(0, {b, c});
  std::vector<QVar> rep = {a, a, c};  // b -> a
  ConjunctiveQuery merged = q.MergeVariables(rep);
  EXPECT_EQ(merged.num_vars(), 2);
  EXPECT_EQ(merged.atoms().size(), 1u);
}

// --- Fork elimination and tree(q) (paper, proof of Thm 3.3) ----------------

TEST(TreeTest, PaperExampleForkElimination) {
  // q' = ∃y1..y8 P(y1,y2) ∧ S(y1,y3) ∧ R(y2,y4) ∧ R(y3,y4) ∧ S(y4,y5)
  //      ∧ R(y6,y7) ∧ S(y6,y8)   — the worked example after Thm 3.3.
  Schema s;
  s.AddRelation("P", 2);
  s.AddRelation("R", 2);
  s.AddRelation("S", 2);
  ConjunctiveQuery q(s, 0);
  std::vector<QVar> y(9);
  for (int i = 1; i <= 8; ++i) y[i] = q.AddVariable();
  ASSERT_TRUE(q.AddAtomByName("P", {y[1], y[2]}).ok());
  ASSERT_TRUE(q.AddAtomByName("S", {y[1], y[3]}).ok());
  ASSERT_TRUE(q.AddAtomByName("R", {y[2], y[4]}).ok());
  ASSERT_TRUE(q.AddAtomByName("R", {y[3], y[4]}).ok());
  ASSERT_TRUE(q.AddAtomByName("S", {y[4], y[5]}).ok());
  ASSERT_TRUE(q.AddAtomByName("R", {y[6], y[7]}).ok());
  ASSERT_TRUE(q.AddAtomByName("S", {y[6], y[8]}).ok());

  // Fork elimination unifies y2 and y3 (both R-predecessors of y4).
  ConjunctiveQuery hat = EliminateForks(q);
  EXPECT_EQ(hat.num_vars(), 7);  // y3 merged away
  EXPECT_EQ(hat.atoms().size(), 6u);

  UnionOfCq ucq(s, 0);
  ucq.AddDisjunct(q);
  auto trees = TreeQueries(ucq);
  // The paper's example lists the Boolean component {R(y6,y7), S(y6,y8)}
  // plus four rooted queries; two of those (∃y5 S(y4,y5) and
  // ∃y8 S(y6,y8)) are the same query up to renaming, and the literal
  // definition of step (3) additionally admits the two deeper patterns
  // rooted at y1 (P(y1,y2)∧R(y2,y4)∧S(y4,y5) and S(y1,y2)∧R(y2,y4)∧
  // S(y4,y5)). As a set we therefore get 1 Boolean + 5 rooted members —
  // a harmless superset of the paper's listing (extra members only grow
  // the type space).
  EXPECT_EQ(trees.size(), 6u);
  int boolean_count = 0;
  int rooted_count = 0;
  for (const auto& t : trees) {
    if (t.arity() == 0) ++boolean_count;
    if (t.arity() == 1) ++rooted_count;
    EXPECT_TRUE(IsTreeShaped(t));
  }
  EXPECT_EQ(boolean_count, 1);
  EXPECT_EQ(rooted_count, 5);
}

TEST(TreeTest, TreeShapedChecks) {
  Schema s;
  s.AddRelation("R", 2);
  s.AddRelation("S", 2);
  // Single edge: tree.
  ConjunctiveQuery edge(s, 0);
  QVar a = edge.AddVariable();
  QVar b = edge.AddVariable();
  edge.AddAtom(0, {a, b});
  EXPECT_TRUE(IsTreeShaped(edge));
  // Multi-labelled edge: not a tree.
  ConjunctiveQuery multi = edge;
  multi.AddAtom(1, {a, b});
  EXPECT_FALSE(IsTreeShaped(multi));
  // Cycle: not a tree.
  ConjunctiveQuery cyc(s, 0);
  QVar u = cyc.AddVariable();
  QVar v = cyc.AddVariable();
  cyc.AddAtom(0, {u, v});
  cyc.AddAtom(0, {v, u});
  EXPECT_FALSE(IsTreeShaped(cyc));
  // Single variable with a unary... no unary relation here; single var
  // with no atoms is a (single-node) tree.
  ConjunctiveQuery single(s, 0);
  single.AddVariable();
  EXPECT_TRUE(IsTreeShaped(single));
}

TEST(TreeTest, ConnectedComponentsSplit) {
  Schema s;
  s.AddRelation("E", 2);
  ConjunctiveQuery q(s, 1);
  QVar y = q.AddVariable();
  QVar u = q.AddVariable();
  QVar v = q.AddVariable();
  q.AddAtom(0, {0, y});
  q.AddAtom(0, {u, v});
  auto comps = ConnectedComponents(q);
  ASSERT_EQ(comps.size(), 2u);
  // One component holds the answer variable; one is Boolean.
  int arities = comps[0].arity() + comps[1].arity();
  EXPECT_EQ(arities, 1);
  EXPECT_FALSE(IsConnected(q));
}

}  // namespace
}  // namespace obda::fo

namespace obda::fo {
namespace {

TEST(MinimizeTest, RedundantAtomDropped) {
  // q(x) = ∃y,z E(x,y) ∧ E(x,z): z-branch folds onto y.
  data::Schema s;
  s.AddRelation("E", 2);
  ConjunctiveQuery q(s, 1);
  QVar y = q.AddVariable();
  QVar z = q.AddVariable();
  q.AddAtom(0, {0, y});
  q.AddAtom(0, {0, z});
  ConjunctiveQuery m = MinimizeCq(q);
  EXPECT_EQ(m.atoms().size(), 1u);
  EXPECT_EQ(m.num_vars(), 2);
  EXPECT_TRUE(CqContained(q, m));
  EXPECT_TRUE(CqContained(m, q));
}

TEST(MinimizeTest, CoreKeepsNonRedundantStructure) {
  // A directed 2-cycle query is its own core.
  data::Schema s;
  s.AddRelation("E", 2);
  ConjunctiveQuery q(s, 0);
  QVar a = q.AddVariable();
  QVar b = q.AddVariable();
  q.AddAtom(0, {a, b});
  q.AddAtom(0, {b, a});
  ConjunctiveQuery m = MinimizeCq(q);
  EXPECT_EQ(m.atoms().size(), 2u);
}

TEST(MinimizeTest, AnswerVariablesProtected) {
  // q(x1, x2) = E(x1,y) ∧ E(x2,y): x1, x2 cannot be merged even though
  // the pattern folds; minimization keeps both answer variables.
  data::Schema s;
  s.AddRelation("E", 2);
  ConjunctiveQuery q(s, 2);
  QVar y = q.AddVariable();
  q.AddAtom(0, {0, y});
  q.AddAtom(0, {1, y});
  ConjunctiveQuery m = MinimizeCq(q);
  EXPECT_EQ(m.arity(), 2);
  EXPECT_EQ(m.atoms().size(), 2u);
}

}  // namespace
}  // namespace obda::fo
