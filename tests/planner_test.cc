// Planner tests (DESIGN.md §11): tier admission and cost-based choice
// across the rewritability lattice, PREPARE-time budgets (the E04
// succinctness family must fall through to SAT instead of hanging), the
// (2,3)-consistency prefilter's soundness and its consistency-domain
// primitives, the PLAN= protocol overrides and EXPLAIN verb, and — the
// heart of the battery — tier parity: ≥50 seeded OMQ/instance pairs
// answered bit-identically by every admissible plan at threads {1,2,8}
// (this binary runs in the tsan CI job).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/csp_translation.h"
#include "core/paper_families.h"
#include "csp/consistency.h"
#include "data/generator.h"
#include "dl/parser.h"
#include "serve/planner.h"
#include "serve/prepared.h"
#include "serve/server.h"
#include "serve/session.h"

namespace obda::serve {
namespace {

using data::Fact;
using data::Schema;

// --- Tier names and parsing -------------------------------------------------

TEST(PlanTierTest, NamesRoundTripThroughParse) {
  for (PlanTier tier : {PlanTier::kAuto, PlanTier::kFo, PlanTier::kDatalog,
                        PlanTier::kSat, PlanTier::kSatRaw}) {
    auto parsed = ParsePlanTier(PlanTierName(tier));
    ASSERT_TRUE(parsed.has_value()) << PlanTierName(tier);
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_FALSE(ParsePlanTier("SAT").has_value());
  EXPECT_FALSE(ParsePlanTier("").has_value());
  EXPECT_FALSE(ParsePlanTier("bogus").has_value());
}

// --- Consistency domains (the prefilter's propagation primitive) ------------

TEST(ConsistencyDomainsTest, LoopTargetKeepsEveryElement) {
  // Everything maps into a reflexive vertex: no refutation, and each
  // element's surviving image set is exactly {0}.
  const data::Instance d = data::DirectedPath("E", 3);
  const data::Instance b = data::Loop("E");
  for (const csp::ConsistencyDomains& domains :
       {csp::ArcConsistencyDomains(d, b),
        csp::PairwiseConsistencyDomains(d, b)}) {
    EXPECT_FALSE(domains.refuted);
    ASSERT_EQ(domains.surviving.size(), d.UniverseSize());
    for (std::uint64_t mask : domains.surviving) {
      EXPECT_EQ(mask, std::uint64_t{1});
    }
  }
}

TEST(ConsistencyDomainsTest, LoopSourceIntoLooplessTargetRefutes) {
  // A reflexive element has no image in a loopless path: already arc
  // consistency empties its candidate set.
  const data::Instance d = data::Loop("E");
  const data::Instance b = data::DirectedPath("E", 2);
  EXPECT_TRUE(csp::ArcConsistencyDomains(d, b).refuted);
  EXPECT_TRUE(csp::PairwiseConsistencyDomains(d, b).refuted);
  // Matches the boolean refutation API bit-for-bit.
  EXPECT_TRUE(csp::ArcConsistencyRefutes(d, b));
  EXPECT_TRUE(csp::PairwiseConsistencyRefutes(d, b));
}

TEST(ConsistencyDomainsTest, CycleOntoItselfKeepsAllRotations) {
  // C3 → C3: every rotation is a homomorphism, so all three images
  // survive for every element, under both propagation strengths.
  const data::Instance d = data::DirectedCycle("E", 3);
  const data::Instance b = data::DirectedCycle("E", 3);
  for (const csp::ConsistencyDomains& domains :
       {csp::ArcConsistencyDomains(d, b),
        csp::PairwiseConsistencyDomains(d, b)}) {
    EXPECT_FALSE(domains.refuted);
    ASSERT_EQ(domains.surviving.size(), 3u);
    for (std::uint64_t mask : domains.surviving) {
      EXPECT_EQ(mask, std::uint64_t{0b111});
    }
  }
}

TEST(ConsistencyDomainsTest, PairwiseNeverKeepsMoreThanArc) {
  // (2,3)-consistency is at least as strong as arc consistency: on
  // random digraph pairs every pairwise-surviving image must also
  // survive arc propagation.
  base::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const data::Instance d =
        data::RandomDigraph("E", 5, 8, rng);
    const data::Instance b = data::RandomDigraph("E", 4, 7, rng);
    const csp::ConsistencyDomains arc = csp::ArcConsistencyDomains(d, b);
    const csp::ConsistencyDomains pair =
        csp::PairwiseConsistencyDomains(d, b);
    if (arc.refuted) continue;  // pairwise may only refute more
    if (pair.refuted) continue;
    ASSERT_EQ(arc.surviving.size(), pair.surviving.size());
    for (std::size_t x = 0; x < arc.surviving.size(); ++x) {
      EXPECT_EQ(pair.surviving[x] & ~arc.surviving[x], 0u)
          << "round " << round << " element " << x;
    }
  }
}

// --- Admission and cost-based choice ----------------------------------------

base::Result<core::OntologyMediatedQuery> DisjunctionOmq() {
  auto ontology =
      dl::ParseOntology("LymeDisease | Listeriosis [= BacterialInfection");
  OBDA_CHECK(ontology.ok());
  Schema s;
  s.AddRelation("LymeDisease", 1);
  s.AddRelation("Listeriosis", 1);
  return core::OntologyMediatedQuery::WithAtomicQuery(s, *ontology,
                                                      "BacterialInfection");
}

/// A(x) propagated along every R-edge ("A [= all R.A"): the certain
/// answers of AQ A are the elements R-reachable from an A-element, a
/// recursive query — datalog-rewritable but not FO-rewritable.
base::Result<core::OntologyMediatedQuery> ReachabilityOmq() {
  auto ontology = dl::ParseOntology("A [= all R.A");
  OBDA_CHECK(ontology.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  return core::OntologyMediatedQuery::WithAtomicQuery(s, *ontology, "A");
}

TEST(PlannerTest, FoRewritableOmqLandsInFoTier) {
  auto omq = DisjunctionOmq();
  ASSERT_TRUE(omq.ok());
  auto plan = PlanOmq(*omq, PlannerOptions(), /*session_facts=*/0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->tier, PlanTier::kFo);
  EXPECT_TRUE(plan->fo.has_value());
  EXPECT_FALSE(plan->program.has_value());
  EXPECT_EQ(plan->explain.fo_rewritable, 1);
  EXPECT_EQ(plan->explain.chosen_by, PlanChoice::kCost);
  // The full ladder was admissible: fo, datalog, sat — in that order.
  ASSERT_EQ(plan->explain.admissible.size(), 3u);
  EXPECT_EQ(plan->explain.admissible[0], PlanTier::kFo);
  EXPECT_EQ(plan->explain.admissible[2], PlanTier::kSat);
  EXPECT_GT(plan->explain.cost_fo, 0.0);
  EXPECT_LT(plan->explain.cost_fo, plan->explain.cost_sat);
  EXPECT_TRUE(plan->explain.budget_events.empty());
}

TEST(PlannerTest, RecursiveOmqIsDatalogNotFoRewritable) {
  auto omq = ReachabilityOmq();
  ASSERT_TRUE(omq.ok());
  PlannerOptions options;
  options.microbench = false;  // make the cost ranking the whole story
  auto plan = PlanOmq(*omq, options, /*session_facts=*/16);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->explain.fo_rewritable, 0);
  EXPECT_EQ(plan->explain.datalog_rewritable, 1);
  // Datalog is admissible (the certificate holds) but the calibrated
  // priors price its per-candidate propagation above grounding + co-NP
  // probes already at 16 facts, so the cost ranking lands on SAT.
  ASSERT_EQ(plan->explain.admissible.size(), 2u);
  EXPECT_EQ(plan->explain.admissible[0], PlanTier::kDatalog);
  EXPECT_EQ(plan->explain.admissible[1], PlanTier::kSat);
  EXPECT_EQ(plan->tier, PlanTier::kSat);
  EXPECT_GT(plan->explain.cost_datalog, plan->explain.cost_sat);
  EXPECT_TRUE(plan->program.has_value());

  // Forcing the admissible datalog tier still compiles the datalog plan.
  PlannerOptions forced;
  forced.force = PlanTier::kDatalog;
  auto datalog_plan = PlanOmq(*omq, forced, /*session_facts=*/16);
  ASSERT_TRUE(datalog_plan.ok()) << datalog_plan.status().ToString();
  EXPECT_EQ(datalog_plan->tier, PlanTier::kDatalog);
  EXPECT_TRUE(datalog_plan->datalog.has_value());
}

TEST(PlannerTest, NonRewritableOmqFallsToSatWithPrefilter) {
  auto omq = core::CspToOmq(data::Clique("E", 3));
  ASSERT_TRUE(omq.ok());
  auto plan = PlanOmq(*omq, PlannerOptions(), /*session_facts=*/0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->tier, PlanTier::kSat);
  EXPECT_EQ(plan->explain.fo_rewritable, 0);
  EXPECT_EQ(plan->explain.datalog_rewritable, 0);
  ASSERT_EQ(plan->explain.admissible.size(), 1u);
  EXPECT_EQ(plan->explain.chosen_by, PlanChoice::kOnly);
  ASSERT_TRUE(plan->program.has_value());
  // coCSP(K3) compiles to a marked coCSP, so the SAT tier carries the
  // consistency prefilter.
  EXPECT_TRUE(plan->explain.prefilter);
  ASSERT_NE(plan->prefilter, nullptr);
}

TEST(PlannerTest, ForcedInadmissibleTierFailsLoudly) {
  auto k3 = core::CspToOmq(data::Clique("E", 3));
  ASSERT_TRUE(k3.ok());
  PlannerOptions fo_forced;
  fo_forced.force = PlanTier::kFo;
  EXPECT_EQ(PlanOmq(*k3, fo_forced, 0).status().code(),
            base::StatusCode::kInvalidArgument);
  PlannerOptions datalog_forced;
  datalog_forced.force = PlanTier::kDatalog;
  EXPECT_EQ(PlanOmq(*k3, datalog_forced, 0).status().code(),
            base::StatusCode::kInvalidArgument);

  auto recursive = ReachabilityOmq();
  ASSERT_TRUE(recursive.ok());
  PlannerOptions fo_on_recursive;
  fo_on_recursive.force = PlanTier::kFo;
  EXPECT_EQ(PlanOmq(*recursive, fo_on_recursive, 0).status().code(),
            base::StatusCode::kInvalidArgument);
}

TEST(PlannerTest, SatRawDisablesThePrefilter) {
  auto omq = core::CspToOmq(data::Clique("E", 3));
  ASSERT_TRUE(omq.ok());
  PlannerOptions raw;
  raw.force = PlanTier::kSatRaw;
  auto plan = PlanOmq(*omq, raw, 0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->tier, PlanTier::kSatRaw);
  EXPECT_EQ(plan->explain.chosen_by, PlanChoice::kForced);
  EXPECT_FALSE(plan->explain.prefilter);
  EXPECT_EQ(plan->prefilter, nullptr);
  ASSERT_TRUE(plan->program.has_value());
}

TEST(PlannerTest, ExplainLinesAreDeterministic) {
  auto omq = DisjunctionOmq();
  ASSERT_TRUE(omq.ok());
  auto a = PlanOmq(*omq, PlannerOptions(), 0);
  auto b = PlanOmq(*omq, PlannerOptions(), 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(ExplainLines(a->explain), ExplainLines(b->explain));
  const std::vector<std::string> lines = ExplainLines(a->explain);
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0].rfind("tier=fo chosen_by=cost planner_version=", 0), 0u)
      << lines[0];
  EXPECT_EQ(lines[1], "admissible=fo,datalog,sat");
  EXPECT_EQ(lines[4], "prefilter enabled=0");
  EXPECT_EQ(lines[5], "budget none");
}

// --- PREPARE budgets: the E04 succinctness family must not hang -------------

TEST(PlannerBudgetTest, SuccinctnessFamilyFallsThroughToSat) {
  // Q_8's type space has 2^8 types: the deciders' CSP compilation blows
  // past max_template_elements=64 and must surface as budget events, not
  // as a hung PREPARE; the SAT tier (whose MDDlog program is the
  // unavoidable-but-affordable exponential artifact) still compiles.
  auto omq = core::SuccinctnessFamilyOmq(8);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  PlannerOptions options;  // default budgets: 64 template elements
  auto plan = PlanOmq(*omq, options, /*session_facts=*/0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->tier, PlanTier::kSat);
  ASSERT_TRUE(plan->program.has_value());
  // Neither decider finished: certificates unknown, budget events logged.
  EXPECT_EQ(plan->explain.fo_rewritable, -1);
  EXPECT_EQ(plan->explain.datalog_rewritable, -1);
  ASSERT_GE(plan->explain.budget_events.size(), 2u);
  EXPECT_EQ(plan->explain.budget_events[0].rfind("fo_decide:", 0), 0u)
      << plan->explain.budget_events[0];
  EXPECT_EQ(plan->explain.budget_events[1].rfind("datalog_decide:", 0), 0u)
      << plan->explain.budget_events[1];
}

TEST(PlannerBudgetTest, PreparedQueryHonorsBudgetAndStillServes) {
  auto omq = core::SuccinctnessFamilyOmq(6);
  ASSERT_TRUE(omq.ok());
  auto prepared = PreparedQuery::FromOmq(*omq, PrepareOptions());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ((*prepared)->tier(), PlanTier::kSat);

  // Goal is derived through an R-edge into the full A1..Ai conjunction.
  Session session(omq->data_schema());
  ASSERT_TRUE(session.Assert(Fact{"R", {"x", "y"}}).ok());
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(
        session.Assert(Fact{"A" + std::to_string(i), {"y"}}).ok());
  }
  auto answers = (*prepared)->Execute(session, RequestBudget{});
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->tuples.size(), 1u);
}

// --- Tier parity: every admissible plan agrees bit-for-bit ------------------

struct ParityFamily {
  std::string name;
  base::Result<core::OntologyMediatedQuery> omq;
  int seeds = 0;
};

/// Asserts `count` random facts over `schema` (constants p0..p7) into
/// every session in `sessions` in the same order, so raw ConstId answers
/// are comparable across them.
void AssertRandomFacts(const Schema& schema, std::uint64_t seed, int count,
                       std::vector<Session*> sessions) {
  base::Rng rng(0xFAC75 + seed);
  for (int i = 0; i < count; ++i) {
    const data::RelationId r =
        static_cast<data::RelationId>(rng.Below(schema.NumRelations()));
    std::vector<std::string> args;
    for (int a = 0; a < schema.Arity(r); ++a) {
      args.push_back("p" + std::to_string(rng.Below(8)));
    }
    const Fact fact{schema.RelationName(r), args};
    for (Session* session : sessions) {
      ASSERT_TRUE(session->Assert(fact).ok());
    }
  }
}

TEST(TierParityTest, FiftyTwoPairsAgreeAcrossTiersAndThreads) {
  std::vector<ParityFamily> families;
  families.push_back({"fo", DisjunctionOmq(), 20});
  families.push_back({"datalog", ReachabilityOmq(), 20});
  families.push_back({"conp", core::CspToOmq(data::Clique("E", 3)), 12});

  int pairs = 0;
  for (const ParityFamily& family : families) {
    ASSERT_TRUE(family.omq.ok()) << family.name;
    const core::OntologyMediatedQuery& omq = *family.omq;
    for (int threads : {1, 2, 8}) {
      // One artifact per forced tier (the plans do not depend on the
      // instance); kSatRaw — grounding + probes, no prefilter — is the
      // seed-equivalent reference everything must match.
      PrepareOptions base;
      base.eval.threads = threads;
      std::vector<std::shared_ptr<PreparedQuery>> plans;
      PrepareOptions raw = base;
      raw.planner.force = PlanTier::kSatRaw;
      auto reference = PreparedQuery::FromOmq(omq, raw);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      for (PlanTier tier : {PlanTier::kAuto, PlanTier::kFo,
                            PlanTier::kDatalog, PlanTier::kSat}) {
        PrepareOptions opts = base;
        opts.planner.force = tier;
        auto plan = PreparedQuery::FromOmq(omq, opts);
        if (!plan.ok()) {
          // Only a forced tier may be inadmissible.
          EXPECT_NE(tier, PlanTier::kAuto) << plan.status().ToString();
          EXPECT_EQ(plan.status().code(),
                    base::StatusCode::kInvalidArgument);
          continue;
        }
        plans.push_back(*plan);
      }
      ASSERT_GE(plans.size(), 2u) << family.name;

      for (int seed = 0; seed < family.seeds; ++seed) {
        if (threads == 1) ++pairs;  // count OMQ/instance pairs once
        Session ref_session(omq.data_schema());
        std::vector<std::unique_ptr<Session>> sessions;
        for (std::size_t i = 0; i < plans.size(); ++i) {
          sessions.push_back(std::make_unique<Session>(omq.data_schema()));
        }
        std::vector<Session*> all = {&ref_session};
        for (const auto& s : sessions) all.push_back(s.get());
        AssertRandomFacts(omq.data_schema(),
                          static_cast<std::uint64_t>(seed), 12, all);

        auto expected = (*reference)->Execute(ref_session, RequestBudget{});
        ASSERT_TRUE(expected.ok()) << expected.status().ToString();
        for (std::size_t i = 0; i < plans.size(); ++i) {
          auto got = plans[i]->Execute(*sessions[i], RequestBudget{});
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_EQ(got->tuples, expected->tuples)
              << family.name << " seed " << seed << " threads " << threads
              << " tier " << PlanTierName(plans[i]->tier());
          EXPECT_EQ(got->inconsistent, expected->inconsistent);
        }
      }
    }
  }
  EXPECT_GE(pairs, 50);
}

// --- Prefilter behavior through the serving layer ---------------------------

TEST(PrefilterTest, CertifiesAnswersWithoutProbesAndMatchesRaw) {
  auto ontology = dl::ParseOntology("LymeDisease [= Infection");
  ASSERT_TRUE(ontology.ok());
  Schema s;
  s.AddRelation("LymeDisease", 1);
  s.AddRelation("Other", 1);
  auto omq = core::OntologyMediatedQuery::WithAtomicQuery(s, *ontology,
                                                          "Infection");
  ASSERT_TRUE(omq.ok());

  PrepareOptions sat_opts;
  sat_opts.planner.force = PlanTier::kSat;
  auto sat = PreparedQuery::FromOmq(*omq, sat_opts);
  ASSERT_TRUE(sat.ok()) << sat.status().ToString();
  ASSERT_EQ((*sat)->tier(), PlanTier::kSat);
  ASSERT_TRUE((*sat)->explain().prefilter);

  PrepareOptions raw_opts;
  raw_opts.planner.force = PlanTier::kSatRaw;
  auto raw = PreparedQuery::FromOmq(*omq, raw_opts);
  ASSERT_TRUE(raw.ok());

  Session sa(s), sb(s);
  for (Session* session : {&sa, &sb}) {
    ASSERT_TRUE(session->Assert(Fact{"LymeDisease", {"ann"}}).ok());
    ASSERT_TRUE(session->Assert(Fact{"Other", {"bob"}}).ok());
  }
  auto with = (*sat)->Execute(sa, RequestBudget{});
  auto without = (*raw)->Execute(sb, RequestBudget{});
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_EQ(with->tuples, without->tuples);
  ASSERT_EQ(with->tuples.size(), 1u);

  // ann (a certain answer) is certified by consistency and skips its
  // co-NP probe; bob never becomes a candidate (the grounding prunes
  // constants that cannot derive the goal). The raw tier never consults
  // a prefilter.
  EXPECT_EQ((*sat)->stats().prefilter_checks.load(), 1u);
  EXPECT_EQ((*sat)->stats().prefilter_hits.load(), 1u);
  EXPECT_EQ((*raw)->stats().prefilter_checks.load(), 0u);
}

TEST(PrefilterTest, BooleanCertificationRefutesEveryTemplate) {
  // coCSP(K3): the Boolean certifier says "certain answer" exactly when
  // consistency refutes D → K3 — true for a reflexive edge (arc
  // consistency empties the loop's candidate set), and soundly withheld
  // for an edge (3-colorable) and for K4 (non-3-colorable, but beyond
  // (2,3)-consistency's reach — the co-NP probe must decide it).
  auto omq = core::CspToOmq(data::Clique("E", 3));
  ASSERT_TRUE(omq.ok());
  auto templates = ConsistencyPrefilterTemplates::FromOmq(
      *omq, /*max_template_elements=*/64, /*max_pairwise_elements=*/96);
  ASSERT_TRUE(templates.has_value());
  EXPECT_EQ(templates->arity(), 0);
  EXPECT_GE(templates->num_templates(), 1u);

  auto certified = templates->Bind(data::Loop("E"));
  EXPECT_TRUE(certified->CertainlyAnswer({}));
  EXPECT_EQ(certified->checks(), 1u);
  EXPECT_EQ(certified->hits(), 1u);

  auto open = templates->Bind(data::DirectedPath("E", 2));
  EXPECT_FALSE(open->CertainlyAnswer({}));
  auto k4 = templates->Bind(data::Clique("E", 4));
  EXPECT_FALSE(k4->CertainlyAnswer({}));
}

TEST(PrefilterTest, RebindsAfterMutation) {
  auto omq = core::CspToOmq(data::Clique("E", 3));
  ASSERT_TRUE(omq.ok());
  auto prepared = PreparedQuery::FromOmq(*omq, PrepareOptions());
  ASSERT_TRUE(prepared.ok());

  Session session(omq->data_schema());
  ASSERT_TRUE(session.Assert(Fact{"E", {"a", "b"}}).ok());
  auto first = (*prepared)->Execute(session, RequestBudget{});
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->tuples.empty());  // an edge is 3-colorable

  // The mutation re-binds the certifier: the loop is refuted by arc
  // consistency against every template, flipping the answer to true.
  ASSERT_TRUE(session.Assert(Fact{"E", {"c", "c"}}).ok());
  auto second = (*prepared)->Execute(session, RequestBudget{});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->tuples.size(), 1u);
}

// --- Protocol: PLAN= override, EXPLAIN, cache keys --------------------------

TEST(PlanProtocolTest, PlanOverridesExplainAndCacheTiering) {
  Server server;
  auto client = server.NewClient();
  ASSERT_EQ(client->HandleLine("SCHEMA LymeDisease/1 Listeriosis/1"),
            "OK relations=2\n");
  ASSERT_EQ(client->HandleLine(
                "ONTOLOGY LymeDisease | Listeriosis [= BacterialInfection"),
            "OK axioms=1 language=ALC\n");

  // Auto plan lands in the FO tier; each forced tier is a distinct cache
  // entry; the legacy SAT modifier is PLAN=sat.
  EXPECT_EQ(client->HandleLine("PREPARE q AQ BacterialInfection"),
            "OK plan=fo_rewriting tier=fo cached=0 arity=1\n");
  EXPECT_EQ(client->HandleLine("PREPARE qd PLAN=datalog AQ BacterialInfection"),
            "OK plan=datalog_rewriting tier=datalog cached=0 arity=1\n");
  EXPECT_EQ(client->HandleLine("PREPARE qs PLAN=sat AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat cached=0 arity=1\n");
  EXPECT_EQ(client->HandleLine("PREPARE qs2 SAT AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat cached=1 arity=1\n");
  EXPECT_EQ(client->HandleLine("PREPARE qr PLAN=sat_raw AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat_raw cached=0 arity=1\n");
  EXPECT_EQ(client->HandleLine("PREPARE q2 AQ BacterialInfection"),
            "OK plan=fo_rewriting tier=fo cached=1 arity=1\n");
  EXPECT_EQ(
      client->HandleLine("PREPARE bad PLAN=bogus AQ BacterialInfection"),
      "ERR INVALID_ARGUMENT: PREPARE: bad tier PLAN=bogus "
      "(want PLAN=auto|fo|datalog|sat|sat_raw)\n");

  // EXPLAIN: the planner record plus cumulative prefilter traffic.
  const std::string explain = client->HandleLine("EXPLAIN q");
  EXPECT_EQ(explain.rfind("tier=fo chosen_by=cost planner_version=1\n", 0),
            0u)
      << explain;
  EXPECT_NE(explain.find("admissible=fo,datalog,sat\n"), std::string::npos);
  EXPECT_NE(explain.find("certificates fo_rewritable=1 "),
            std::string::npos);
  EXPECT_NE(explain.find("\nbudget none\n"), std::string::npos);
  EXPECT_NE(explain.find("stats prefilter_checks=0 prefilter_hits=0\n"),
            std::string::npos);
  EXPECT_TRUE(explain.ends_with("OK name=q tier=fo\n")) << explain;

  const std::string raw_explain = client->HandleLine("EXPLAIN qr");
  EXPECT_EQ(
      raw_explain.rfind("tier=sat_raw chosen_by=forced planner_version=1\n",
                        0),
      0u)
      << raw_explain;

  EXPECT_EQ(client->HandleLine("EXPLAIN nosuch"),
            "ERR NOT_FOUND: no prepared query named nosuch\n");
  EXPECT_EQ(client->HandleLine("EXPLAIN"),
            "ERR INVALID_ARGUMENT: usage: EXPLAIN <name>\n");
}

TEST(PlanProtocolTest, AutoPlansRePlanPerSizeClass) {
  Server server;
  auto client = server.NewClient();
  ASSERT_EQ(client->HandleLine("SCHEMA LymeDisease/1 Listeriosis/1"),
            "OK relations=2\n");
  ASSERT_EQ(client->HandleLine(
                "ONTOLOGY LymeDisease | Listeriosis [= BacterialInfection"),
            "OK axioms=1 language=ALC\n");
  // 0 facts → size class 0; 1 fact → class 1 (auto plans re-plan after
  // data growth — at tiny instances the cost model may well land on a
  // different tier, so only the cache behavior is pinned here); 2 and 3
  // facts share class 2.
  EXPECT_NE(client->HandleLine("PREPARE a AQ BacterialInfection")
                .find("cached=0"),
            std::string::npos);
  ASSERT_EQ(client->HandleLine("ASSERT LymeDisease(p1)"),
            "OK added=1 generation=1\n");
  EXPECT_NE(client->HandleLine("PREPARE b AQ BacterialInfection")
                .find("cached=0"),
            std::string::npos);
  ASSERT_EQ(client->HandleLine("ASSERT LymeDisease(p2)"),
            "OK added=1 generation=2\n");
  EXPECT_NE(client->HandleLine("PREPARE c AQ BacterialInfection")
                .find("cached=0"),
            std::string::npos);
  ASSERT_EQ(client->HandleLine("ASSERT LymeDisease(p3)"),
            "OK added=1 generation=3\n");
  EXPECT_NE(client->HandleLine("PREPARE d AQ BacterialInfection")
                .find("cached=1"),
            std::string::npos);
  // Forced tiers ignore the size class: still cached across growth.
  EXPECT_EQ(client->HandleLine("PREPARE e PLAN=sat AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat cached=0 arity=1\n");
  ASSERT_EQ(client->HandleLine("ASSERT LymeDisease(p4)"),
            "OK added=1 generation=4\n");
  EXPECT_EQ(client->HandleLine("PREPARE f PLAN=sat AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat cached=1 arity=1\n");
}

TEST(PlanProtocolTest, ServerDefaultTierAppliesWhenPrepareNamesNone) {
  // The OBDA_PLAN environment variable maps onto this option in
  // obda_serve's main(); here we drive the option directly.
  ServerOptions options;
  options.prepare.planner.force = PlanTier::kSat;
  Server server(options);
  auto client = server.NewClient();
  ASSERT_EQ(client->HandleLine("SCHEMA LymeDisease/1 Listeriosis/1"),
            "OK relations=2\n");
  ASSERT_EQ(client->HandleLine(
                "ONTOLOGY LymeDisease | Listeriosis [= BacterialInfection"),
            "OK axioms=1 language=ALC\n");
  EXPECT_EQ(client->HandleLine("PREPARE q AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat cached=0 arity=1\n");
  // An explicit PLAN= still overrides the server default.
  EXPECT_EQ(client->HandleLine("PREPARE qf PLAN=fo AQ BacterialInfection"),
            "OK plan=fo_rewriting tier=fo cached=0 arity=1\n");
}

TEST(PlanProtocolTest, StatsQueryReportsTierAndPrefilterTraffic) {
  Server server;
  auto client = server.NewClient();
  ASSERT_EQ(client->HandleLine("SCHEMA E/2"), "OK relations=1\n");
  ASSERT_EQ(client->HandleLine("ONTOLOGY top [= top"),
            "OK axioms=1 language=ALC\n");
  // A raw MDDlog program runs the SAT plan without planner artifacts.
  ASSERT_EQ(
      client->HandleLine(
          "PREPARE col PROGRAM B(x) | W(x) <- adom(x). goal <- B(x), B(y), "
          "E(x,y). goal <- W(x), W(y), E(x,y)."),
      "OK plan=sat_grounding tier=sat cached=0 arity=0\n");
  ASSERT_EQ(client->HandleLine("ASSERT E(a,b)"), "OK added=1 generation=1\n");
  client->HandleLine("QUERY col");
  const std::string stats = client->HandleLine("STATS QUERY col");
  EXPECT_NE(stats.find("\"tier\": \"sat\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"prefilter_checks\": 0"), std::string::npos);
  EXPECT_NE(stats.find("\"prefilter_hits\": 0"), std::string::npos);
}

TEST(CacheKeyTest, PlannerVersionAndTierSeparateEntries) {
  PreparedCache cache(8);
  auto omq = DisjunctionOmq();
  ASSERT_TRUE(omq.ok());
  auto plan = PreparedQuery::FromOmq(*omq, PrepareOptions());
  ASSERT_TRUE(plan.ok());

  CacheKey key;
  key.ontology_hash = HashText("onto");
  key.query_hash = HashText("AQ BacterialInfection");
  key.plan_mode = static_cast<std::uint32_t>(PlanTier::kAuto);
  key.planner_version = kPlannerVersion;
  key.size_class = 3;
  cache.Insert(key, *plan);
  EXPECT_NE(cache.Lookup(key), nullptr);

  CacheKey other_tier = key;
  other_tier.plan_mode = static_cast<std::uint32_t>(PlanTier::kSat);
  EXPECT_EQ(cache.Lookup(other_tier), nullptr);

  CacheKey other_version = key;
  other_version.planner_version = kPlannerVersion + 1;
  EXPECT_EQ(cache.Lookup(other_version), nullptr);

  CacheKey other_size = key;
  other_size.size_class = 4;
  EXPECT_EQ(cache.Lookup(other_size), nullptr);
}

}  // namespace
}  // namespace obda::serve
