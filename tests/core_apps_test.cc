#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/containment.h"
#include "core/csp_translation.h"
#include "core/omq.h"
#include "core/rewritability.h"
#include "core/schema_free.h"
#include "data/generator.h"
#include "data/io.h"
#include "dl/parser.h"

namespace obda::core {
namespace {

using data::Instance;
using data::Schema;

OntologyMediatedQuery HereditaryOmq() {
  auto o = dl::ParseOntology(
      "some HasParent.HereditaryPredisposition [= HereditaryPredisposition");
  OBDA_CHECK(o.ok());
  Schema s;
  s.AddRelation("HereditaryPredisposition", 1);
  s.AddRelation("HasParent", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(
      s, *o, "HereditaryPredisposition");
  OBDA_CHECK(omq.ok());
  return *omq;
}

// --- Thm 5.16: FO-/datalog-rewritability of OMQs -----------------------------

TEST(OmqRewritabilityTest, HereditaryIsDatalogNotFo) {
  // Example 2.2: the hereditary-predisposition query is definable in
  // datalog but not in FO.
  OntologyMediatedQuery omq = HereditaryOmq();
  auto fo = IsFoRewritable(omq);
  ASSERT_TRUE(fo.ok()) << fo.status().ToString();
  EXPECT_FALSE(*fo);
  auto dl = IsDatalogRewritable(omq);
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  EXPECT_TRUE(*dl);
}

TEST(OmqRewritabilityTest, NonRecursiveIsFoRewritable) {
  // Example 2.2 q1: BacterialInfection(x) with the non-recursive axiom is
  // FO-rewritable (equivalent to LymeDisease(x) ∨ Listeriosis(x)).
  auto o = dl::ParseOntology("LymeDisease | Listeriosis [= BacterialInfection");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("LymeDisease", 1);
  s.AddRelation("Listeriosis", 1);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o,
                                                    "BacterialInfection");
  ASSERT_TRUE(omq.ok());
  auto fo = IsFoRewritable(*omq);
  ASSERT_TRUE(fo.ok()) << fo.status().ToString();
  EXPECT_TRUE(*fo);
  auto dl = IsDatalogRewritable(*omq);
  ASSERT_TRUE(dl.ok());
  EXPECT_TRUE(*dl);
}

TEST(OmqRewritabilityTest, ThreeColoringLikeOmqIsNeither) {
  // The CspToOmq image of K3 behaves like co-3-colorability: neither FO-
  // nor datalog-rewritable.
  auto omq = CspToOmq(data::Clique("E", 3));
  ASSERT_TRUE(omq.ok());
  auto fo = IsFoRewritable(*omq);
  ASSERT_TRUE(fo.ok());
  EXPECT_FALSE(*fo);
  auto dl = IsDatalogRewritable(*omq);
  ASSERT_TRUE(dl.ok());
  EXPECT_FALSE(*dl);
}

TEST(OmqRewritabilityTest, TwoColoringLikeOmqIsDatalogOnly) {
  auto omq = CspToOmq(data::Clique("E", 2));
  ASSERT_TRUE(omq.ok());
  auto fo = IsFoRewritable(*omq);
  ASSERT_TRUE(fo.ok());
  EXPECT_FALSE(*fo);
  auto dl = IsDatalogRewritable(*omq);
  ASSERT_TRUE(dl.ok());
  EXPECT_TRUE(*dl);
}

// --- §5.3: rewriting extraction ----------------------------------------------

TEST(RewritingExtractionTest, FoRewritingMatchesSemantics) {
  auto o = dl::ParseOntology("LymeDisease | Listeriosis [= BacterialInfection");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("LymeDisease", 1);
  s.AddRelation("Listeriosis", 1);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o,
                                                    "BacterialInfection");
  ASSERT_TRUE(omq.ok());
  auto rewriting = ExtractFoRewriting(*omq);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();

  auto d = data::ParseInstance(s, "LymeDisease(p1). Listeriosis(p2)");
  ASSERT_TRUE(d.ok());
  auto via_rewriting = rewriting->Evaluate(*d);
  auto via_csp = CertainAnswersViaCsp(*omq, *d);
  ASSERT_TRUE(via_csp.ok());
  EXPECT_EQ(via_rewriting, *via_csp);
  EXPECT_EQ(via_rewriting.size(), 2u);
}

TEST(RewritingExtractionTest, FoRewritingOnRandomData) {
  auto o = dl::ParseOntology("A [= B\nsome R.B [= C");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  s.AddRelation("R", 2);
  auto omq = OntologyMediatedQuery::WithAtomicQuery(s, *o, "C");
  ASSERT_TRUE(omq.ok());
  auto fo_rewritable = IsFoRewritable(*omq);
  ASSERT_TRUE(fo_rewritable.ok());
  ASSERT_TRUE(*fo_rewritable);
  // The certain answers are ∃y R(x,y) ∧ (A(y) ∨ B(y)): 2-node
  // obstructions suffice, and a tight bound keeps the enumeration small
  // (the candidate space grows as (2^#unary)^nodes).
  csp::ObstructionOptions obs;
  obs.max_nodes = 3;
  auto rewriting = ExtractFoRewriting(*omq, obs);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  base::Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 4;
    opts.facts_per_relation = 3;
    Instance d = data::RandomInstance(s, opts, rng);
    auto via_rewriting = rewriting->Evaluate(d);
    auto via_csp = CertainAnswersViaCsp(*omq, d);
    ASSERT_TRUE(via_csp.ok());
    EXPECT_EQ(via_rewriting, *via_csp) << "trial " << trial << "\n"
                                       << d.ToString();
  }
}

TEST(RewritingExtractionTest, DatalogRewritingMatchesSemantics) {
  OntologyMediatedQuery omq = HereditaryOmq();
  auto rewriting = ExtractDatalogRewriting(omq);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  base::Rng rng(37);
  for (int trial = 0; trial < 6; ++trial) {
    data::RandomInstanceOptions opts;
    opts.num_constants = 4;
    opts.facts_per_relation = 3;
    Instance d = data::RandomInstance(omq.data_schema(), opts, rng);
    auto via_rewriting = rewriting->Evaluate(d);
    ASSERT_TRUE(via_rewriting.ok());
    auto via_csp = CertainAnswersViaCsp(omq, d);
    ASSERT_TRUE(via_csp.ok());
    EXPECT_EQ(*via_rewriting, *via_csp) << "trial " << trial << "\n"
                                        << d.ToString();
  }
}

// --- Thm 5.7: query containment ----------------------------------------------

TEST(ContainmentTest, StrongerOntologyContainsWeaker) {
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("B", 1);
  auto o1 = dl::ParseOntology("A [= C");
  auto o2 = dl::ParseOntology("A [= C\nB [= C");
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  auto q1 = OntologyMediatedQuery::WithAtomicQuery(s, *o1, "C");
  auto q2 = OntologyMediatedQuery::WithAtomicQuery(s, *o2, "C");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto c12 = OmqContained(*q1, *q2);
  ASSERT_TRUE(c12.ok()) << c12.status().ToString();
  EXPECT_TRUE(*c12);
  auto c21 = OmqContained(*q2, *q1);
  ASSERT_TRUE(c21.ok());
  EXPECT_FALSE(*c21);
}

TEST(ContainmentTest, EquivalentFormulationsBothWays) {
  // A ⊑ B ⊓ C vs the pair of axioms: identical certain answers for B.
  Schema s;
  s.AddRelation("A", 1);
  auto o1 = dl::ParseOntology("A [= B & C");
  auto o2 = dl::ParseOntology("A [= B\nA [= C");
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  auto q1 = OntologyMediatedQuery::WithAtomicQuery(s, *o1, "B");
  auto q2 = OntologyMediatedQuery::WithAtomicQuery(s, *o2, "B");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto c12 = OmqContained(*q1, *q2);
  auto c21 = OmqContained(*q2, *q1);
  ASSERT_TRUE(c12.ok());
  ASSERT_TRUE(c21.ok());
  EXPECT_TRUE(*c12);
  EXPECT_TRUE(*c21);
}

TEST(ContainmentTest, DisjunctionWeakensAnswers) {
  Schema s;
  s.AddRelation("A", 1);
  auto o1 = dl::ParseOntology("A [= B");
  auto o2 = dl::ParseOntology("A [= B | C");
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  auto q1 = OntologyMediatedQuery::WithAtomicQuery(s, *o1, "B");
  auto q2 = OntologyMediatedQuery::WithAtomicQuery(s, *o2, "B");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  // q2 (with the weaker ontology) is contained in q1 but not conversely.
  auto c21 = OmqContained(*q2, *q1);
  ASSERT_TRUE(c21.ok());
  EXPECT_TRUE(*c21);
  auto c12 = OmqContained(*q1, *q2);
  ASSERT_TRUE(c12.ok());
  EXPECT_FALSE(*c12);
}

TEST(ContainmentTest, BoundedSearchAgreesWithTemplateMethod) {
  Schema s;
  s.AddRelation("A", 1);
  auto o1 = dl::ParseOntology("A [= B");
  auto o2 = dl::ParseOntology("A [= B | C");
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  auto q1 = OntologyMediatedQuery::WithAtomicQuery(s, *o1, "B");
  auto q2 = OntologyMediatedQuery::WithAtomicQuery(s, *o2, "B");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ContainmentOptions options;
  options.max_elements = 2;
  options.max_facts = 2;
  auto b21 = OmqContainedBounded(*q2, *q1, options);
  ASSERT_TRUE(b21.ok()) << b21.status().ToString();
  EXPECT_EQ(*b21, ContainmentVerdict::kContainedWithinBound);
  auto b12 = OmqContainedBounded(*q1, *q2, options);
  ASSERT_TRUE(b12.ok());
  EXPECT_EQ(*b12, ContainmentVerdict::kNotContained);
}

// --- Section 6: schema-free OMQs ---------------------------------------------

TEST(SchemaFreeTest, GuardedConstructionMatchesCsp) {
  // Thm 6.1: the schema-free OMQ built from K2 decides 2-colorability
  // even though its data schema exposes the guard symbols.
  Instance k2 = data::Clique("E", 2);
  auto omq = CspToSchemaFreeOmq(k2);
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  // Evaluate via the (exact) CSP compilation of the schema-free OMQ.
  auto compiled = CompileToCsp(*omq);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  for (int n : {3, 4, 5, 6}) {
    Instance cycle = data::DirectedCycle("E", n);
    Instance rebased = cycle.ReductTo(omq->data_schema());
    EXPECT_EQ(compiled->IsAnswer(rebased, {}), n % 2 == 1)
        << "cycle " << n;
  }
}

TEST(SchemaFreeTest, AdversarialGuardSymbolsInData) {
  // Data asserting Pick_/Chose_ facts must not break the equivalence
  // (Fact 1: the guards H_d remain freely switchable).
  Instance k2 = data::Clique("E", 2);
  auto omq = CspToSchemaFreeOmq(k2);
  ASSERT_TRUE(omq.ok());
  auto compiled = CompileToCsp(*omq);
  ASSERT_TRUE(compiled.ok());
  Instance odd = data::DirectedCycle("E", 3).ReductTo(omq->data_schema());
  Instance even = data::DirectedCycle("E", 4).ReductTo(omq->data_schema());
  // Sprinkle guard symbols into the data.
  for (Instance* d : {&odd, &even}) {
    data::ConstId v0 = *d->FindConstant("v0");
    data::ConstId v1 = *d->FindConstant("v1");
    auto pick = d->schema().FindRelation("Pick_v0");
    auto chose = d->schema().FindRelation("Chose_v1");
    ASSERT_TRUE(pick.has_value());
    ASSERT_TRUE(chose.has_value());
    d->AddFact(*pick, {v0, v1});
    d->AddFact(*chose, {v1});
  }
  EXPECT_TRUE(compiled->IsAnswer(odd, {}));
  EXPECT_FALSE(compiled->IsAnswer(even, {}));
}

TEST(SchemaFreeTest, GoalFactInDataForcesAnswer) {
  Instance k2 = data::Clique("E", 2);
  auto omq = CspToSchemaFreeOmq(k2);
  ASSERT_TRUE(omq.ok());
  auto compiled = CompileToCsp(*omq);
  ASSERT_TRUE(compiled.ok());
  Instance even = data::DirectedCycle("E", 4).ReductTo(omq->data_schema());
  auto goal = even.schema().FindRelation("Goal");
  ASSERT_TRUE(goal.has_value());
  even.AddFact(*goal, {*even.FindConstant("v0")});
  EXPECT_TRUE(compiled->IsAnswer(even, {}));
}

TEST(SchemaFreeTest, EmptinessAxiomReduction) {
  // Thm 6.2 plumbing: the rewritten q2 forbids q1's private symbols in
  // the data.
  Schema s;
  s.AddRelation("A", 1);
  auto o1 = dl::ParseOntology("A [= Private1\nPrivate1 [= C");
  auto o2 = dl::ParseOntology("A [= C");
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  auto q1 = OntologyMediatedQuery::WithAtomicQuery(s, *o1, "C");
  auto q2 = OntologyMediatedQuery::WithAtomicQuery(s, *o2, "C");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto rewritten = AddEmptinessAxiomsForNonSchemaSymbols(*q1, *q2);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  // Data asserting Private1 is inconsistent with the rewritten q2.
  auto compiled = CompileToCsp(*rewritten);
  ASSERT_TRUE(compiled.ok());
  Instance d(rewritten->data_schema());
  data::ConstId a = d.AddConstant("a");
  d.AddFact(*rewritten->data_schema().FindRelation("Private1"), {a});
  // Inconsistent => every element is an answer.
  EXPECT_EQ(compiled->Evaluate(d).size(), 1u);
}

}  // namespace
}  // namespace obda::core

namespace obda::core {
namespace {

TEST(RewritingExtractionTest, DatalogRewritingCompleteForWidthTwo) {
  // The K2-style OMQ has bounded width but NOT tree duality: the
  // canonical width-1 program alone would be incomplete (odd cycles);
  // the extraction must detect this and fall back to (2,3)-consistency.
  auto omq = CspToOmq(data::Clique("E", 2));
  ASSERT_TRUE(omq.ok());
  auto dl = IsDatalogRewritable(*omq);
  ASSERT_TRUE(dl.ok());
  ASSERT_TRUE(*dl);
  auto rewriting = ExtractDatalogRewriting(*omq);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  bool any_fallback = false;
  for (bool complete : rewriting->width_one_complete) {
    if (!complete) any_fallback = true;
  }
  EXPECT_TRUE(any_fallback);
  // Odd cycles are certain answers, even cycles are not — including C5,
  // which arc consistency alone cannot refute.
  for (int n : {3, 4, 5, 6}) {
    data::Instance cycle =
        data::DirectedCycle("E", n).ReductTo(omq->data_schema());
    auto answers = rewriting->Evaluate(cycle);
    ASSERT_TRUE(answers.ok());
    auto reference = CertainAnswersViaCsp(*omq, cycle);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(*answers, *reference) << "cycle " << n;
    EXPECT_EQ(answers->size() == 1, n % 2 == 1) << "cycle " << n;
  }
}

}  // namespace
}  // namespace obda::core
