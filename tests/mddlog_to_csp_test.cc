#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/csp_translation.h"
#include "core/mddlog_to_csp.h"
#include "core/mddlog_translation.h"
#include "data/generator.h"
#include "data/io.h"
#include "ddlog/eval.h"

namespace obda::core {
namespace {

using data::Instance;
using data::Schema;

Schema GraphSchema() {
  Schema s;
  s.AddRelation("E", 2);
  return s;
}

TEST(MddlogToCspTest, TwoColoringTemplateIsK2Like) {
  // The 2-coloring complement program yields a template whose core is
  // K2 (the two proper-coloring types, adjacent to each other).
  Schema s = GraphSchema();
  auto program = ddlog::ParseProgram(s, R"(
    B(x) | W(x) <- adom(x).
    goal <- B(x), B(y), E(x,y).
    goal <- W(x), W(y), E(x,y).
  )");
  ASSERT_TRUE(program.ok());
  auto csp = SimpleMddlogToCsp(*program);
  ASSERT_TRUE(csp.ok()) << csp.status().ToString();
  ASSERT_EQ(csp->templates().size(), 1u);
  // Odd cycles are answers, even cycles are not.
  EXPECT_TRUE(csp->IsAnswer(data::DirectedCycle("E", 5), {}));
  EXPECT_FALSE(csp->IsAnswer(data::DirectedCycle("E", 6), {}));
}

TEST(MddlogToCspTest, UnaryGoalMarkedTemplates) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("Good", 1);
  auto program = ddlog::ParseProgram(s, R"(
    P(x) <- Good(x).
    P(y) <- P(x), E(x,y).
    goal(x) <- P(x).
  )");
  ASSERT_TRUE(program.ok());
  auto csp = SimpleMddlogToCsp(*program);
  ASSERT_TRUE(csp.ok()) << csp.status().ToString();
  EXPECT_EQ(csp->arity(), 1);
  EXPECT_GT(csp->templates().size(), 0u);
  auto d = data::ParseInstance(s, "Good(a). E(a,b). E(z,a)");
  ASSERT_TRUE(d.ok());
  auto via_csp = csp->Evaluate(*d);
  auto via_program = ddlog::CertainAnswers(*program, *d);
  ASSERT_TRUE(via_program.ok());
  EXPECT_EQ(via_csp, via_program->tuples);
  EXPECT_EQ(via_csp.size(), 2u);
}

TEST(MddlogToCspTest, RejectsDisconnectedPrograms) {
  Schema s;
  s.AddRelation("A", 1);
  auto program = ddlog::ParseProgram(s, R"(
    P(x) <- A(x).
    goal(x) <- adom(x), P(y).
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(SimpleMddlogToCsp(*program).ok());
}

class MddlogToCspAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(MddlogToCspAgreementTest, AgreesWithProgramAndOmqRoute) {
  // Three-way: the direct Thm 4.6 construction, the SAT evaluation of
  // the program, and the OMQ detour (Thm 3.4(2) + Thm 4.6 forward).
  Schema s = GraphSchema();
  auto program = ddlog::ParseProgram(s, R"(
    B(x) | W(x) <- adom(x).
    Q(y) <- B(x), E(x,y).
    goal(x) <- Q(x), W(x).
  )");
  ASSERT_TRUE(program.ok());
  auto direct = SimpleMddlogToCsp(*program);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto omq = SimpleMddlogToOmq(*program);
  ASSERT_TRUE(omq.ok());
  auto via_omq = CompileToCsp(*omq);
  ASSERT_TRUE(via_omq.ok());

  base::Rng rng(GetParam());
  Instance d = data::RandomDigraph("E", 4, 5, rng);
  auto a_direct = direct->Evaluate(d);
  auto a_program = ddlog::CertainAnswers(*program, d);
  auto a_omq = via_omq->Evaluate(d);
  ASSERT_TRUE(a_program.ok());
  EXPECT_EQ(a_direct, a_program->tuples) << d.ToString();
  EXPECT_EQ(a_direct, a_omq) << d.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MddlogToCspAgreementTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace obda::core
