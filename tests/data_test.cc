#include <gtest/gtest.h>

#include "base/rng.h"
#include "data/generator.h"
#include "data/homomorphism.h"
#include "data/instance.h"
#include "data/io.h"
#include "data/ops.h"
#include "data/schema.h"

namespace obda::data {
namespace {

Schema GraphSchema() {
  Schema s;
  s.AddRelation("E", 2);
  return s;
}

TEST(SchemaTest, AddAndFind) {
  Schema s;
  RelationId r = s.AddRelation("R", 2);
  RelationId a = s.AddRelation("A", 1);
  EXPECT_EQ(s.NumRelations(), 2u);
  EXPECT_EQ(s.FindRelation("R"), r);
  EXPECT_EQ(s.FindRelation("A"), a);
  EXPECT_FALSE(s.FindRelation("B").has_value());
  EXPECT_EQ(s.Arity(r), 2);
  EXPECT_TRUE(s.IsBinary());
}

TEST(SchemaTest, TernaryIsNotBinary) {
  Schema s;
  s.AddRelation("P", 3);
  EXPECT_FALSE(s.IsBinary());
}

TEST(SchemaTest, UnionMergesAndDetectsConflicts) {
  Schema a;
  a.AddRelation("R", 2);
  Schema b;
  b.AddRelation("R", 2);
  b.AddRelation("A", 1);
  auto u = Schema::Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->NumRelations(), 2u);

  Schema c;
  c.AddRelation("R", 3);
  EXPECT_FALSE(Schema::Union(a, c).ok());
}

TEST(SchemaTest, LayoutCompatibility) {
  Schema a;
  a.AddRelation("R", 2);
  a.AddRelation("A", 1);
  Schema b;
  b.AddRelation("R", 2);
  b.AddRelation("A", 1);
  EXPECT_TRUE(a.LayoutCompatible(b));
  Schema c;
  c.AddRelation("A", 1);
  c.AddRelation("R", 2);
  EXPECT_FALSE(a.LayoutCompatible(c));
  EXPECT_TRUE(c.SubschemaOf(a));
}

TEST(InstanceTest, AddFactsAndDedupe) {
  Instance d(GraphSchema());
  ConstId a = d.AddConstant("a");
  ConstId b = d.AddConstant("b");
  EXPECT_TRUE(d.AddFact(0, {a, b}));
  EXPECT_FALSE(d.AddFact(0, {a, b}));
  EXPECT_TRUE(d.AddFact(0, {b, a}));
  EXPECT_EQ(d.NumFacts(), 2u);
  EXPECT_TRUE(d.HasFact(0, {a, b}));
  EXPECT_FALSE(d.HasFact(0, {a, a}));
}

TEST(InstanceTest, ActiveDomainExcludesIsolated) {
  Instance d(GraphSchema());
  ConstId a = d.AddConstant("a");
  ConstId b = d.AddConstant("b");
  d.AddConstant("isolated");
  d.AddFact(0, {a, b});
  auto adom = d.ActiveDomain();
  EXPECT_EQ(adom.size(), 2u);
  EXPECT_EQ(d.UniverseSize(), 3u);
}

TEST(InstanceTest, ZeroAryFacts) {
  Schema s;
  s.AddRelation("Flag", 0);
  Instance d(s);
  EXPECT_TRUE(d.AddFact(0, {}));
  EXPECT_FALSE(d.AddFact(0, {}));
  EXPECT_TRUE(d.HasFact(0, {}));
}

TEST(InstanceTest, InducedSubinstance) {
  Instance d(GraphSchema());
  ConstId a = d.AddConstant("a");
  ConstId b = d.AddConstant("b");
  ConstId c = d.AddConstant("c");
  d.AddFact(0, {a, b});
  d.AddFact(0, {b, c});
  Instance sub = d.InducedSubinstance({a, b});
  EXPECT_EQ(sub.UniverseSize(), 2u);
  EXPECT_EQ(sub.NumFacts(), 1u);
}

TEST(InstanceTest, ReductDropsRelations) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("A", 1);
  Instance d(s);
  ConstId a = d.AddConstant("a");
  d.AddFact(*s.FindRelation("E"), {a, a});
  d.AddFact(*s.FindRelation("A"), {a});
  Schema target;
  target.AddRelation("A", 1);
  Instance red = d.ReductTo(target);
  EXPECT_EQ(red.NumFacts(), 1u);
  EXPECT_EQ(red.UniverseSize(), 1u);
}

TEST(IoTest, ParseAgainstSchema) {
  Schema s;
  s.AddRelation("R", 2);
  s.AddRelation("A", 1);
  auto d = ParseInstance(s, "R(a,b). A(b). R(b,c)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->NumFacts(), 3u);
  EXPECT_EQ(d->UniverseSize(), 3u);
}

TEST(IoTest, ParseRejectsUnknownRelation) {
  Schema s;
  s.AddRelation("R", 2);
  EXPECT_FALSE(ParseInstance(s, "Q(a,b)").ok());
}

TEST(IoTest, ParseRejectsArityMismatch) {
  Schema s;
  s.AddRelation("R", 2);
  EXPECT_FALSE(ParseInstance(s, "R(a)").ok());
}

TEST(IoTest, ParseAuto) {
  auto d = ParseInstanceAuto("Edge(a,b) Edge(b,c) Label(a)");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->schema().NumRelations(), 2u);
  EXPECT_EQ(d->NumFacts(), 3u);
}

// --- Homomorphisms --------------------------------------------------------

TEST(HomTest, PathMapsIntoCycleAndLoop) {
  // A directed path winds around a directed 2-cycle, and collapses onto a
  // loop; it does NOT map into a single directed edge (no edge out of the
  // edge's head).
  Instance path = DirectedPath("E", 2);
  EXPECT_TRUE(*HomomorphismExists(path, DirectedCycle("E", 2)));
  EXPECT_TRUE(*HomomorphismExists(path, Loop("E")));
  EXPECT_FALSE(*HomomorphismExists(path, DirectedPath("E", 1)));
  // An edge maps into a path.
  EXPECT_TRUE(*HomomorphismExists(DirectedPath("E", 1), path));
}

TEST(HomTest, OddCycleToK2Fails) {
  Instance c3 = DirectedCycle("E", 3);
  Instance k2 = Clique("E", 2);
  EXPECT_FALSE(*HomomorphismExists(c3, k2));
  Instance c4 = DirectedCycle("E", 4);
  EXPECT_TRUE(*HomomorphismExists(c4, k2));
}

TEST(HomTest, K3ColorsTriangleButNotK4) {
  Instance k3 = Clique("E", 3);
  EXPECT_TRUE(*HomomorphismExists(DirectedCycle("E", 3), k3));
  EXPECT_FALSE(*HomomorphismExists(Clique("E", 4), k3));
}

TEST(HomTest, WitnessIsValid) {
  Instance c6 = DirectedCycle("E", 6);
  Instance k2 = Clique("E", 2);
  HomResult r = FindHomomorphism(c6, k2);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(IsHomomorphism(c6, k2, r.mapping));
}

TEST(HomTest, PinnedConstraintsRespected) {
  Instance path = DirectedPath("E", 1);  // v0 -> v1
  Instance k2 = Clique("E", 2);
  ConstId v0 = *path.FindConstant("v0");
  ConstId t0 = *k2.FindConstant("v0");
  ConstId t1 = *k2.FindConstant("v1");
  HomResult r = FindHomomorphism(path, k2, {{v0, t0}});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.mapping[v0], t0);
  r = FindHomomorphism(path, k2, {{v0, t1}});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.mapping[v0], t1);
}

TEST(HomTest, MarkedHomomorphism) {
  // Path a->b with both endpoints marked; target edge with marks swapped
  // admits no marked hom.
  Instance p = DirectedPath("E", 1);
  MarkedInstance src{p, {*p.FindConstant("v0"), *p.FindConstant("v1")}};
  Instance q = DirectedPath("E", 1);
  MarkedInstance tgt_ok{q, {*q.FindConstant("v0"), *q.FindConstant("v1")}};
  MarkedInstance tgt_bad{q, {*q.FindConstant("v1"), *q.FindConstant("v0")}};
  EXPECT_TRUE(MarkedHomomorphismExists(src, tgt_ok));
  EXPECT_FALSE(MarkedHomomorphismExists(src, tgt_bad));
}

TEST(HomTest, CountHomomorphisms) {
  // Single vertex, no facts -> maps anywhere: |universe(B)| homs.
  Schema s = GraphSchema();
  Instance single(s);
  single.AddConstant("x");
  Instance k3 = Clique("E", 3);
  EXPECT_EQ(*CountHomomorphisms(single, k3, 100), 3u);
  // Edge into K3: 6 homs.
  EXPECT_EQ(*CountHomomorphisms(DirectedPath("E", 1), k3, 100), 6u);
}

TEST(HomTest, EmptySourceHasTrivialHom) {
  Schema s = GraphSchema();
  Instance empty(s);
  Instance k3 = Clique("E", 3);
  EXPECT_TRUE(*HomomorphismExists(empty, k3));
  EXPECT_TRUE(*HomomorphismExists(empty, empty));
}

TEST(HomTest, NonemptySourceEmptyTargetFails) {
  Schema s = GraphSchema();
  Instance src(s);
  src.AddConstant("x");
  Instance empty(s);
  EXPECT_FALSE(*HomomorphismExists(src, empty));
}

TEST(HomTest, ZeroAryFactRequiresTargetFact) {
  Schema s;
  s.AddRelation("Flag", 0);
  Instance a(s);
  a.AddFact(0, {});
  Instance b(s);
  EXPECT_FALSE(*HomomorphismExists(a, b));
  b.AddFact(0, {});
  EXPECT_TRUE(*HomomorphismExists(a, b));
}

// --- Ops -------------------------------------------------------------------

TEST(OpsTest, DisjointUnionAddsUp) {
  Instance a = DirectedCycle("E", 3);
  Instance b = DirectedPath("E", 2);
  Instance u = DisjointUnion(a, b);
  EXPECT_EQ(u.NumFacts(), a.NumFacts() + b.NumFacts());
  EXPECT_EQ(u.UniverseSize(), a.UniverseSize() + b.UniverseSize());
  // Components map back into their originals.
  EXPECT_TRUE(*HomomorphismExists(a, u));
  EXPECT_TRUE(*HomomorphismExists(b, u));
}

TEST(OpsTest, ProductProjectsToFactors) {
  Instance a = DirectedCycle("E", 2);
  Instance b = DirectedCycle("E", 3);
  Instance p = DirectProduct(a, b);
  EXPECT_EQ(p.UniverseSize(), 6u);
  EXPECT_TRUE(*HomomorphismExists(p, a));
  EXPECT_TRUE(*HomomorphismExists(p, b));
}

TEST(OpsTest, ProductUniversalProperty) {
  // C -> A and C -> B implies C -> A x B (verified on an example).
  Instance c = DirectedPath("E", 3);
  Instance a = Clique("E", 2);
  Instance b = Clique("E", 3);
  ASSERT_TRUE(*HomomorphismExists(c, a));
  ASSERT_TRUE(*HomomorphismExists(c, b));
  EXPECT_TRUE(*HomomorphismExists(c, DirectProduct(a, b)));
}

TEST(OpsTest, QuotientCollapses) {
  Instance p = DirectedPath("E", 2);  // v0->v1->v2
  // Collapse v0 and v2 into one class.
  std::vector<ConstId> cls = {0, 1, 0};
  Instance q = Quotient(p, cls);
  EXPECT_EQ(q.UniverseSize(), 2u);
  EXPECT_EQ(q.NumFacts(), 2u);  // v0->v1 and v1->v0
}

TEST(OpsTest, DirectedCycleIsItsOwnCore) {
  // A directed cycle cannot retract onto a proper (path-shaped) subgraph.
  Instance c6 = DirectedCycle("E", 6);
  EXPECT_EQ(CoreOf(c6).UniverseSize(), 6u);
}

TEST(OpsTest, CoreOfUnionOfCompatibleCycles) {
  // C6 maps onto C3 (indices mod 3) but not conversely, so the core of
  // C3 ⊎ C6 is C3.
  Instance u = DisjointUnion(DirectedCycle("E", 3), DirectedCycle("E", 6));
  Instance core = CoreOf(u);
  EXPECT_EQ(core.UniverseSize(), 3u);
  EXPECT_TRUE(*HomomorphismExists(u, core));
  EXPECT_TRUE(*HomomorphismExists(core, u));
}

TEST(OpsTest, CoreOfCliqueIsItself) {
  Instance k3 = Clique("E", 3);
  Instance core = CoreOf(k3);
  EXPECT_EQ(core.UniverseSize(), 3u);
}

TEST(OpsTest, CoreDropsIsolatedElements) {
  Instance g = Clique("E", 2);
  g.AddConstant("isolated");
  Instance core = CoreOf(g);
  EXPECT_EQ(core.UniverseSize(), 2u);
}

TEST(OpsTest, MarkedCoreKeepsMarks) {
  // Path v0->v1->v2 with v2 marked: core must retain v2.
  Instance p = DirectedPath("E", 2);
  MarkedInstance m{p, {*p.FindConstant("v2")}};
  MarkedInstance core = CoreOf(m);
  ASSERT_EQ(core.marks.size(), 1u);
  EXPECT_EQ(core.instance.ConstantName(core.marks[0]), "v2");
}

// --- Property sweep: hom composition --------------------------------------

class HomPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HomPropertyTest, HomomorphismsCompose) {
  base::Rng rng(GetParam());
  Schema s = GraphSchema();
  Instance a = RandomDigraph("E", 4, 5, rng);
  Instance b = RandomDigraph("E", 5, 8, rng);
  Instance c = RandomDigraph("E", 5, 12, rng);
  HomResult ab = FindHomomorphism(a, b);
  HomResult bc = FindHomomorphism(b, c);
  if (ab.found && bc.found) {
    std::vector<ConstId> composed(a.UniverseSize());
    for (ConstId x = 0; x < a.UniverseSize(); ++x) {
      composed[x] = bc.mapping[ab.mapping[x]];
    }
    EXPECT_TRUE(IsHomomorphism(a, c, composed));
  }
}

TEST_P(HomPropertyTest, IdentityIsHomomorphism) {
  base::Rng rng(GetParam() + 1000);
  Instance a = RandomDigraph("E", 6, 10, rng);
  std::vector<ConstId> id(a.UniverseSize());
  for (ConstId x = 0; x < a.UniverseSize(); ++x) id[x] = x;
  EXPECT_TRUE(IsHomomorphism(a, a, id));
  EXPECT_TRUE(*HomomorphismExists(a, a));
}

TEST_P(HomPropertyTest, CoreIsHomEquivalent) {
  base::Rng rng(GetParam() + 2000);
  Instance a = RandomDigraph("E", 5, 7, rng);
  Instance core = CoreOf(a);
  EXPECT_TRUE(*HomomorphismExists(a, core));
  EXPECT_TRUE(*HomomorphismExists(core, a));
  // The core is itself a core: no further shrink possible.
  EXPECT_EQ(CoreOf(core).UniverseSize(), core.UniverseSize());
}

TEST_P(HomPropertyTest, ProductIsGreatestLowerBound) {
  base::Rng rng(GetParam() + 3000);
  Instance a = RandomDigraph("E", 4, 6, rng);
  Instance b = RandomDigraph("E", 4, 6, rng);
  Instance p = DirectProduct(a, b);
  EXPECT_TRUE(*HomomorphismExists(p, a));
  EXPECT_TRUE(*HomomorphismExists(p, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomPropertyTest, ::testing::Range(0, 12));

// --- Wire-format facts and round-tripping serialization ---------------------

TEST(IoFactTest, ParseFactsBasics) {
  auto facts = ParseFacts("R(a,b). A(b) R(b , c), P()");
  ASSERT_TRUE(facts.ok()) << facts.status().ToString();
  ASSERT_EQ(facts->size(), 4u);
  EXPECT_EQ((*facts)[0], (Fact{"R", {"a", "b"}}));
  EXPECT_EQ((*facts)[1], (Fact{"A", {"b"}}));
  EXPECT_EQ((*facts)[2], (Fact{"R", {"b", "c"}}));
  EXPECT_EQ((*facts)[3], (Fact{"P", {}}));
}

TEST(IoFactTest, QuotedNamesRoundTrip) {
  const Fact weird{"Rel Name", {"a b", "tab\there", "say \"hi\"", "back\\"}};
  auto parsed = ParseFacts(FormatFact(weird));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0], weird);
}

TEST(IoFactTest, MalformedInputsAreErrorsNotAborts) {
  const char* cases[] = {
      "R(a",              // unclosed argument list
      "R a, b)",          // missing open paren
      "(a, b)",           // missing relation name
      "R(a) trailing(",   // second fact malformed
      "\"unterminated",   // unterminated quote
      "\"bad\\q\"(a)",    // unknown escape
      "\"dangling\\",     // dangling escape at end
      "!const",           // directive without a name
  };
  for (const char* text : cases) {
    auto r = ParseFacts(text);
    EXPECT_FALSE(r.ok()) << "accepted: " << text;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), base::StatusCode::kInvalidArgument)
          << text;
    }
  }
  // Schema-level failures are errors too, never CHECK-aborts.
  Schema s = GraphSchema();
  EXPECT_FALSE(ParseInstance(s, "Unknown(a)").ok());
  EXPECT_FALSE(ParseInstance(s, "E(a)").ok());
  EXPECT_FALSE(ParseInstance(s, "E(a, b, c)").ok());
}

TEST(IoFactTest, ConstDirectiveCarriesIsolatedConstants) {
  // Note '.' is an identifier character, so an unquoted name absorbs an
  // adjacent dot; whitespace is the unambiguous separator after !const.
  auto parsed = ParseFactList("!const lonely E(a, b) !const \"two words\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->facts.size(), 1u);
  EXPECT_EQ(parsed->isolated_constants,
            (std::vector<std::string>{"lonely", "two words"}));
}

TEST(IoRoundTripTest, FormatParseIsExactAndFixpoint) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("Label Of", 1);  // relation name needing quoting
  s.AddRelation("P", 0);
  Instance d(s);
  d.AddConstant("isolated");       // universe element in no fact
  d.AddConstant("spa ced");        // constant needing quoting
  ASSERT_TRUE(d.AddFactByName("E", {"b", "a"}).ok());
  ASSERT_TRUE(d.AddFactByName("E", {"a", "spa ced"}).ok());
  ASSERT_TRUE(d.AddFactByName("Label Of", {"a"}).ok());
  ASSERT_TRUE(d.AddFactByName("P", {}).ok());

  const std::string text = FormatInstance(d);
  auto back = ParseInstance(s, text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->SameFactsAs(d));
  EXPECT_EQ(back->UniverseSize(), d.UniverseSize());
  EXPECT_TRUE(back->FindConstant("isolated").has_value());
  // The canonical form is a fixpoint: formatting the re-parse is
  // byte-identical (stable constant ordering included).
  EXPECT_EQ(FormatInstance(*back), text);
  auto again = ParseInstance(s, FormatInstance(*back));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), back->ToString());
}

TEST(IoRoundTripTest, RandomInstancesRoundTripDifferentially) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("A", 1);
  s.AddRelation("T", 3);
  for (int seed = 0; seed < 30; ++seed) {
    base::Rng rng(seed);
    RandomInstanceOptions options;
    options.num_constants = 3 + rng.Below(6);
    options.facts_per_relation = rng.Below(10);
    Instance d = RandomInstance(s, options, rng);
    const std::string text = FormatInstance(d);
    auto back = ParseInstance(s, text);
    ASSERT_TRUE(back.ok()) << "seed " << seed << ": "
                           << back.status().ToString();
    EXPECT_TRUE(back->SameFactsAs(d)) << "seed " << seed << "\n" << text;
    EXPECT_EQ(back->UniverseSize(), d.UniverseSize()) << "seed " << seed;
    EXPECT_EQ(FormatInstance(*back), text) << "seed " << seed;
  }
}

/// Column(rel, p)[i] must equal Tuple(rel, i)[p] for every live tuple —
/// the SoA mirror the vectorized index builds stream from.
void CheckColumnsMirrorTuples(const Instance& d) {
  for (RelationId r = 0; r < d.schema().NumRelations(); ++r) {
    const int arity = d.schema().Arity(r);
    for (int p = 0; p < arity; ++p) {
      auto col = d.Column(r, static_cast<std::size_t>(p));
      ASSERT_EQ(col.size(), d.NumTuples(r));
      for (std::uint32_t i = 0; i < d.NumTuples(r); ++i) {
        EXPECT_EQ(col[i], d.Tuple(r, i)[static_cast<std::size_t>(p)]);
      }
    }
  }
}

TEST(InstanceTest, ColumnsMirrorFlatUnderChurn) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("T", 3);
  s.AddRelation("U", 1);
  Instance d(s);
  base::Rng rng(88);
  std::vector<ConstId> consts;
  for (int i = 0; i < 12; ++i) {
    consts.push_back(d.AddConstant("c" + std::to_string(i)));
  }
  auto random_args = [&](RelationId r) {
    std::vector<ConstId> args;
    for (int p = 0; p < s.Arity(r); ++p) {
      args.push_back(consts[rng.Below(consts.size())]);
    }
    return args;
  };
  // Interleave adds and removes; removal swaps the last tuple into the
  // vacated slot, so the column mirror must track the compaction too.
  for (int step = 0; step < 400; ++step) {
    const RelationId r = static_cast<RelationId>(rng.Below(3));
    if (rng.Chance(2, 3) || d.NumTuples(r) == 0) {
      d.AddFact(r, random_args(r));
    } else {
      const std::uint32_t i =
          static_cast<std::uint32_t>(rng.Below(d.NumTuples(r)));
      auto t = d.Tuple(r, i);
      std::vector<ConstId> args(t.begin(), t.end());
      EXPECT_TRUE(d.RemoveFact(r, args));
    }
    if (step % 40 == 0) CheckColumnsMirrorTuples(d);
  }
  CheckColumnsMirrorTuples(d);
}

}  // namespace
}  // namespace obda::data
