// Edge cases, error paths, and printer/size utilities across modules —
// the behaviours a downstream user hits first when something goes wrong.

#include <gtest/gtest.h>

#include "core/csp_translation.h"
#include "core/omq.h"
#include "csp/consistency.h"
#include "csp/width.h"
#include "data/generator.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "ddlog/program.h"
#include "dl/parser.h"
#include "dl/reasoner.h"
#include "gfo/fo_formula.h"

namespace obda {
namespace {

using data::Instance;
using data::Schema;

// --- Error paths -------------------------------------------------------------

TEST(ErrorPathTest, InstanceParserOffsets) {
  Schema s;
  s.AddRelation("R", 2);
  auto r = data::ParseInstance(s, "R(a,)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), base::StatusCode::kInvalidArgument);
}

TEST(ErrorPathTest, ProgramParserRejectsArityDrift) {
  Schema s;
  s.AddRelation("E", 2);
  auto p = ddlog::ParseProgram(s, "P(x) <- E(x,y). goal(x) <- P(x,y).");
  EXPECT_FALSE(p.ok());
}

TEST(ErrorPathTest, OntologyParserMessages) {
  auto o = dl::ParseOntology("A [= some .B");
  ASSERT_FALSE(o.ok());
  EXPECT_FALSE(o.status().message().empty());
}

TEST(ErrorPathTest, ReasonerDecisionBitGuard) {
  // 30 independent concept names exceed a 8-bit budget.
  dl::Ontology o;
  std::vector<dl::Concept> seeds;
  for (int i = 0; i < 30; ++i) {
    seeds.push_back(dl::Concept::Name("N" + std::to_string(i)));
  }
  auto r = dl::TypeReasoner::Create(o, seeds, /*max_decision_bits=*/8);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), base::StatusCode::kResourceExhausted);
}

TEST(ErrorPathTest, CanonicalProgramElementGuard) {
  auto r = csp::CanonicalArcConsistencyProgram(data::Clique("E", 3),
                                               /*max_elements=*/2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), base::StatusCode::kResourceExhausted);
}

TEST(ErrorPathTest, EvalBudgetsSurface) {
  Schema s;
  s.AddRelation("E", 2);
  auto p = ddlog::ParseProgram(s, R"(
    C1(x) | C2(x) | C3(x) <- adom(x).
    goal <- C1(x), C1(y), E(x,y).
    goal <- C2(x), C2(y), E(x,y).
    goal <- C3(x), C3(y), E(x,y).
  )");
  ASSERT_TRUE(p.ok());
  ddlog::EvalOptions options;
  options.max_ground_clauses = 3;  // absurdly small
  auto r = ddlog::CertainAnswers(*p, data::Clique("E", 5), options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), base::StatusCode::kResourceExhausted);
}

TEST(ErrorPathTest, UcqOmqRejectsWrongQuerySchema) {
  Schema s;
  s.AddRelation("A", 1);
  dl::Ontology o;
  // Query written over a DIFFERENT schema than QuerySchema(S, O).
  Schema wrong;
  wrong.AddRelation("B", 1);
  fo::UnionOfCq q(wrong, 0);
  EXPECT_FALSE(core::OntologyMediatedQuery::Create(s, o, q).ok());
}

// --- Printers and size accounting ---------------------------------------------

TEST(PrinterTest, ProgramRoundTripsThroughText) {
  Schema s;
  s.AddRelation("E", 2);
  auto p = ddlog::ParseProgram(s, R"(
    P(x) | Q(x) <- adom(x).
    goal(x) <- P(x), E(x,y), Q(y).
  )");
  ASSERT_TRUE(p.ok());
  std::string text = p->ToString();
  EXPECT_NE(text.find("goal"), std::string::npos);
  EXPECT_NE(text.find("<-"), std::string::npos);
  EXPECT_GT(p->SymbolSize(), 10u);
}

TEST(PrinterTest, ConceptSizesMatchStructure) {
  auto c = dl::ParseConcept("some R.(A & ~B)");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->SymbolSize(), 2u + 3u + 1u + 2u);  // some-R + and + A + not-B
  auto o = dl::ParseOntology("A [= B\ntrans(R)");
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o->SymbolSize(), 3u + 2u);
}

TEST(PrinterTest, TypeReasonerRendering) {
  auto o = dl::ParseOntology("A [= B");
  ASSERT_TRUE(o.ok());
  auto r = dl::TypeReasoner::Create(*o);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->NumSurvivingTypes(), 0u);
  std::string t = r->TypeToString(0);
  EXPECT_EQ(t.front(), '{');
  EXPECT_EQ(t.back(), '}');
}

TEST(PrinterTest, FoFormulaRendering) {
  gfo::FoFormula f = gfo::FoFormula::Forall(
      {0}, gfo::FoFormula::Or({gfo::FoFormula::Not(
                                   gfo::FoFormula::Atom("A", {0})),
                               gfo::FoFormula::Equals(0, 0)}));
  EXPECT_NE(f.ToString().find("∀"), std::string::npos);
  EXPECT_GT(f.SymbolSize(), 3u);
}

TEST(PrinterTest, CoCspQueryRendering) {
  auto q = csp::CoCspQuery::ForTemplate(data::Clique("E", 2));
  std::string text = q.ToString();
  EXPECT_NE(text.find("template"), std::string::npos);
}

// --- Semantics corners ----------------------------------------------------------

TEST(CornerTest, EmptyOntologyOmqIsPlainQuery) {
  Schema s;
  s.AddRelation("A", 1);
  dl::Ontology o;
  auto omq = core::OntologyMediatedQuery::WithAtomicQuery(s, o, "A");
  ASSERT_TRUE(omq.ok());
  auto d = data::ParseInstance(s, "A(a)");
  ASSERT_TRUE(d.ok());
  auto answers = core::CertainAnswersViaCsp(*omq, *d);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST(CornerTest, SelfLoopInstanceAgainstAlcOmq) {
  // Reflexive data edges exercise the (τ, τ) edge-coherence path.
  auto o = dl::ParseOntology("A [= all R.B\nB [= ~A");
  ASSERT_TRUE(o.ok());
  Schema s;
  s.AddRelation("A", 1);
  s.AddRelation("R", 2);
  auto omq = core::OntologyMediatedQuery::WithAtomicQuery(s, *o, "B");
  ASSERT_TRUE(omq.ok());
  // A(a) with loop R(a,a): a must be B (successor of itself) — but B ⊑ ¬A
  // clashes with A(a): inconsistent, so everything is certain.
  auto d = data::ParseInstance(s, "A(a). R(a,a)");
  ASSERT_TRUE(d.ok());
  auto answers = core::CertainAnswersViaCsp(*omq, *d);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST(CornerTest, WnuBudgetPlumbsThrough) {
  // With a one-decision budget the search either still refutes via unit
  // propagation (a correct "no") or reports the exhausted budget — it
  // must never claim a polymorphism exists.
  csp::WidthOptions options;
  options.max_decisions = 1;
  auto r = csp::HasBoundedWidth(data::Clique("E", 3), options);
  if (r.ok()) {
    EXPECT_FALSE(*r);
  } else {
    EXPECT_EQ(r.status().code(), base::StatusCode::kResourceExhausted);
  }
}

TEST(CornerTest, AdomRulesIdempotent) {
  Schema s;
  s.AddRelation("E", 2);
  ddlog::Program p(s);
  ddlog::PredId goal = p.AddIdbPredicate("goal", 0);
  p.SetGoal(goal);
  ddlog::PredId a1 = p.EnsureAdom();
  std::size_t rules = p.rules().size();
  ddlog::PredId a2 = p.EnsureAdom();
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(p.rules().size(), rules);
}

}  // namespace
}  // namespace obda
