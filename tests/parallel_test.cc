// Determinism and safety net for the parallel certain-answer engine: the
// thread pool's scheduling must never leak into any observable output.
// Certain answers, the inconsistency flag, and obstruction sets are
// byte-identical at every thread count, and budget exhaustion surfaces as
// the same kResourceExhausted error naming the tripped budget.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "csp/obstruction.h"
#include "data/generator.h"
#include "data/instance.h"
#include "ddlog/eval.h"
#include "ddlog/program.h"

namespace obda {
namespace {

using data::Instance;
using data::Schema;

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, DefaultThreadCountReadsEnvironment) {
  ASSERT_EQ(setenv("OBDA_THREADS", "3", 1), 0);
  EXPECT_EQ(base::DefaultThreadCount(), 3);
  ASSERT_EQ(setenv("OBDA_THREADS", "0", 1), 0);
  EXPECT_GE(base::DefaultThreadCount(), 1);  // invalid values fall through
  ASSERT_EQ(unsetenv("OBDA_THREADS"), 0);
  EXPECT_GE(base::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 2, 8}) {
    base::ThreadPool pool(threads);
    const std::uint64_t n = 10'000;
    std::vector<std::atomic<int>> seen(n);
    for (auto& s : seen) s.store(0);
    base::Status status = pool.ParallelFor(
        n, /*min_chunk=*/7,
        [&](std::uint64_t begin, std::uint64_t end, int slot) {
          EXPECT_GE(slot, 0);
          EXPECT_LT(slot, threads);
          for (std::uint64_t i = begin; i < end; ++i) {
            seen[i].fetch_add(1);
          }
          return base::Status::Ok();
        });
    ASSERT_TRUE(status.ok());
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, SequentialPathReportsFirstFailingChunk) {
  base::ThreadPool pool(1);
  std::atomic<int> calls{0};
  base::Status status = pool.ParallelFor(
      100, /*min_chunk=*/10,
      [&](std::uint64_t begin, std::uint64_t, int) {
        calls.fetch_add(1);
        if (begin >= 30) {
          return base::InternalError("failed at " + std::to_string(begin));
        }
        return base::Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "failed at 30");
  EXPECT_EQ(calls.load(), 4);  // sequential path stops at the failure
}

TEST(ThreadPoolTest, ErrorCancelsAndPropagates) {
  base::ThreadPool pool(8);
  base::Status status = pool.ParallelFor(
      1'000, /*min_chunk=*/1,
      [&](std::uint64_t begin, std::uint64_t, int) {
        if (begin == 0) return base::InternalError("boom");
        return base::Status::Ok();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), base::StatusCode::kInternal);
  EXPECT_EQ(status.message(), "boom");  // chunk 0 has the lowest index
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  base::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  base::Status status = pool.ParallelFor(
      16, /*min_chunk=*/1,
      [&](std::uint64_t begin, std::uint64_t end, int) {
        for (std::uint64_t i = begin; i < end; ++i) {
          base::Status inner = pool.ParallelFor(
              8, /*min_chunk=*/1,
              [&](std::uint64_t b, std::uint64_t e, int) {
                for (std::uint64_t j = b; j < e; ++j) {
                  sum.fetch_add(i * 8 + j);
                }
                return base::Status::Ok();
              });
          if (!inner.ok()) return inner;
        }
        return base::Status::Ok();
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(sum.load(), 128u * 127u / 2);  // sum over [0, 16*8)
}

// --- CertainAnswers determinism --------------------------------------------

/// A random disjunctive program over {E/2, L/1} with 2-3 unary IDBs,
/// guess + constraint + propagation rules, and a goal of the given arity.
/// Draws enough variety to hit consistent, inconsistent, empty-answer and
/// full-answer cases across seeds.
ddlog::Program RandomProgram(base::Rng& rng, int goal_arity) {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("L", 1);
  ddlog::Program program(s);
  std::vector<ddlog::PredId> idb;
  const int num_idb = 2 + static_cast<int>(rng.Below(2));
  for (int i = 0; i < num_idb; ++i) {
    idb.push_back(program.AddIdbPredicate("P" + std::to_string(i), 1));
  }
  ddlog::PredId goal = program.AddIdbPredicate("goal", goal_arity);
  program.SetGoal(goal);
  ddlog::PredId adom = program.EnsureAdom();
  auto add = [&program](std::vector<ddlog::Atom> head,
                        std::vector<ddlog::Atom> body) {
    OBDA_CHECK(program
                   .AddRule(ddlog::Rule{std::move(head), std::move(body)})
                   .ok());
  };
  // Guess rule: a random disjunction of IDBs over adom.
  {
    std::vector<ddlog::Atom> head;
    for (ddlog::PredId p : idb) {
      if (rng.Chance(2, 3)) head.push_back({p, {0}});
    }
    if (head.empty()) head.push_back({idb[0], {0}});
    add(std::move(head), {{adom, {0}}});
  }
  // 2-4 random constraint/propagation rules over an E-edge (empty heads
  // allowed: those are the constraints that make instances inconsistent).
  const int extra = 2 + static_cast<int>(rng.Below(3));
  for (int r = 0; r < extra; ++r) {
    std::vector<ddlog::Atom> body = {{0 /*E*/, {0, 1}}};
    body.push_back({idb[rng.Below(idb.size())],
                    {static_cast<ddlog::VarId>(rng.Below(2))}});
    if (rng.Chance(1, 2)) {
      body.push_back({idb[rng.Below(idb.size())],
                      {static_cast<ddlog::VarId>(rng.Below(2))}});
    }
    std::vector<ddlog::Atom> head;
    if (rng.Chance(1, 2)) {
      head.push_back({idb[rng.Below(idb.size())],
                      {static_cast<ddlog::VarId>(rng.Below(2))}});
    }
    add(std::move(head), std::move(body));
  }
  // One unary trigger involving L, and the goal rule.
  add({{idb[rng.Below(idb.size())], {0}}}, {{1 /*L*/, {0}}});
  switch (goal_arity) {
    case 0:
      add({{goal, {}}},
          {{0 /*E*/, {0, 1}}, {idb[rng.Below(idb.size())], {0}}});
      break;
    case 1:
      add({{goal, {0}}}, {{idb[rng.Below(idb.size())], {0}}});
      break;
    default:
      add({{goal, {0, 1}}},
          {{0 /*E*/, {0, 1}}, {idb[rng.Below(idb.size())], {0}}});
      break;
  }
  return program;
}

Instance RandomEdbInstance(base::Rng& rng, const Schema& s) {
  Instance d(s);
  const int n = 3 + static_cast<int>(rng.Below(3));
  for (int i = 0; i < n; ++i) d.AddConstant("c" + std::to_string(i));
  const int edges = 4 + static_cast<int>(rng.Below(4));
  for (int e = 0; e < edges; ++e) {
    d.AddFact(0, {static_cast<data::ConstId>(rng.Below(n)),
                  static_cast<data::ConstId>(rng.Below(n))});
  }
  if (rng.Chance(2, 3)) {
    d.AddFact(1, {static_cast<data::ConstId>(rng.Below(n))});
  }
  return d;
}

/// FNV-1a over the answer set (inconsistency flag + every tuple) — the
/// same mixing the benches use, so goldens can be compared across
/// binaries.
std::uint64_t AnswerChecksum(const ddlog::Answers& answers) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(answers.inconsistent ? 1 : 0);
  for (const auto& tuple : answers.tuples) {
    mix(tuple.size());
    for (data::ConstId c : tuple) mix(c);
  }
  return h;
}

TEST(ParallelCertainAnswersTest, ByteIdenticalAcrossThreadCounts) {
  for (int seed = 0; seed < 50; ++seed) {
    base::Rng rng(seed);
    ddlog::Program program = RandomProgram(rng, seed % 3);
    ASSERT_TRUE(program.Validate().ok()) << "seed " << seed;
    Instance d = RandomEdbInstance(rng, program.edb_schema());

    ddlog::EvalOptions sequential;
    sequential.threads = 1;
    auto reference = ddlog::CertainAnswers(program, d, sequential);
    ASSERT_TRUE(reference.ok()) << "seed " << seed << ": "
                                << reference.status().ToString();
    for (int threads : {2, 8}) {
      ddlog::EvalOptions options;
      options.threads = threads;
      auto parallel = ddlog::CertainAnswers(program, d, options);
      ASSERT_TRUE(parallel.ok()) << "seed " << seed << " threads "
                                 << threads;
      EXPECT_EQ(parallel->inconsistent, reference->inconsistent)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(parallel->tuples, reference->tuples)
          << "seed " << seed << " threads " << threads;
    }
  }
}

/// Golden answer checksums for the 50-seed battery, recorded from the
/// PR-3 engine (chronological DPLL solver, pre-CDCL). Any solver rewrite
/// must keep the certain answers and inconsistency verdicts bit-identical
/// to these, at every thread count — the engines may only get faster,
/// never different.
constexpr std::uint64_t kPreCdclGoldens[50] = {
    0x44bd2bd473ccf799ull, 0x4e904c8e56f9ccc6ull, 0x806910a4fd5062beull,
    0x9a691300c548b8fbull, 0x895f2dc36f8b554dull, 0x9b930d3236c52cbcull,
    0x9a691300c548b8fbull, 0x4e904c8e56f9ccc6ull, 0x44bd2bd473ccf799ull,
    0x9a65ad00c545d5d2ull, 0x4e904c8e56f9ccc6ull, 0x44bd2bd473ccf799ull,
    0x9a65ad00c545d5d2ull, 0x44bd2bd473ccf799ull, 0x850fee6dcc06c412ull,
    0x9a65ad00c545d5d2ull, 0x895f2dc36f8b554dull, 0x44bd2bd473ccf799ull,
    0x9a691300c548b8fbull, 0x100772df08244292ull, 0x850fee6dcc06c412ull,
    0x9a65ad00c545d5d2ull, 0x44bd2bd473ccf799ull, 0x44bd2bd473ccf799ull,
    0x9a691300c548b8fbull, 0xa940e14f3a8f72beull, 0x44bd2bd473ccf799ull,
    0x9a65ad00c545d5d2ull, 0x4539ca4c148b1245ull, 0x2387307a10bb8c8aull,
    0x9a65ad00c545d5d2ull, 0x100772df08244292ull, 0x69ece4ed924d3552ull,
    0x9a65ad00c545d5d2ull, 0x44bd2bd473ccf799ull, 0x0233eea84b4b9dacull,
    0x44bd2bd473ccf799ull, 0x44bd2bd473ccf799ull, 0x850fee6dcc06c412ull,
    0x44bd2bd473ccf799ull, 0x100772df08244292ull, 0x46cb68e225fc4986ull,
    0x9a691300c548b8fbull, 0x44bd2bd473ccf799ull, 0x46cb68e225fc4986ull,
    0x9a691300c548b8fbull, 0x44bd2bd473ccf799ull, 0x44bd2bd473ccf799ull,
    0x9a65ad00c545d5d2ull, 0x100772df08244292ull,
};

TEST(ParallelCertainAnswersTest, AnswersUnchangedByCdclSwap) {
  for (int seed = 0; seed < 50; ++seed) {
    base::Rng rng(seed);
    ddlog::Program program = RandomProgram(rng, seed % 3);
    Instance d = RandomEdbInstance(rng, program.edb_schema());
    for (int threads : {1, 2, 8}) {
      ddlog::EvalOptions options;
      options.threads = threads;
      auto answers = ddlog::CertainAnswers(program, d, options);
      ASSERT_TRUE(answers.ok()) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(AnswerChecksum(*answers), kPreCdclGoldens[seed])
          << "seed " << seed << " threads " << threads;
    }
  }
}

// --- Obstruction determinism ------------------------------------------------

TEST(ParallelObstructionTest, ByteIdenticalAcrossThreadCounts) {
  base::Rng rng(71);
  std::vector<Instance> templates;
  templates.push_back(data::DirectedPath("E", 1));
  templates.push_back(data::Loop("E"));
  templates.push_back(data::RandomDigraph("E", 3, 4, rng));
  for (const Instance& b : templates) {
    csp::ObstructionOptions sequential;
    sequential.max_nodes = 3;
    sequential.threads = 1;
    auto reference = csp::TreeObstructions(b, sequential);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    std::vector<std::string> expected;
    for (const Instance& t : *reference) expected.push_back(t.ToString());
    for (int threads : {2, 8}) {
      csp::ObstructionOptions options;
      options.max_nodes = 3;
      options.threads = threads;
      auto parallel = csp::TreeObstructions(b, options);
      ASSERT_TRUE(parallel.ok()) << "threads " << threads;
      ASSERT_EQ(parallel->size(), expected.size()) << "threads " << threads;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ((*parallel)[i].ToString(), expected[i])
            << "threads " << threads << " obstruction " << i;
      }
    }
  }
}

// --- Budget cancellation ----------------------------------------------------

/// The bench's 2-coloring shape, small: every probe costs real decisions,
/// so a tight global budget trips mid-sweep on every thread count.
struct TwoColoring {
  ddlog::Program program;
  Instance instance;
};

TwoColoring BuildTwoColoring(int nodes, int edges, base::Rng& rng) {
  Schema s;
  s.AddRelation("E", 2);
  ddlog::Program program(s);
  ddlog::PredId a = program.AddIdbPredicate("A", 1);
  ddlog::PredId b = program.AddIdbPredicate("B", 1);
  ddlog::PredId goal = program.AddIdbPredicate("goal", 2);
  program.SetGoal(goal);
  ddlog::PredId adom = program.EnsureAdom();
  OBDA_CHECK(program.AddRule({{{a, {0}}, {b, {0}}}, {{adom, {0}}}}).ok());
  OBDA_CHECK(
      program.AddRule({{}, {{0, {0, 1}}, {a, {0}}, {a, {1}}}}).ok());
  OBDA_CHECK(
      program.AddRule({{{goal, {0, 1}}}, {{0, {0, 1}}, {b, {0}}, {b, {1}}}})
          .ok());
  Instance d(s);
  for (int i = 0; i < nodes; ++i) d.AddConstant("n" + std::to_string(i));
  for (int e = 0; e < edges; ++e) {
    d.AddFact(0, {static_cast<data::ConstId>(rng.Below(nodes)),
                  static_cast<data::ConstId>(rng.Below(nodes))});
  }
  return TwoColoring{std::move(program), std::move(d)};
}

TEST(ParallelBudgetTest, SharedDecisionBudgetTripsOnEveryThreadCount) {
  base::Rng rng(5);
  TwoColoring tc = BuildTwoColoring(8, 16, rng);
  for (int threads : {1, 2, 8}) {
    ddlog::EvalOptions options;
    options.threads = threads;
    options.max_decisions = 50;
    auto answers = ddlog::CertainAnswers(tc.program, tc.instance, options);
    ASSERT_FALSE(answers.ok()) << "threads " << threads;
    EXPECT_EQ(answers.status().code(), base::StatusCode::kResourceExhausted)
        << "threads " << threads;
    EXPECT_NE(answers.status().message().find("max_decisions=50"),
              std::string::npos)
        << "threads " << threads << ": " << answers.status().ToString();
  }
}

TEST(ParallelBudgetTest, GroundClauseBudgetNamesItself) {
  base::Rng rng(6);
  TwoColoring tc = BuildTwoColoring(8, 16, rng);
  ddlog::EvalOptions options;
  options.max_ground_clauses = 5;
  auto answers = ddlog::CertainAnswers(tc.program, tc.instance, options);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), base::StatusCode::kResourceExhausted);
  EXPECT_NE(answers.status().message().find("max_ground_clauses=5"),
            std::string::npos)
      << answers.status().ToString();
}

}  // namespace
}  // namespace obda
