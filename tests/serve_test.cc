// Serving-layer tests (DESIGN.md §8): prepared-query answers must be
// bit-identical to a fresh engine run at every thread count across
// ASSERT/RETRACT sequences; the artifact LRU must evict; the scheduler
// must shed and expire deterministically; concurrent sessions must be
// race-free (this binary is in the tsan CI job).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "base/rng.h"
#include "core/csp_translation.h"
#include "data/generator.h"
#include "ddlog/eval.h"
#include "dl/parser.h"
#include "obs/metrics.h"
#include "serve/prepared.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/session.h"

namespace obda::serve {
namespace {

using data::Fact;
using data::Schema;

Schema ElSchema() {
  Schema s;
  s.AddRelation("E", 2);
  s.AddRelation("L", 1);
  return s;
}

/// Random simple monadic program over {E/2, L/1} (the shape used by the
/// cross-formalism property sweep in random_program_test.cc).
ddlog::Program RandomProgram(base::Rng& rng, bool boolean_goal) {
  ddlog::Program program(ElSchema());
  std::vector<ddlog::PredId> idb;
  for (int i = 0; i < 2 + static_cast<int>(rng.Below(2)); ++i) {
    idb.push_back(program.AddIdbPredicate("P" + std::to_string(i), 1));
  }
  ddlog::PredId goal = program.AddIdbPredicate("goal", boolean_goal ? 0 : 1);
  program.SetGoal(goal);
  ddlog::PredId adom = program.EnsureAdom();
  auto add = [&program](std::vector<ddlog::Atom> head,
                        std::vector<ddlog::Atom> body) {
    OBDA_CHECK(
        program.AddRule(ddlog::Rule{std::move(head), std::move(body)}).ok());
  };
  {
    std::vector<ddlog::Atom> head;
    for (ddlog::PredId p : idb) {
      if (rng.Chance(2, 3)) head.push_back({p, {0}});
    }
    if (head.empty()) head.push_back({idb[0], {0}});
    add(std::move(head), {{adom, {0}}});
  }
  const int extra = 2 + static_cast<int>(rng.Below(3));
  for (int r = 0; r < extra; ++r) {
    std::vector<ddlog::Atom> body = {{0 /*E*/, {0, 1}}};
    body.push_back({idb[rng.Below(idb.size())],
                    {static_cast<ddlog::VarId>(rng.Below(2))}});
    std::vector<ddlog::Atom> head;
    if (rng.Chance(1, 2)) {
      head.push_back({idb[rng.Below(idb.size())],
                      {static_cast<ddlog::VarId>(rng.Below(2))}});
    }
    add(std::move(head), std::move(body));
  }
  add({{idb[rng.Below(idb.size())], {0}}}, {{1 /*L*/, {0}}});
  if (boolean_goal) {
    add({{goal, {}}}, {{0 /*E*/, {0, 1}}, {idb[rng.Below(idb.size())], {0}}});
  } else {
    add({{goal, {0}}}, {{idb[rng.Below(idb.size())], {0}}});
  }
  return program;
}

Fact RandomFact(base::Rng& rng, int num_constants) {
  auto c = [&] { return "c" + std::to_string(rng.Below(num_constants)); };
  if (rng.Chance(2, 3)) return Fact{"E", {c(), c()}};
  return Fact{"L", {c()}};
}

// --- Session ----------------------------------------------------------------

TEST(SessionTest, MutationsAndGenerations) {
  Session session(ElSchema());
  EXPECT_EQ(session.generation(), 0u);
  ASSERT_TRUE(*session.Assert(Fact{"E", {"a", "b"}}));
  EXPECT_EQ(session.generation(), 1u);
  // Duplicate assert: no-op, generation unchanged.
  ASSERT_FALSE(*session.Assert(Fact{"E", {"a", "b"}}));
  EXPECT_EQ(session.generation(), 1u);
  // Retract of an absent fact: no-op.
  ASSERT_FALSE(*session.Retract(Fact{"L", {"a"}}));
  EXPECT_EQ(session.generation(), 1u);
  ASSERT_TRUE(*session.Retract(Fact{"E", {"a", "b"}}));
  EXPECT_EQ(session.generation(), 2u);
  EXPECT_EQ(session.num_facts(), 0u);

  EXPECT_FALSE(session.Assert(Fact{"R", {"a"}}).ok());       // unknown rel
  EXPECT_FALSE(session.Assert(Fact{"E", {"a"}}).ok());       // arity
  EXPECT_EQ(session.Assert(Fact{"E", {"a"}}).status().code(),
            base::StatusCode::kInvalidArgument);
}

TEST(SessionTest, MaterializationIsDeterministicAndCached) {
  Session a(ElSchema());
  Session b(ElSchema());
  base::Rng rng(7);
  std::vector<Fact> ops;
  for (int i = 0; i < 40; ++i) ops.push_back(RandomFact(rng, 5));
  for (const Fact& f : ops) {
    (void)*a.Assert(f);
    (void)*b.Assert(f);
  }
  Session::Snapshot sa = a.Materialize();
  Session::Snapshot sb = b.Materialize();
  // Same op sequence => bit-identical snapshots (constants interned in
  // first-occurrence order), not just equal fact sets.
  EXPECT_EQ(sa.instance->ToString(), sb.instance->ToString());
  EXPECT_TRUE(sa.instance->SameFactsAs(*sb.instance));
  // Unchanged generation => the same cached snapshot object.
  EXPECT_EQ(sa.instance.get(), a.Materialize().instance.get());
  (void)*a.Retract(ops[0]);
  EXPECT_NE(sa.instance.get(), a.Materialize().instance.get());
  // The old snapshot is still alive and unchanged (plans may pin it).
  EXPECT_EQ(sa.instance->ToString(), sb.instance->ToString());
}

// --- Prepared vs direct, across mutations, at every thread count ------------

class PreparedVsDirectTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PreparedVsDirectTest, BitIdenticalAnswersAcrossMutations) {
  const int seed = std::get<0>(GetParam());
  const int threads = std::get<1>(GetParam());
  base::Rng rng(1000 * seed + threads);
  ddlog::Program program = RandomProgram(rng, seed % 2 == 0);
  ASSERT_TRUE(program.Validate().ok());

  PrepareOptions options;
  options.eval.threads = threads;
  auto prepared = PreparedQuery::FromProgram(program, options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  Session session(ElSchema());
  std::vector<Fact> live;
  std::uint64_t queried_generation = 0;
  std::uint64_t queried_content = 0;
  bool ever_queried = false;
  for (int round = 0; round < 3; ++round) {
    // A batch of random mutations (asserts, and retracts of live facts).
    // Duplicate asserts are no-ops, so a batch may leave the generation
    // unchanged — then the first query below legitimately serves hot.
    const int muts = 1 + static_cast<int>(rng.Below(6));
    for (int m = 0; m < muts; ++m) {
      if (!live.empty() && rng.Chance(1, 4)) {
        const std::size_t i = rng.Below(live.size());
        ASSERT_TRUE(session.Retract(live[i]).ok());
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        Fact f = RandomFact(rng, 5);
        auto added = session.Assert(f);
        ASSERT_TRUE(added.ok());
        if (*added) live.push_back(std::move(f));
      }
    }
    // Two queries per round: the second must serve hot (no re-ground).
    ExecInfo info1, info2;
    auto a1 = (*prepared)->Execute(session, RequestBudget{}, &info1);
    ASSERT_TRUE(a1.ok()) << a1.status().ToString();
    auto a2 = (*prepared)->Execute(session, RequestBudget{}, &info2);
    ASSERT_TRUE(a2.ok()) << a2.status().ToString();
    const Session::Snapshot snap = session.Materialize();
    const bool data_changed =
        !ever_queried || snap.generation != queried_generation;
    const bool content_changed =
        !ever_queried || snap.content_hash != queried_content;
    if (!ever_queried) {
      EXPECT_TRUE(info1.grounded);  // cold: the first query must ground
      EXPECT_FALSE(info1.delta);
    } else if (!data_changed || !content_changed) {
      // Unchanged data (or a content round-trip): served straight from
      // the pinned grounding, no grounding work of any kind.
      EXPECT_FALSE(info1.grounded);
      EXPECT_FALSE(info1.delta);
    } else {
      // A real mutation is absorbed either by an incremental delta patch
      // or by a full re-ground — never served stale.
      EXPECT_TRUE(info1.grounded || info1.delta);
    }
    ever_queried = true;
    queried_generation = snap.generation;
    queried_content = snap.content_hash;
    EXPECT_FALSE(info2.grounded);
    EXPECT_FALSE(info2.delta);
    EXPECT_EQ(info1.fingerprint, info2.fingerprint);
    EXPECT_EQ(a1->tuples, a2->tuples);
    EXPECT_EQ(a1->inconsistent, a2->inconsistent);

    // Fresh engine run on the same snapshot: bit-identical.
    ddlog::EvalOptions fresh_options;
    fresh_options.threads = threads;
    auto fresh = ddlog::CertainAnswers(
        program, *session.Materialize().instance, fresh_options);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_EQ(a1->tuples, fresh->tuples)
        << "seed " << seed << " threads " << threads << " round " << round
        << "\nprogram:\n" << program.ToString();
    EXPECT_EQ(a1->inconsistent, fresh->inconsistent);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PreparedVsDirectTest,
    ::testing::Combine(::testing::Range(0, 50), ::testing::Values(1, 2, 8)));

TEST(PreparedQueryTest, DeltaPatchesAbsorbSmallMutations) {
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().ResetAll();
  obs::Counter& regrounds = obs::GetCounter("ddlog.regrounds");
  obs::Counter& delta_grounds = obs::GetCounter("ddlog.delta_grounds");

  base::Rng rng(3);
  ddlog::Program program = RandomProgram(rng, false);
  auto prepared = PreparedQuery::FromProgram(program, PrepareOptions());
  ASSERT_TRUE(prepared.ok());
  Session session(ElSchema());
  ASSERT_TRUE(session.Assert(Fact{"E", {"a", "b"}}).ok());
  ASSERT_TRUE(session.Assert(Fact{"L", {"a"}}).ok());

  ExecInfo info;
  ASSERT_TRUE((*prepared)->Execute(session, RequestBudget{}, &info).ok());
  const ddlog::GroundingFingerprint first = info.fingerprint;
  EXPECT_TRUE(info.grounded);          // cold: first grounding
  EXPECT_FALSE(info.delta);
  EXPECT_EQ(regrounds.value(), 0u);    // ... is not a RE-ground
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*prepared)->Execute(session, RequestBudget{}, &info).ok());
    EXPECT_FALSE(info.grounded);
    EXPECT_FALSE(info.delta);
    EXPECT_EQ(regrounds.value(), 0u);  // steady state: zero re-grounds
  }
  // A small mutation is absorbed by an incremental delta patch, never a
  // full re-ground; the patched grounding covers different data, so its
  // fingerprint moves.
  ASSERT_TRUE(session.Assert(Fact{"L", {"b"}}).ok());
  ASSERT_TRUE((*prepared)->Execute(session, RequestBudget{}, &info).ok());
  EXPECT_FALSE(info.grounded);
  EXPECT_TRUE(info.delta);
  EXPECT_EQ(regrounds.value(), 0u);
  EXPECT_EQ(delta_grounds.value(), 1u);
  EXPECT_NE(first, info.fingerprint);
  // Retracting it is again a delta patch: the pinned grounding has moved
  // on, so from its point of view this is not a content round-trip.
  ASSERT_TRUE(session.Retract(Fact{"L", {"b"}}).ok());
  ASSERT_TRUE((*prepared)->Execute(session, RequestBudget{}, &info).ok());
  EXPECT_FALSE(info.grounded);
  EXPECT_TRUE(info.delta);
  EXPECT_EQ(regrounds.value(), 0u);
  EXPECT_EQ(delta_grounds.value(), 2u);
  EXPECT_EQ((*prepared)->stats().delta_grounds.load(), 2u);
  obs::EnableMetrics(false);
}

TEST(PreparedQueryTest, ContentFingerprintRoundTripServesHot) {
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().ResetAll();
  obs::Counter& regrounds = obs::GetCounter("ddlog.regrounds");

  base::Rng rng(3);
  ddlog::Program program = RandomProgram(rng, false);
  auto prepared = PreparedQuery::FromProgram(program, PrepareOptions());
  ASSERT_TRUE(prepared.ok());
  Session session(ElSchema());
  ASSERT_TRUE(session.Assert(Fact{"E", {"a", "b"}}).ok());
  ASSERT_TRUE(session.Assert(Fact{"L", {"a"}}).ok());

  ExecInfo info;
  auto a1 = (*prepared)->Execute(session, RequestBudget{}, &info);
  ASSERT_TRUE(a1.ok());
  const ddlog::GroundingFingerprint first = info.fingerprint;
  const std::uint64_t gen = session.generation();

  // Mutate and mutate back WITHOUT querying in between: the generation
  // moves by two but the fact-set content fingerprint round-trips, so the
  // next query recognizes the identical fact set and serves straight from
  // the pinned grounding — no re-ground, no delta patch, and the very
  // same fingerprint.
  ASSERT_TRUE(session.Assert(Fact{"L", {"b"}}).ok());
  ASSERT_TRUE(session.Retract(Fact{"L", {"b"}}).ok());
  EXPECT_EQ(session.generation(), gen + 2);
  auto a2 = (*prepared)->Execute(session, RequestBudget{}, &info);
  ASSERT_TRUE(a2.ok());
  EXPECT_FALSE(info.grounded);
  EXPECT_FALSE(info.delta);
  EXPECT_EQ(info.generation, gen + 2);
  EXPECT_EQ(first, info.fingerprint);
  EXPECT_EQ(a1->tuples, a2->tuples);
  EXPECT_EQ(a1->inconsistent, a2->inconsistent);
  EXPECT_EQ(regrounds.value(), 0u);
  EXPECT_EQ((*prepared)->stats().delta_grounds.load(), 0u);
  EXPECT_EQ((*prepared)->stats().hot_hits.load(), 1u);
  obs::EnableMetrics(false);
}

TEST(PreparedQueryTest, BudgetExhaustionIsPerRequest) {
  base::Rng rng(11);
  ddlog::Program program = RandomProgram(rng, false);
  auto prepared = PreparedQuery::FromProgram(program, PrepareOptions());
  ASSERT_TRUE(prepared.ok());
  Session session(ElSchema());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(session.Assert(RandomFact(rng, 6)).ok());
  }
  // An absurdly small budget fails the request...
  auto starved =
      (*prepared)->Execute(session, RequestBudget{/*max_decisions=*/1});
  if (!starved.ok()) {
    EXPECT_EQ(starved.status().code(), base::StatusCode::kResourceExhausted);
  }
  // ... but the next request re-arms the budget and succeeds, on the
  // same warmed grounding.
  auto fine = (*prepared)->Execute(session, RequestBudget{});
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  auto fresh = ddlog::CertainAnswers(program,
                                     *session.Materialize().instance);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fine->tuples, fresh->tuples);
}

// --- Plan selection ---------------------------------------------------------

TEST(PlanSelectionTest, RewritableOmqTakesDatalogPlanAndPlansAgree) {
  auto ontology =
      dl::ParseOntology("LymeDisease | Listeriosis [= BacterialInfection");
  ASSERT_TRUE(ontology.ok());
  Schema s;
  s.AddRelation("LymeDisease", 1);
  s.AddRelation("Listeriosis", 1);
  auto omq = core::OntologyMediatedQuery::WithAtomicQuery(
      s, *ontology, "BacterialInfection");
  ASSERT_TRUE(omq.ok());

  // The cost-based planner prefers the FO tier for this query; force the
  // datalog tier to pin the canonical-datalog plan under test.
  auto auto_plan = PreparedQuery::FromOmq(*omq, PrepareOptions());
  ASSERT_TRUE(auto_plan.ok()) << auto_plan.status().ToString();
  EXPECT_EQ((*auto_plan)->plan(), PlanKind::kFoRewriting);

  PrepareOptions datalog_only;
  datalog_only.planner.force = PlanTier::kDatalog;
  auto rewriting = PreparedQuery::FromOmq(*omq, datalog_only);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  EXPECT_EQ((*rewriting)->plan(), PlanKind::kDatalogRewriting);

  PrepareOptions sat_only;
  sat_only.allow_rewriting = false;
  auto sat = PreparedQuery::FromOmq(*omq, sat_only);
  ASSERT_TRUE(sat.ok()) << sat.status().ToString();
  EXPECT_EQ((*sat)->plan(), PlanKind::kSatGrounding);
  EXPECT_EQ((*sat)->tier(), PlanTier::kSat);

  Session ra(s), rb(s);
  base::Rng rng(5);
  for (int round = 0; round < 4; ++round) {
    const std::string c = "p" + std::to_string(rng.Below(4));
    const Fact f{rng.Chance(1, 2) ? "LymeDisease" : "Listeriosis", {c}};
    ASSERT_TRUE(ra.Assert(f).ok());
    ASSERT_TRUE(rb.Assert(f).ok());
    ExecInfo ia, ib;
    auto aa = (*rewriting)->Execute(ra, RequestBudget{}, &ia);
    auto ab = (*sat)->Execute(rb, RequestBudget{}, &ib);
    ASSERT_TRUE(aa.ok()) << aa.status().ToString();
    ASSERT_TRUE(ab.ok()) << ab.status().ToString();
    // The two plans answer over identically-materialized snapshots, so
    // raw ConstId tuples must agree bit-for-bit.
    EXPECT_EQ(aa->tuples, ab->tuples) << "round " << round;
    EXPECT_FALSE(ia.grounded);  // rewriting plan never grounds
  }
}

TEST(PlanSelectionTest, NonRewritableOmqFallsBackToSat) {
  // coCSP(K3) — 3-colorability complement — is neither FO- nor
  // datalog-rewritable (paper Example 5.2), so the SAT plan must be
  // selected even with rewriting allowed.
  auto omq = core::CspToOmq(data::Clique("E", 3));
  ASSERT_TRUE(omq.ok()) << omq.status().ToString();
  auto prepared = PreparedQuery::FromOmq(*omq, PrepareOptions());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ((*prepared)->plan(), PlanKind::kSatGrounding);

  Session session(omq->data_schema());
  ASSERT_TRUE(session.Assert(Fact{"E", {"a", "b"}}).ok());
  ASSERT_TRUE(session.Assert(Fact{"E", {"b", "a"}}).ok());
  auto answers = (*prepared)->Execute(session, RequestBudget{});
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  // A single undirected edge is 3-colorable: no certain "no-coloring".
  EXPECT_TRUE(answers->tuples.empty());
}

// --- LRU cache --------------------------------------------------------------

TEST(PreparedCacheTest, EvictsLeastRecentlyUsed) {
  PreparedCache cache(2);
  base::Rng rng(1);
  auto make = [&] {
    auto q = PreparedQuery::FromProgram(RandomProgram(rng, false),
                                        PrepareOptions());
    OBDA_CHECK(q.ok());
    return *q;
  };
  const CacheKey k1{1, 1, 0}, k2{2, 2, 0}, k3{3, 3, 0};
  cache.Insert(k1, make());
  cache.Insert(k2, make());
  EXPECT_EQ(cache.size(), 2u);
  // Touch k1 so k2 becomes the LRU entry, then overflow.
  EXPECT_NE(cache.Lookup(k1), nullptr);
  cache.Insert(k3, make());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(k1), nullptr);
  EXPECT_EQ(cache.Lookup(k2), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(k3), nullptr);

  // Re-inserting an existing key refreshes, never grows.
  cache.Insert(k3, make());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PreparedCacheTest, HitMissEvictionCounters) {
  obs::EnableMetrics(true);
  obs::MetricsRegistry::Global().ResetAll();
  PreparedCache cache(1);
  base::Rng rng(2);
  auto q = PreparedQuery::FromProgram(RandomProgram(rng, false),
                                      PrepareOptions());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(cache.Lookup(CacheKey{1, 1, 0}), nullptr);
  cache.Insert(CacheKey{1, 1, 0}, *q);
  EXPECT_NE(cache.Lookup(CacheKey{1, 1, 0}), nullptr);
  cache.Insert(CacheKey{2, 2, 0}, *q);  // evicts {1,1,0}
  EXPECT_EQ(obs::GetCounter("serve.cache_misses").value(), 1u);
  EXPECT_EQ(obs::GetCounter("serve.cache_hits").value(), 1u);
  EXPECT_EQ(obs::GetCounter("serve.cache_evictions").value(), 1u);
  obs::EnableMetrics(false);
}

// --- Scheduler: admission control, deterministic shedding -------------------

/// A gate the test holds closed while it stuffs the queue.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  bool entered = false;

  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Enter() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

TEST(SchedulerTest, ShedsDeterministicallyWhenQueueFull) {
  Scheduler::Options options;
  options.threads = 2;
  options.max_queue = 2;
  Scheduler scheduler(options);
  Gate gate;
  std::vector<int> ran;
  std::mutex ran_mu;

  // Blocker occupies session 1's (only) lane; wait until it *runs* so
  // the backlog count below is exact.
  ASSERT_TRUE(scheduler
                  .Submit(1, Scheduler::Task{[&] { gate.Enter(); }, nullptr})
                  .ok());
  gate.WaitEntered();
  ASSERT_EQ(scheduler.pending(), 0u);

  auto record = [&](int id) {
    return Scheduler::Task{[&ran, &ran_mu, id] {
                             std::lock_guard<std::mutex> lock(ran_mu);
                             ran.push_back(id);
                           },
                           nullptr};
  };
  ASSERT_TRUE(scheduler.Submit(1, record(1)).ok());
  ASSERT_TRUE(scheduler.Submit(1, record(2)).ok());
  // Queue now at max_queue=2: the next submit is shed, deterministically.
  base::Status shed = scheduler.Submit(1, record(3));
  EXPECT_EQ(shed.code(), base::StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.pending(), 2u);

  gate.Open();
  scheduler.Drain();
  // FIFO order within the session; the shed task never ran.
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, ExpiredDeadlineSkipsRunAndCallsExpired) {
  Scheduler::Options options;
  options.threads = 2;
  options.max_queue = 8;
  Scheduler scheduler(options);
  Gate gate;
  std::atomic<int> ran{0}, expired{0};

  ASSERT_TRUE(scheduler
                  .Submit(7, Scheduler::Task{[&] { gate.Enter(); }, nullptr})
                  .ok());
  gate.WaitEntered();
  // Queued behind the blocker with a deadline already in the past: by
  // dequeue time it has deterministically expired.
  ASSERT_TRUE(scheduler
                  .Submit(7,
                          Scheduler::Task{[&] { ran.fetch_add(1); },
                                          [&] { expired.fetch_add(1); }},
                          std::chrono::steady_clock::now() -
                              std::chrono::milliseconds(1))
                  .ok());
  // A later task with no deadline still runs: expiry is per-request.
  ASSERT_TRUE(
      scheduler.Submit(7, Scheduler::Task{[&] { ran.fetch_add(1); }, nullptr})
          .ok());
  gate.Open();
  scheduler.Drain();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(expired.load(), 1);
}

TEST(SchedulerTest, DistinctSessionsRunConcurrently) {
  Scheduler::Options options;
  options.threads = 4;
  options.max_queue = 16;
  Scheduler scheduler(options);
  // Two sessions whose tasks each wait for the other to start: only
  // cross-session parallelism lets this drain.
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++started;
    cv.notify_all();
    cv.wait(lock, [&] { return started >= 2; });
  };
  ASSERT_TRUE(scheduler.Submit(1, Scheduler::Task{rendezvous, nullptr}).ok());
  ASSERT_TRUE(scheduler.Submit(2, Scheduler::Task{rendezvous, nullptr}).ok());
  scheduler.Drain();
  EXPECT_EQ(started, 2);
}

// --- Concurrent sessions against one shared artifact (tsan fodder) ----------

TEST(ConcurrencyTest, SessionsShareOnePreparedQueryRaceFree) {
  base::Rng seed_rng(17);
  ddlog::Program program = RandomProgram(seed_rng, false);
  PrepareOptions options;
  options.eval.threads = 1;  // per-probe parallelism off; session-level on
  auto prepared = PreparedQuery::FromProgram(program, options);
  ASSERT_TRUE(prepared.ok());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      base::Rng rng(100 + t);
      Session session(ElSchema());
      for (int round = 0; round < 4; ++round) {
        for (int m = 0; m < 3; ++m) {
          if (!session.Assert(RandomFact(rng, 4)).ok()) failures.fetch_add(1);
        }
        auto answers = (*prepared)->Execute(session, RequestBudget{});
        if (!answers.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto fresh = ddlog::CertainAnswers(
            program, *session.Materialize().instance);
        if (!fresh.ok() || answers->tuples != fresh->tuples) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- Server protocol end to end ---------------------------------------------

TEST(ServerTest, ProtocolSessionEndToEnd) {
  Server server;
  auto client = server.NewClient();
  EXPECT_EQ(client->HandleLine(""), "");
  EXPECT_EQ(client->HandleLine("# comment"), "");
  EXPECT_EQ(client->HandleLine("SCHEMA LymeDisease/1 Listeriosis/1"),
            "OK relations=2\n");
  EXPECT_EQ(client->HandleLine(
                "ONTOLOGY LymeDisease | Listeriosis [= BacterialInfection"),
            "OK axioms=1 language=ALC\n");
  // The planner certifies this UCQ-rewritable OMQ FO-rewritable and the
  // cost model makes the FO tier the cheapest admissible plan.
  EXPECT_EQ(client->HandleLine("PREPARE q AQ BacterialInfection"),
            "OK plan=fo_rewriting tier=fo cached=0 arity=1\n");
  EXPECT_EQ(client->HandleLine("ASSERT LymeDisease(ann), Listeriosis(bob)"),
            "OK added=2 generation=2\n");
  EXPECT_EQ(client->HandleLine("QUERY q"),
            "(ann)\n(bob)\nOK n=2 plan=fo_rewriting generation=2 "
            "grounded=1 delta=0\n");
  EXPECT_EQ(client->HandleLine("RETRACT Listeriosis(bob)"),
            "OK removed=1 generation=3\n");
  EXPECT_EQ(client->HandleLine("QUERY q"),
            "(ann)\nOK n=1 plan=fo_rewriting generation=3 grounded=1 "
            "delta=0\n");

  // The forced-SAT plan must agree on the same data.
  EXPECT_EQ(client->HandleLine("PREPARE qsat SAT AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat cached=0 arity=1\n");
  EXPECT_EQ(client->HandleLine("QUERY qsat"),
            "(ann)\nOK n=1 plan=sat_grounding generation=3 grounded=1 "
            "delta=0\n");
  EXPECT_EQ(client->HandleLine("QUERY qsat"),
            "(ann)\nOK n=1 plan=sat_grounding generation=3 grounded=0 "
            "delta=0\n");

  // A second client preparing the same query hits the shared cache.
  auto other = server.NewClient();
  EXPECT_EQ(other->HandleLine("SCHEMA LymeDisease/1 Listeriosis/1"),
            "OK relations=2\n");
  EXPECT_EQ(other->HandleLine(
                "ONTOLOGY LymeDisease | Listeriosis [= BacterialInfection"),
            "OK axioms=1 language=ALC\n");
  EXPECT_EQ(other->HandleLine("PREPARE q AQ BacterialInfection"),
            "OK plan=fo_rewriting tier=fo cached=1 arity=1\n");
  // ... and its data stays isolated from the first client's.
  EXPECT_EQ(other->HandleLine("QUERY q"),
            "OK n=0 plan=fo_rewriting generation=0 grounded=1 delta=0\n");

  EXPECT_EQ(client->HandleLine("QUERY nosuch"),
            "ERR NOT_FOUND: no prepared query named nosuch\n");
  EXPECT_EQ(client->HandleLine("BOGUS"),
            "ERR INVALID_ARGUMENT: unknown command BOGUS\n");
  EXPECT_EQ(client->HandleLine("QUIT"), "OK bye\n");
  EXPECT_TRUE(client->quit());
}

TEST(ServerTest, StatsReturnsMetricsJson) {
  Server server;
  auto client = server.NewClient();
  const std::string stats = client->HandleLine("STATS");
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats.substr(0, 13), "{\"counters\": ");
  EXPECT_TRUE(stats.ends_with("}\nOK\n")) << stats;
  // The snapshot carries the histogram section with quantile estimates
  // for the scheduler's latency distributions.
  EXPECT_NE(stats.find("\"histograms\": "), std::string::npos);
  EXPECT_NE(stats.find("\"serve.queue_wait\": {\"count\": "),
            std::string::npos);
  EXPECT_NE(stats.find("\"serve.execute_wall\": {\"count\": "),
            std::string::npos);
  EXPECT_NE(stats.find("\"p99_ms\": "), std::string::npos);
}

TEST(ServerTest, StatsKeysListsRegisteredNames) {
  Server server;
  auto client = server.NewClient();
  const std::string keys = client->HandleLine("STATS KEYS");
  // One `<kind> <name>` line per registered metric; the scheduler
  // registers its histograms eagerly so the key set is stable from the
  // first command on (the smoke golden pins it).
  EXPECT_NE(keys.find("histogram serve.queue_wait\n"), std::string::npos);
  EXPECT_NE(keys.find("histogram serve.execute_wall\n"), std::string::npos);
  EXPECT_NE(keys.find(" histograms="), std::string::npos);
  EXPECT_TRUE(keys.find("OK counters=") != std::string::npos) << keys;
  // A second call returns the identical key set (values may move, names
  // may not vanish).
  EXPECT_EQ(keys, client->HandleLine("STATS KEYS"));
}

TEST(ServerTest, StatsQueryReportsPerQueryCounters) {
  Server server;
  auto client = server.NewClient();
  ASSERT_EQ(client->HandleLine("SCHEMA LymeDisease/1 Listeriosis/1"),
            "OK relations=2\n");
  ASSERT_EQ(client->HandleLine(
                "ONTOLOGY LymeDisease | Listeriosis [= BacterialInfection"),
            "OK axioms=1 language=ALC\n");
  ASSERT_EQ(client->HandleLine("PREPARE q SAT AQ BacterialInfection"),
            "OK plan=sat_grounding tier=sat cached=0 arity=1\n");
  ASSERT_EQ(client->HandleLine("ASSERT LymeDisease(ann)"),
            "OK added=1 generation=1\n");
  client->HandleLine("QUERY q");  // grounds
  client->HandleLine("QUERY q");  // hot
  client->HandleLine("QUERY q");  // hot
  const std::string stats = client->HandleLine("STATS QUERY q");
  EXPECT_NE(stats.find("\"plan\": \"sat_grounding\""), std::string::npos);
  EXPECT_NE(stats.find("\"arity\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"execs\": 3"), std::string::npos);
  EXPECT_NE(stats.find("\"grounds\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"hot_hits\": 2"), std::string::npos);
  // Per-query latency renders through the shared histogram formatter.
  EXPECT_NE(stats.find("\"latency\": {\"count\": 3"), std::string::npos);
  EXPECT_NE(stats.find("\"p95_ms\": "), std::string::npos);
  EXPECT_TRUE(stats.ends_with("OK name=q cached=0\n")) << stats;

  EXPECT_EQ(client->HandleLine("STATS QUERY nosuch"),
            "ERR NOT_FOUND: no prepared query named nosuch\n");
  EXPECT_EQ(client->HandleLine("STATS BOGUS"),
            "ERR INVALID_ARGUMENT: usage: STATS | STATS KEYS | "
            "STATS QUERY <name>\n");
}

TEST(ServerTest, TraceDumpReturnsChromeTraceJson) {
  Server server;
  auto client = server.NewClient();
  ASSERT_EQ(client->HandleLine("SCHEMA LymeDisease/1"), "OK relations=1\n");
  ASSERT_EQ(client->HandleLine("ONTOLOGY LymeDisease [= Infection"),
            "OK axioms=1 language=ALC\n");
  ASSERT_EQ(client->HandleLine("PREPARE q AQ Infection"),
            "OK plan=fo_rewriting tier=fo cached=0 arity=1\n");
  ASSERT_EQ(client->HandleLine("ASSERT LymeDisease(ann)"),
            "OK added=1 generation=1\n");
  client->HandleLine("QUERY q");
  const std::string dump = client->HandleLine("TRACE DUMP");
  // Chrome trace-event JSON with the scheduler's serve.task span, tagged
  // with the minted request id.
  EXPECT_EQ(dump.rfind("{\"traceEvents\": [", 0), 0u) << dump;
  EXPECT_NE(dump.find("\"name\": \"serve.task\""), std::string::npos);
  EXPECT_NE(dump.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(dump.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(dump.find("\"request_id\": 1"), std::string::npos);
  EXPECT_NE(dump.find("\nOK events="), std::string::npos);
  EXPECT_EQ(client->HandleLine("TRACE BOGUS"),
            "ERR INVALID_ARGUMENT: usage: TRACE DUMP\n");
}

}  // namespace
}  // namespace obda::serve
