#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "sat/preprocess.h"
#include "sat/solver.h"

namespace obda::sat {
namespace {

/// Builds pigeonhole PHP(np, nh): np pigeons into nh holes (unsat iff
/// np > nh). Returns the variable grid.
std::vector<std::vector<Var>> AddPigeonhole(Solver* s, int np, int nh) {
  std::vector<std::vector<Var>> x(np, std::vector<Var>(nh));
  for (int p = 0; p < np; ++p) {
    for (int h = 0; h < nh; ++h) x[p][h] = s->NewVar();
  }
  for (int p = 0; p < np; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < nh; ++h) clause.push_back(Lit::Pos(x[p][h]));
    s->AddClause(clause);
  }
  for (int h = 0; h < nh; ++h) {
    for (int p1 = 0; p1 < np; ++p1) {
      for (int p2 = p1 + 1; p2 < np; ++p2) {
        s->AddClause({Lit::Neg(x[p1][h]), Lit::Neg(x[p2][h])});
      }
    }
  }
  return x;
}

TEST(SatTest, EmptyIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
}

TEST(SatTest, UnitClause) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({Lit::Pos(a)});
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(SatTest, ContradictoryUnits) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({Lit::Pos(a)});
  s.AddClause({Lit::Neg(a)});
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
}

TEST(SatTest, EmptyClauseIsUnsat) {
  Solver s;
  s.NewVar();
  s.AddClause({});
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
}

TEST(SatTest, TautologyDropped) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({Lit::Pos(a), Lit::Neg(a)});
  EXPECT_EQ(s.NumClauses(), 0u);
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
}

TEST(SatTest, SimpleImplicationChain) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  Var c = s.NewVar();
  s.AddClause({Lit::Pos(a)});
  s.AddClause({Lit::Neg(a), Lit::Pos(b)});  // a -> b
  s.AddClause({Lit::Neg(b), Lit::Pos(c)});  // b -> c
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
  EXPECT_TRUE(s.ModelValue(c));
}

TEST(SatTest, PigeonholeTwoIntoOne) {
  // Two pigeons, one hole: unsat.
  Solver s;
  Var p1 = s.NewVar();  // pigeon1 in hole
  Var p2 = s.NewVar();  // pigeon2 in hole
  s.AddClause({Lit::Pos(p1)});
  s.AddClause({Lit::Pos(p2)});
  s.AddClause({Lit::Neg(p1), Lit::Neg(p2)});
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
}

TEST(SatTest, PigeonholeFourIntoThree) {
  // 4 pigeons, 3 holes: classic small UNSAT requiring search.
  Solver s;
  AddPigeonhole(&s, 4, 3);
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
  // CDCL actually learned something on the way.
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().learned_clauses, 0u);
  EXPECT_GT(s.stats().learned_literals, 0u);
}

TEST(SatTest, AssumptionsFlipOutcome) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  s.AddClause({Lit::Pos(a), Lit::Pos(b)});
  EXPECT_EQ(s.Solve({Lit::Neg(a)}), SatOutcome::kSat);
  EXPECT_TRUE(s.ModelValue(b));
  EXPECT_EQ(s.Solve({Lit::Neg(a), Lit::Neg(b)}), SatOutcome::kUnsat);
  // Solver is reusable after assumption solving.
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
}

TEST(SatTest, BudgetReported) {
  // A hard-ish pigeonhole with a tiny budget must report kBudget.
  Solver s;
  AddPigeonhole(&s, 9, 8);
  EXPECT_EQ(s.Solve({}, 10), SatOutcome::kBudget);
  EXPECT_EQ(s.stats().budget_exhausted, 1u);
}

TEST(SatTest, BudgetTripLeavesSolverReusable) {
  // A kBudget return must leave the solver fully backtracked: the same
  // solver, given room, then decides the instance; its learned clauses
  // from the aborted attempt remain valid.
  Solver s;
  AddPigeonhole(&s, 9, 8);
  EXPECT_EQ(s.Solve({}, 10), SatOutcome::kBudget);
  EXPECT_EQ(s.Solve({}, 5), SatOutcome::kBudget);
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
  // Once unsat is established it is remembered (empty-clause state).
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
}

TEST(SatTest, LearnedClausesSurviveBetweenSolveCalls) {
  // Assumption probes against one clause database: conflicts found under
  // one assumption set keep paying off under the next (the learned
  // clauses never mention the assumptions themselves).
  Solver s;
  auto x = AddPigeonhole(&s, 4, 3);
  EXPECT_EQ(s.Solve({Lit::Pos(x[0][0])}), SatOutcome::kUnsat);
  const std::uint64_t learned_after_first = s.stats().learned_clauses;
  EXPECT_GT(learned_after_first, 0u);
  EXPECT_EQ(s.Solve({Lit::Pos(x[1][1])}), SatOutcome::kUnsat);
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
  EXPECT_GE(s.stats().learned_clauses, learned_after_first);
}

TEST(SatTest, ReductionPolicyFires) {
  // A small learned cap on a conflict-dense instance forces database
  // reductions without changing the verdict.
  Solver s;
  s.SetLearnedCap(8);
  AddPigeonhole(&s, 7, 6);
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
  EXPECT_GT(s.stats().reductions, 0u);
}

TEST(SatTest, BackjumpsAndRestartsAreCounted) {
  Solver s;
  AddPigeonhole(&s, 11, 10);
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
  // PHP(11,10) takes over 100 conflicts, so the Luby policy restarts at
  // least once, and 1-UIP backjumps skip levels along the way.
  EXPECT_GT(s.stats().restarts, 0u);
  EXPECT_GT(s.stats().backjump_levels, 0u);
}

/// Brute-force model check for cross-validation.
bool BruteForceSat(int num_vars, const std::vector<std::vector<Lit>>& cls) {
  for (int m = 0; m < (1 << num_vars); ++m) {
    bool all = true;
    for (const auto& c : cls) {
      bool sat = false;
      for (Lit l : c) {
        bool v = ((m >> l.var()) & 1) != 0;
        if (l.negative() ? !v : v) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return num_vars == 0 && cls.empty();
}

class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  base::Rng rng(GetParam());
  const int num_vars = 8;
  const int num_clauses = rng.IntIn(8, 40);
  Solver s;
  for (int i = 0; i < num_vars; ++i) s.NewVar();
  std::vector<std::vector<Lit>> clauses;
  for (int i = 0; i < num_clauses; ++i) {
    int len = rng.IntIn(1, 3);
    std::vector<Lit> c;
    for (int j = 0; j < len; ++j) {
      Var v = static_cast<Var>(rng.Below(num_vars));
      c.push_back(rng.Chance(1, 2) ? Lit::Pos(v) : Lit::Neg(v));
    }
    clauses.push_back(c);
    s.AddClause(c);
  }
  bool expected = BruteForceSat(num_vars, clauses);
  SatOutcome outcome = s.Solve();
  ASSERT_NE(outcome, SatOutcome::kBudget);
  EXPECT_EQ(outcome == SatOutcome::kSat, expected);
  if (outcome == SatOutcome::kSat) {
    // Verify the model.
    for (const auto& c : clauses) {
      bool sat = false;
      for (Lit l : c) {
        bool v = s.ModelValue(l.var());
        if (l.negative() ? !v : v) sat = true;
      }
      EXPECT_TRUE(sat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest, ::testing::Range(0, 30));

/// A clause as two bitmasks over ≤ 32 variables: satisfied by assignment
/// m iff (pos & m) | (neg & ~m) is nonzero. Lets the truth-table oracle
/// evaluate a clause in two ANDs.
struct MaskClause {
  std::uint32_t pos = 0;
  std::uint32_t neg = 0;
};

/// Truth-table oracle: scans all 2^num_vars assignments.
bool OracleSat(int num_vars, const std::vector<MaskClause>& clauses) {
  const std::uint32_t limit = std::uint32_t{1} << num_vars;
  for (std::uint32_t m = 0; m < limit; ++m) {
    bool all = true;
    for (const MaskClause& c : clauses) {
      if (((c.pos & m) | (c.neg & ~m)) == 0) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

/// Random CNF shared by the differential batteries. Variable counts stay
/// mostly small (dense conflict structure) with a tail up to 18 so the
/// watch/backjump machinery sees deeper trails too.
struct RandomCnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
  std::vector<MaskClause> masks;
};

RandomCnf MakeRandomCnf(base::Rng* rng, int max_vars) {
  RandomCnf cnf;
  cnf.num_vars = rng->Chance(1, 10) ? rng->IntIn(11, max_vars)
                                    : rng->IntIn(1, 10);
  const int num_clauses =
      rng->IntIn(cnf.num_vars, 5 * cnf.num_vars + 5);
  for (int i = 0; i < num_clauses; ++i) {
    const int len = rng->IntIn(1, 4);
    std::vector<Lit> clause;
    MaskClause mask;
    for (int j = 0; j < len; ++j) {
      Var v = static_cast<Var>(rng->Below(cnf.num_vars));
      if (rng->Chance(1, 2)) {
        clause.push_back(Lit::Pos(v));
        mask.pos |= std::uint32_t{1} << v;
      } else {
        clause.push_back(Lit::Neg(v));
        mask.neg |= std::uint32_t{1} << v;
      }
    }
    cnf.clauses.push_back(std::move(clause));
    cnf.masks.push_back(mask);
  }
  return cnf;
}

TEST(SatFuzzTest, DifferentialBatteryAgainstTruthTable) {
  // 500 random CNFs (≤ 18 vars) against the truth-table oracle; every
  // kSat model is checked clause-by-clause.
  for (int seed = 0; seed < 500; ++seed) {
    base::Rng rng(9000 + seed);
    RandomCnf cnf = MakeRandomCnf(&rng, 18);
    Solver s;
    for (int i = 0; i < cnf.num_vars; ++i) s.NewVar();
    for (const auto& c : cnf.clauses) s.AddClause(c);
    const bool expected = OracleSat(cnf.num_vars, cnf.masks);
    SatOutcome outcome = s.Solve();
    ASSERT_NE(outcome, SatOutcome::kBudget) << "seed " << seed;
    ASSERT_EQ(outcome == SatOutcome::kSat, expected) << "seed " << seed;
    if (outcome == SatOutcome::kSat) {
      std::uint32_t model = 0;
      for (int v = 0; v < cnf.num_vars; ++v) {
        if (s.ModelValue(v)) model |= std::uint32_t{1} << v;
      }
      for (std::size_t i = 0; i < cnf.masks.size(); ++i) {
        ASSERT_NE((cnf.masks[i].pos & model) | (cnf.masks[i].neg & ~model),
                  0u)
            << "seed " << seed << " clause " << i;
      }
    }
  }
}

TEST(SatFuzzTest, IncrementalAgreesWithFreshUnderAssumptions) {
  // One warmed incremental solver vs. a fresh solver per probe: random
  // assumption sequences over random CNFs must agree call for call (the
  // Eén–Sörensson invariant — learned clauses never depend on earlier
  // assumptions). The oracle adjudicates both.
  for (int seed = 0; seed < 60; ++seed) {
    base::Rng rng(777000 + seed);
    RandomCnf cnf = MakeRandomCnf(&rng, 14);
    Solver warm;
    for (int i = 0; i < cnf.num_vars; ++i) warm.NewVar();
    for (const auto& c : cnf.clauses) warm.AddClause(c);
    for (int round = 0; round < 12; ++round) {
      const int num_assumptions = rng.IntIn(0, 3);
      std::vector<Lit> assumptions;
      std::vector<MaskClause> with_assumptions = cnf.masks;
      for (int i = 0; i < num_assumptions; ++i) {
        Var v = static_cast<Var>(rng.Below(cnf.num_vars));
        MaskClause unit;
        if (rng.Chance(1, 2)) {
          assumptions.push_back(Lit::Pos(v));
          unit.pos = std::uint32_t{1} << v;
        } else {
          assumptions.push_back(Lit::Neg(v));
          unit.neg = std::uint32_t{1} << v;
        }
        with_assumptions.push_back(unit);
      }
      Solver fresh;
      for (int i = 0; i < cnf.num_vars; ++i) fresh.NewVar();
      for (const auto& c : cnf.clauses) fresh.AddClause(c);
      const bool expected = OracleSat(cnf.num_vars, with_assumptions);
      SatOutcome warm_outcome = warm.Solve(assumptions);
      SatOutcome fresh_outcome = fresh.Solve(assumptions);
      ASSERT_EQ(warm_outcome, fresh_outcome)
          << "seed " << seed << " round " << round;
      ASSERT_EQ(warm_outcome == SatOutcome::kSat, expected)
          << "seed " << seed << " round " << round;
    }
  }
}

TEST(SatFuzzTest, DeterministicAcrossRepeatedRuns) {
  // Two solvers fed the identical call sequence must agree on outcomes,
  // models, and every statistic — the determinism contract the parallel
  // engine's bit-identity guarantee rests on.
  for (int seed = 0; seed < 40; ++seed) {
    base::Rng rng(42000 + seed);
    RandomCnf cnf = MakeRandomCnf(&rng, 14);
    std::vector<std::vector<Lit>> probes;
    for (int round = 0; round < 6; ++round) {
      std::vector<Lit> assumptions;
      for (int i = rng.IntIn(0, 2); i > 0; --i) {
        Var v = static_cast<Var>(rng.Below(cnf.num_vars));
        assumptions.push_back(rng.Chance(1, 2) ? Lit::Pos(v)
                                               : Lit::Neg(v));
      }
      probes.push_back(std::move(assumptions));
    }
    Solver a;
    Solver b;
    for (int i = 0; i < cnf.num_vars; ++i) {
      a.NewVar();
      b.NewVar();
    }
    for (const auto& c : cnf.clauses) {
      a.AddClause(c);
      b.AddClause(c);
    }
    for (const auto& probe : probes) {
      SatOutcome oa = a.Solve(probe);
      SatOutcome ob = b.Solve(probe);
      ASSERT_EQ(oa, ob) << "seed " << seed;
      ASSERT_EQ(a.decisions(), b.decisions()) << "seed " << seed;
      if (oa == SatOutcome::kSat) {
        for (int v = 0; v < cnf.num_vars; ++v) {
          ASSERT_EQ(a.ModelValue(v), b.ModelValue(v))
              << "seed " << seed << " var " << v;
        }
      }
    }
    const Solver::Stats& sa = a.stats();
    const Solver::Stats& sb = b.stats();
    EXPECT_EQ(sa.decisions, sb.decisions);
    EXPECT_EQ(sa.propagations, sb.propagations);
    EXPECT_EQ(sa.conflicts, sb.conflicts);
    EXPECT_EQ(sa.restarts, sb.restarts);
    EXPECT_EQ(sa.learned_clauses, sb.learned_clauses);
    EXPECT_EQ(sa.learned_literals, sb.learned_literals);
    EXPECT_EQ(sa.reductions, sb.reductions);
    EXPECT_EQ(sa.backjump_levels, sb.backjump_levels);
    EXPECT_EQ(sa.max_trail, sb.max_trail);
  }
}

// --- Removable clauses ------------------------------------------------------

TEST(RemovableClauseTest, RemoveRestoresSatisfiability) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({Lit::Pos(a)});
  Solver::ClauseId id = s.AddRemovableClause({Lit::Neg(a)});
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
  s.RemoveClause(id);
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(RemovableClauseTest, EmptyRemovableClauseIsRevocableUnsat) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({Lit::Pos(a)});
  // An empty removable clause (e.g. all its literals normalized away)
  // makes the theory unsat only while it is present.
  Solver::ClauseId id = s.AddRemovableClause({});
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
  s.RemoveClause(id);
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
}

TEST(RemovableClauseTest, ChurnFuzzAgainstTruthTable) {
  // Random add/remove churn on the removable set, adjudicated by the
  // truth-table oracle over the permanents plus the LIVE removables after
  // every mutation. This is the contract delta grounding leans on: a
  // warmed solver whose clause set is patched in place must behave
  // exactly like a fresh solver loaded with the surviving clauses.
  for (int seed = 0; seed < 60; ++seed) {
    base::Rng rng(555000 + seed);
    RandomCnf base = MakeRandomCnf(&rng, 12);
    Solver s;
    for (int i = 0; i < base.num_vars; ++i) s.NewVar();
    // Half the base CNF is permanent, half starts out removable. All
    // permanents go in first (the documented mixing contract: AddClause
    // simplifies against the level-0 trail, which must not yet contain
    // consequences of retractable clauses).
    std::vector<std::pair<Solver::ClauseId, MaskClause>> live;
    std::vector<MaskClause> permanent;
    for (std::size_t i = 0; i < base.clauses.size(); i += 2) {
      s.AddClause(base.clauses[i]);
      permanent.push_back(base.masks[i]);
    }
    for (std::size_t i = 1; i < base.clauses.size(); i += 2) {
      live.emplace_back(s.AddRemovableClause(base.clauses[i]),
                        base.masks[i]);
    }
    for (int round = 0; round < 16; ++round) {
      if (!live.empty() && rng.Chance(1, 2)) {
        const std::size_t i = rng.Below(live.size());
        s.RemoveClause(live[i].first);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        const int len = rng.IntIn(1, 4);
        std::vector<Lit> clause;
        MaskClause mask;
        for (int j = 0; j < len; ++j) {
          Var v = static_cast<Var>(rng.Below(base.num_vars));
          if (rng.Chance(1, 2)) {
            clause.push_back(Lit::Pos(v));
            mask.pos |= std::uint32_t{1} << v;
          } else {
            clause.push_back(Lit::Neg(v));
            mask.neg |= std::uint32_t{1} << v;
          }
        }
        live.emplace_back(s.AddRemovableClause(std::move(clause)), mask);
      }
      std::vector<MaskClause> masks = permanent;
      for (const auto& [unused, m] : live) masks.push_back(m);
      const bool expected = OracleSat(base.num_vars, masks);
      SatOutcome outcome = s.Solve();
      ASSERT_NE(outcome, SatOutcome::kBudget) << "seed " << seed;
      ASSERT_EQ(outcome == SatOutcome::kSat, expected)
          << "seed " << seed << " round " << round;
      if (outcome == SatOutcome::kSat) {
        std::uint32_t model = 0;
        for (int v = 0; v < base.num_vars; ++v) {
          if (s.ModelValue(v)) model |= std::uint32_t{1} << v;
        }
        for (std::size_t i = 0; i < masks.size(); ++i) {
          ASSERT_NE((masks[i].pos & model) | (masks[i].neg & ~model), 0u)
              << "seed " << seed << " round " << round << " clause " << i;
        }
      }
    }
  }
}

// --- Preprocessor -----------------------------------------------------------

TEST(PreprocessTest, PassthroughIsNormalizationOnly) {
  // All passes off: clauses are normalized/deduplicated but no variable
  // leaves the formula, and the remapper is the identity.
  PreprocessOptions off;
  off.units = off.pure = off.equiv = off.subsumption = off.bve = false;
  std::vector<std::vector<Lit>> clauses = {
      {Lit::Pos(0), Lit::Pos(1), Lit::Pos(0)},  // dup literal
      {Lit::Pos(1), Lit::Pos(0)},               // dup clause (after sort)
      {Lit::Pos(2), Lit::Neg(2)},               // tautology
      {Lit::Neg(1)},
  };
  PreprocessResult res =
      Preprocess(3, clauses, std::vector<bool>(3, false), off);
  ASSERT_FALSE(res.unsat);
  EXPECT_EQ(res.clauses.size(), 2u);
  for (Var v = 0; v < 3; ++v) {
    EXPECT_EQ(res.remapper.StateOf(v), Remapper::VarState::kFree);
  }
}

TEST(PreprocessTest, UnitsFixAndFrozenPureSurvives) {
  // {a} fixes a; b is pure-positive but frozen, so it must survive for
  // assumption probes; c is pure and free, so it is eliminated.
  std::vector<std::vector<Lit>> clauses = {
      {Lit::Pos(0)},
      {Lit::Neg(0), Lit::Pos(1), Lit::Pos(2)},
  };
  std::vector<bool> frozen = {false, true, false};
  PreprocessResult res = Preprocess(3, clauses, frozen);
  ASSERT_FALSE(res.unsat);
  EXPECT_EQ(res.remapper.StateOf(0), Remapper::VarState::kFixedTrue);
  EXPECT_NE(res.remapper.StateOf(1), Remapper::VarState::kEliminated);
  // The frozen variable still maps to something usable as an assumption.
  Remapper::MappedLit m = res.remapper.MapLit(Lit::Neg(1));
  (void)m;
  // A model of the simplified CNF completes to a model of the original.
  std::vector<char> model(3, 0);
  res.remapper.CompleteModel(&model);
  EXPECT_EQ(model[0], 1);  // fixed true
}

TEST(PreprocessTest, DerivesUnsatFromContradictoryUnits) {
  std::vector<std::vector<Lit>> clauses = {{Lit::Pos(0)}, {Lit::Neg(0)}};
  PreprocessResult res = Preprocess(1, clauses, {false});
  EXPECT_TRUE(res.unsat);
}

TEST(PreprocessFuzzTest, DifferentialBatteryAgainstRawSolver) {
  // The 500-CNF oracle harness, through the preprocessor: for each CNF,
  // simplify (with a random frozen set), solve the simplified formula,
  // and check (a) sat/unsat agrees with the truth-table oracle, (b) the
  // remapper completes simplified models into models of the ORIGINAL
  // CNF, (c) frozen variables are never eliminated, (d) assumption
  // probes over frozen variables, routed through MapLit exactly as the
  // certain-answer engine routes them, agree with a raw-CNF solver.
  for (int seed = 0; seed < 500; ++seed) {
    base::Rng rng(9000 + seed);  // same CNFs as the raw battery
    RandomCnf cnf = MakeRandomCnf(&rng, 18);
    std::vector<bool> frozen(cnf.num_vars);
    std::vector<Var> frozen_vars;
    for (int v = 0; v < cnf.num_vars; ++v) {
      if (rng.Chance(1, 4)) {
        frozen[v] = true;
        frozen_vars.push_back(v);
      }
    }
    PreprocessResult res = Preprocess(
        static_cast<std::size_t>(cnf.num_vars), cnf.clauses, frozen);
    const bool expected = OracleSat(cnf.num_vars, cnf.masks);
    if (res.unsat) {  // remapper unusable in the unsat case
      ASSERT_FALSE(expected) << "seed " << seed;
      continue;
    }
    for (Var v : frozen_vars) {
      ASSERT_NE(res.remapper.StateOf(v), Remapper::VarState::kEliminated)
          << "seed " << seed << " frozen var " << v;
    }
    Solver simplified;
    for (std::size_t i = 0; i < res.num_vars; ++i) simplified.NewVar();
    for (const auto& c : res.clauses) simplified.AddClause(c);
    SatOutcome outcome = simplified.Solve();
    ASSERT_NE(outcome, SatOutcome::kBudget) << "seed " << seed;
    ASSERT_EQ(outcome == SatOutcome::kSat, expected) << "seed " << seed;
    if (outcome == SatOutcome::kSat) {
      std::vector<char> model(res.num_vars, 0);
      for (std::size_t v = 0; v < res.num_vars; ++v) {
        model[v] = simplified.ModelValue(static_cast<Var>(v)) ? 1 : 0;
      }
      res.remapper.CompleteModel(&model);
      std::uint32_t bits = 0;
      for (int v = 0; v < cnf.num_vars; ++v) {
        if (model[static_cast<std::size_t>(v)]) {
          bits |= std::uint32_t{1} << v;
        }
      }
      for (std::size_t i = 0; i < cnf.masks.size(); ++i) {
        ASSERT_NE((cnf.masks[i].pos & bits) | (cnf.masks[i].neg & ~bits),
                  0u)
            << "seed " << seed << " original clause " << i;
      }
    }
    // Determinism: a second run is bit-identical.
    PreprocessResult again = Preprocess(
        static_cast<std::size_t>(cnf.num_vars), cnf.clauses, frozen);
    ASSERT_EQ(res.clauses, again.clauses) << "seed " << seed;

    // Assumption probes over frozen variables (engine routing).
    if (frozen_vars.empty()) continue;
    Solver raw;
    for (int i = 0; i < cnf.num_vars; ++i) raw.NewVar();
    for (const auto& c : cnf.clauses) raw.AddClause(c);
    for (int round = 0; round < 6; ++round) {
      const int num_assumptions = rng.IntIn(1, 2);
      std::vector<Lit> original;
      std::vector<Lit> mapped;
      bool mapped_false = false;
      for (int i = 0; i < num_assumptions; ++i) {
        Var v = frozen_vars[rng.Below(frozen_vars.size())];
        Lit l = rng.Chance(1, 2) ? Lit::Pos(v) : Lit::Neg(v);
        original.push_back(l);
        Remapper::MappedLit m = res.remapper.MapLit(l);
        switch (m.kind) {
          case Remapper::MappedLit::Kind::kFalse:
            mapped_false = true;
            break;
          case Remapper::MappedLit::Kind::kTrue:
            break;  // vacuous assumption
          case Remapper::MappedLit::Kind::kLit:
            mapped.push_back(m.lit);
            break;
        }
      }
      SatOutcome raw_outcome = raw.Solve(original);
      ASSERT_NE(raw_outcome, SatOutcome::kBudget) << "seed " << seed;
      const bool probe_sat =
          !mapped_false && simplified.Solve(mapped) == SatOutcome::kSat;
      ASSERT_EQ(probe_sat, raw_outcome == SatOutcome::kSat)
          << "seed " << seed << " probe round " << round;
    }
  }
}

}  // namespace
}  // namespace obda::sat
