#include <gtest/gtest.h>

#include "base/rng.h"
#include "sat/solver.h"

namespace obda::sat {
namespace {

TEST(SatTest, EmptyIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
}

TEST(SatTest, UnitClause) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({Lit::Pos(a)});
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(SatTest, ContradictoryUnits) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({Lit::Pos(a)});
  s.AddClause({Lit::Neg(a)});
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
}

TEST(SatTest, EmptyClauseIsUnsat) {
  Solver s;
  s.NewVar();
  s.AddClause({});
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
}

TEST(SatTest, TautologyDropped) {
  Solver s;
  Var a = s.NewVar();
  s.AddClause({Lit::Pos(a), Lit::Neg(a)});
  EXPECT_EQ(s.NumClauses(), 0u);
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
}

TEST(SatTest, SimpleImplicationChain) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  Var c = s.NewVar();
  s.AddClause({Lit::Pos(a)});
  s.AddClause({Lit::Neg(a), Lit::Pos(b)});  // a -> b
  s.AddClause({Lit::Neg(b), Lit::Pos(c)});  // b -> c
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
  EXPECT_TRUE(s.ModelValue(c));
}

TEST(SatTest, PigeonholeTwoIntoOne) {
  // Two pigeons, one hole: unsat.
  Solver s;
  Var p1 = s.NewVar();  // pigeon1 in hole
  Var p2 = s.NewVar();  // pigeon2 in hole
  s.AddClause({Lit::Pos(p1)});
  s.AddClause({Lit::Pos(p2)});
  s.AddClause({Lit::Neg(p1), Lit::Neg(p2)});
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
}

TEST(SatTest, PigeonholeFourIntoThree) {
  // 4 pigeons, 3 holes: classic small UNSAT requiring search.
  Solver s;
  const int np = 4;
  const int nh = 3;
  std::vector<std::vector<Var>> x(np, std::vector<Var>(nh));
  for (int p = 0; p < np; ++p) {
    for (int h = 0; h < nh; ++h) x[p][h] = s.NewVar();
  }
  for (int p = 0; p < np; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < nh; ++h) clause.push_back(Lit::Pos(x[p][h]));
    s.AddClause(clause);
  }
  for (int h = 0; h < nh; ++h) {
    for (int p1 = 0; p1 < np; ++p1) {
      for (int p2 = p1 + 1; p2 < np; ++p2) {
        s.AddClause({Lit::Neg(x[p1][h]), Lit::Neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.Solve(), SatOutcome::kUnsat);
}

TEST(SatTest, AssumptionsFlipOutcome) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  s.AddClause({Lit::Pos(a), Lit::Pos(b)});
  EXPECT_EQ(s.Solve({Lit::Neg(a)}), SatOutcome::kSat);
  EXPECT_TRUE(s.ModelValue(b));
  EXPECT_EQ(s.Solve({Lit::Neg(a), Lit::Neg(b)}), SatOutcome::kUnsat);
  // Solver is reusable after assumption solving.
  EXPECT_EQ(s.Solve(), SatOutcome::kSat);
}

TEST(SatTest, BudgetReported) {
  // A hard-ish pigeonhole with a tiny budget must report kBudget.
  Solver s;
  const int np = 9;
  const int nh = 8;
  std::vector<std::vector<Var>> x(np, std::vector<Var>(nh));
  for (int p = 0; p < np; ++p) {
    for (int h = 0; h < nh; ++h) x[p][h] = s.NewVar();
  }
  for (int p = 0; p < np; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < nh; ++h) clause.push_back(Lit::Pos(x[p][h]));
    s.AddClause(clause);
  }
  for (int h = 0; h < nh; ++h) {
    for (int p1 = 0; p1 < np; ++p1) {
      for (int p2 = p1 + 1; p2 < np; ++p2) {
        s.AddClause({Lit::Neg(x[p1][h]), Lit::Neg(x[p2][h])});
      }
    }
  }
  EXPECT_EQ(s.Solve({}, 10), SatOutcome::kBudget);
}

/// Brute-force model check for cross-validation.
bool BruteForceSat(int num_vars, const std::vector<std::vector<Lit>>& cls) {
  for (int m = 0; m < (1 << num_vars); ++m) {
    bool all = true;
    for (const auto& c : cls) {
      bool sat = false;
      for (Lit l : c) {
        bool v = ((m >> l.var()) & 1) != 0;
        if (l.negative() ? !v : v) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return num_vars == 0 && cls.empty();
}

class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, AgreesWithBruteForce) {
  base::Rng rng(GetParam());
  const int num_vars = 8;
  const int num_clauses = rng.IntIn(8, 40);
  Solver s;
  for (int i = 0; i < num_vars; ++i) s.NewVar();
  std::vector<std::vector<Lit>> clauses;
  for (int i = 0; i < num_clauses; ++i) {
    int len = rng.IntIn(1, 3);
    std::vector<Lit> c;
    for (int j = 0; j < len; ++j) {
      Var v = static_cast<Var>(rng.Below(num_vars));
      c.push_back(rng.Chance(1, 2) ? Lit::Pos(v) : Lit::Neg(v));
    }
    clauses.push_back(c);
    s.AddClause(c);
  }
  bool expected = BruteForceSat(num_vars, clauses);
  SatOutcome outcome = s.Solve();
  ASSERT_NE(outcome, SatOutcome::kBudget);
  EXPECT_EQ(outcome == SatOutcome::kSat, expected);
  if (outcome == SatOutcome::kSat) {
    // Verify the model.
    for (const auto& c : clauses) {
      bool sat = false;
      for (Lit l : c) {
        bool v = s.ModelValue(l.var());
        if (l.negative() ? !v : v) sat = true;
      }
      EXPECT_TRUE(sat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace obda::sat
