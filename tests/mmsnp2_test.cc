#include <gtest/gtest.h>

#include "base/rng.h"
#include "data/generator.h"
#include "ddlog/eval.h"
#include "mmsnp/mmsnp2.h"
#include "mmsnp/translate.h"

namespace obda::mmsnp {
namespace {

using data::Instance;
using data::Schema;

Schema GraphSchema() {
  Schema s;
  s.AddRelation("E", 2);
  return s;
}

/// MMSNP2 sentence: "every edge can be oriented into X such that X never
/// contains both E(x,y) and (via a match of) E(y,x)" — false exactly on
/// graphs containing a 2-cycle... here simply: E(x,y) → X(E(x,y));
/// X(E(x,y)) ∧ E(y,x) ∧ X(E(y,x)) → ⊥.
Mmsnp2Formula TwoCycleDetector() {
  Mmsnp2Formula f(GraphSchema());
  std::uint32_t x = f.AddSoVar("X");
  auto input = [](int a, int b) {
    Mmsnp2Atom atom;
    atom.kind = Mmsnp2Atom::Kind::kInput;
    atom.relation = 0;
    atom.vars = {a, b};
    return atom;
  };
  auto fact = [x](int a, int b) {
    Mmsnp2Atom atom;
    atom.kind = Mmsnp2Atom::Kind::kFact;
    atom.so_var = x;
    atom.relation = 0;
    atom.vars = {a, b};
    return atom;
  };
  {
    Mmsnp2Implication imp;
    imp.body = {input(0, 1)};
    imp.head = {fact(0, 1)};
    OBDA_CHECK(f.AddImplication(imp).ok());
  }
  {
    Mmsnp2Implication imp;
    imp.body = {input(0, 1), fact(0, 1), input(1, 0), fact(1, 0)};
    OBDA_CHECK(f.AddImplication(imp).ok());
  }
  return f;
}

TEST(Mmsnp2Test, GuardednessEnforced) {
  Mmsnp2Formula f(GraphSchema());
  std::uint32_t x = f.AddSoVar("X");
  Mmsnp2Implication imp;
  Mmsnp2Atom head;
  head.kind = Mmsnp2Atom::Kind::kFact;
  head.so_var = x;
  head.relation = 0;
  head.vars = {0, 1};
  imp.head = {head};
  // No body E(x,y): rejected.
  EXPECT_FALSE(f.AddImplication(imp).ok());
}

TEST(Mmsnp2Test, TwoCycleSemantics) {
  Mmsnp2Formula f = TwoCycleDetector();
  auto with_cycle = f.Satisfied(data::DirectedCycle("E", 2));
  ASSERT_TRUE(with_cycle.ok());
  EXPECT_FALSE(*with_cycle);  // 2-cycle forces both facts into X
  auto without = f.Satisfied(data::DirectedCycle("E", 3));
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(*without);
}

TEST(Mmsnp2Test, ToGmsnpAgrees) {
  Mmsnp2Formula f = TwoCycleDetector();
  Formula gmsnp = f.ToGmsnp();
  EXPECT_TRUE(gmsnp.IsGuarded());
  EXPECT_FALSE(gmsnp.IsMonadic());
  base::Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    Instance d = data::RandomDigraph("E", 4, 5, rng);
    auto v1 = f.Satisfied(d);
    auto v2 = gmsnp.Satisfied(d, {});
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());
    EXPECT_EQ(*v1, *v2) << "trial " << trial;
  }
}

TEST(Mmsnp2Test, ToGmsnpToDdlogAgrees) {
  // Full chain (Thm 4.3 + Thm 4.2): MMSNP2 → GMSNP → frontier-guarded
  // DDlog, all defining the same Boolean query.
  Mmsnp2Formula f = TwoCycleDetector();
  Formula gmsnp = f.ToGmsnp();
  auto program = ToDdlog(gmsnp);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->IsFrontierGuarded());
  base::Rng rng(43);
  for (int trial = 0; trial < 6; ++trial) {
    Instance d = data::RandomDigraph("E", 4, 6, rng);
    auto v1 = f.CoQuery(d);
    auto v2 = ddlog::EvaluateBoolean(*program, d);
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());
    EXPECT_EQ(*v1, *v2) << "trial " << trial;
  }
}

TEST(Mmsnp2Test, GmsnpToMmsnp2RoundTrip) {
  // Start from a GMSNP sentence with input-guarded heads and compare
  // against its MMSNP2 image (the Appendix B construction).
  Formula gmsnp(GraphSchema(), 0);
  SoVarId x = gmsnp.AddSoVar("X", 2);
  {
    // E(x,y) → X(x,y)
    Implication imp;
    Atom e;
    e.kind = AtomKind::kInput;
    e.pred = 0;
    e.vars = {0, 1};
    Atom h;
    h.kind = AtomKind::kSecondOrder;
    h.pred = x;
    h.vars = {0, 1};
    imp.body = {e};
    imp.head = {h};
    ASSERT_TRUE(gmsnp.AddImplication(imp).ok());
  }
  {
    // X(x,y) ∧ E(y,x) → ⊥
    Implication imp;
    Atom so;
    so.kind = AtomKind::kSecondOrder;
    so.pred = x;
    so.vars = {0, 1};
    Atom e;
    e.kind = AtomKind::kInput;
    e.pred = 0;
    e.vars = {1, 0};
    imp.body = {so, e};
    ASSERT_TRUE(gmsnp.AddImplication(imp).ok());
  }
  auto mmsnp2 = GmsnpToMmsnp2(gmsnp);
  ASSERT_TRUE(mmsnp2.ok()) << mmsnp2.status().ToString();
  base::Rng rng(47);
  for (int trial = 0; trial < 10; ++trial) {
    Instance d = data::RandomDigraph("E", 4, 6, rng);
    auto v1 = gmsnp.Satisfied(d, {});
    auto v2 = mmsnp2->Satisfied(d);
    ASSERT_TRUE(v1.ok());
    ASSERT_TRUE(v2.ok());
    EXPECT_EQ(*v1, *v2) << "trial " << trial << "\n" << d.ToString();
  }
}

TEST(Mmsnp2Test, GmsnpToMmsnp2RejectsUnguardedHeads) {
  // A head whose variables never co-occur in an input atom cannot pick a
  // guard; the construction reports it instead of mistranslating.
  Schema s = GraphSchema();
  Formula gmsnp(s, 0);
  SoVarId x = gmsnp.AddSoVar("X", 2);
  Implication imp;
  Atom e1;
  e1.kind = AtomKind::kInput;
  e1.pred = 0;
  e1.vars = {0, 2};
  Atom e2;
  e2.kind = AtomKind::kInput;
  e2.pred = 0;
  e2.vars = {2, 1};
  Atom h;
  h.kind = AtomKind::kSecondOrder;
  h.pred = x;
  h.vars = {0, 1};
  imp.body = {e1, e2};
  imp.head = {h};
  ASSERT_TRUE(gmsnp.AddImplication(imp).ok());
  // {0,1} never co-occur in a body atom: the formula is not even in
  // GMSNP, and the construction reports it instead of mistranslating.
  EXPECT_FALSE(gmsnp.IsGuarded());
  auto mmsnp2 = GmsnpToMmsnp2(gmsnp);
  EXPECT_FALSE(mmsnp2.ok());
}

}  // namespace
}  // namespace obda::mmsnp
