// Beyond description logics (paper §3.2): ontologies in the guarded
// negation fragment over schemas of unrestricted arity.
//
// DLs cannot speak about the ternary relation Supplies(vendor, part,
// project). We model a propagation policy as a frontier-guarded
// disjunctive datalog program, obtain the equivalent (GNFO,UCQ)
// ontology-mediated query (Thm 3.17(2)), and evaluate both on a small
// procurement database.

#include <cstdio>

#include "data/io.h"
#include "ddlog/eval.h"
#include "ddlog/program.h"
#include "gfo/fo_omq.h"

namespace {

int Run() {
  obda::data::Schema s;
  s.AddRelation("Supplies", 3);    // vendor, part, project
  s.AddRelation("Critical", 1);    // critical projects
  s.AddRelation("Unaudited", 1);   // vendors without a current audit

  // Policy: a vendor supplying a critical project is either flagged or
  // must pass an audit review; unaudited vendors cannot pass, so they
  // are certainly flagged — and every project they supply is affected.
  auto program = obda::ddlog::ParseProgram(s, R"(
    Flagged(v) | Review(v) <- Supplies(v, p, j), Critical(j).
    <- Review(v), Unaudited(v).
    goal(j) <- Supplies(v, p, j), Flagged(v).
  )");
  if (!program.ok()) {
    std::printf("parse error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("frontier-guarded: %s (monadic: %s)\n",
              program->IsFrontierGuarded() ? "yes" : "no",
              program->IsMonadic() ? "yes" : "no");

  auto omq = obda::gfo::FgDdlogToGnfoOmq(*program);
  if (!omq.ok()) return 1;
  std::printf("Thm 3.17(2): GNFO ontology (IsGnfo=%s):\n  %s\n",
              omq->ontology.IsGnfo() ? "yes" : "no",
              omq->ontology.ToString().c_str());

  auto d = obda::data::ParseInstance(s, R"(
    Supplies(acme, bolts, dam). Critical(dam). Unaudited(acme).
    Supplies(acme, bolts, bridge).
    Supplies(zenith, pipes, bridge)
  )");
  if (!d.ok()) return 1;
  std::printf("\ndata:\n%s\n", d->ToString().c_str());

  auto answers = obda::ddlog::CertainAnswers(*program, *d);
  if (!answers.ok()) return 1;
  std::printf("certainly-affected projects (DDlog engine):");
  for (const auto& t : answers->tuples) {
    std::printf(" %s", d->ConstantName(t[0]).c_str());
  }
  obda::gfo::FoBoundedOptions options;
  options.extra_elements = 0;
  auto via_gnfo = BoundedCertainAnswersFo(*omq, *d, options);
  if (!via_gnfo.ok()) return 1;
  std::printf("\ncertainly-affected projects (GNFO engine): ");
  for (const auto& t : *via_gnfo) {
    std::printf(" %s", d->ConstantName(t[0]).c_str());
  }
  std::printf("\nagreement: %s\n",
              answers->tuples == *via_gnfo ? "yes" : "NO");
  return answers->tuples == *via_gnfo ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
