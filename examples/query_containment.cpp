// Query containment for ontology versioning (paper §5.2, Thm 5.7).
//
// A hospital replaces ontology O1 by an updated O2 and wants to know how
// the certain answers of its standing queries change. The general
// containment problem of [Bienvenu et al. 2012] is decided here through
// the CSP compilation: Q1 ⊆ Q2 iff every Q2-template maps homomorphically
// into some Q1-template.

#include <cstdio>

#include "core/containment.h"
#include "core/omq.h"
#include "dl/parser.h"

namespace {

using obda::core::OntologyMediatedQuery;

int Run() {
  obda::data::Schema schema;
  schema.AddRelation("Finding", 1);
  schema.AddRelation("TickBite", 1);
  schema.AddRelation("HasFinding", 2);

  // Version 1: only explicit findings raise an alert.
  auto o1 = obda::dl::ParseOntology(R"(
    some HasFinding.Finding [= Alert
  )");
  // Version 2: additionally, tick bites count as findings.
  auto o2 = obda::dl::ParseOntology(R"(
    some HasFinding.Finding [= Alert
    TickBite [= Finding
  )");
  if (!o1.ok() || !o2.ok()) return 1;

  auto q1 = OntologyMediatedQuery::WithAtomicQuery(schema, *o1, "Alert");
  auto q2 = OntologyMediatedQuery::WithAtomicQuery(schema, *o2, "Alert");
  if (!q1.ok() || !q2.ok()) return 1;

  auto forward = obda::core::OmqContained(*q1, *q2);
  auto backward = obda::core::OmqContained(*q2, *q1);
  if (!forward.ok() || !backward.ok()) {
    std::printf("containment failed: %s\n",
                forward.status().ToString().c_str());
    return 1;
  }
  std::printf("Q1 ⊆ Q2 (upgrade only adds answers): %s\n",
              *forward ? "YES" : "no");
  std::printf("Q2 ⊆ Q1 (upgrade changes nothing):   %s\n",
              *backward ? "YES" : "no");

  // The bounded counterexample search exhibits a concrete witness for
  // the non-containment.
  obda::core::ContainmentOptions options;
  options.max_elements = 2;
  options.max_facts = 2;
  auto bounded = obda::core::OmqContainedBounded(*q2, *q1, options);
  if (bounded.ok()) {
    std::printf(
        "bounded search for Q2 ⊆ Q1: %s\n",
        *bounded == obda::core::ContainmentVerdict::kNotContained
            ? "counterexample found (e.g. HasFinding(p,f), TickBite(f))"
            : "no counterexample within bound");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
