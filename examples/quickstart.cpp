// Quickstart: the paper's running medical example (Table I, Examples 2.1
// and 2.2) end to end.
//
//  1. Parse the ontology of Table I.
//  2. Load the patient data of Example 2.1.
//  3. Ask q(x) = ∃y HasDiagnosis(x,y) ∧ BacterialInfection(y) and get the
//     certain answers {patient1, patient2} — patient1 through the
//     anonymous diagnosis the ontology creates, patient2 through the
//     Listeriosis ⊑ BacterialInfection upcast.
//  4. Ask the recursive HereditaryPredisposition query of Example 2.2.

#include <cstdio>

#include "core/csp_translation.h"
#include "core/omq.h"
#include "core/ucq_translation.h"
#include "data/io.h"
#include "ddlog/eval.h"
#include "dl/parser.h"

namespace {

using obda::core::OntologyMediatedQuery;
using obda::core::QuerySchema;

int Run() {
  // --- Table I, in the library's DL syntax --------------------------------
  auto ontology = obda::dl::ParseOntology(R"(
    some HasFinding.ErythemaMigrans [= some HasDiagnosis.LymeDisease
    LymeDisease | Listeriosis [= BacterialInfection
    some HasParent.HereditaryPredisposition [= HereditaryPredisposition
  )");
  if (!ontology.ok()) {
    std::printf("ontology parse error: %s\n",
                ontology.status().ToString().c_str());
    return 1;
  }
  std::printf("Ontology (Table I):\n%s\n", ontology->ToString().c_str());

  // --- Data schema S and instance D of Example 2.1 ------------------------
  obda::data::Schema schema;
  schema.AddRelation("ErythemaMigrans", 1);
  schema.AddRelation("LymeDisease", 1);
  schema.AddRelation("Listeriosis", 1);
  schema.AddRelation("HereditaryPredisposition", 1);
  schema.AddRelation("HasFinding", 2);
  schema.AddRelation("HasDiagnosis", 2);
  schema.AddRelation("HasParent", 2);

  auto data = obda::data::ParseInstance(schema, R"(
    HasFinding(patient1, jan12find1). ErythemaMigrans(jan12find1).
    HasDiagnosis(patient2, may7diag2). Listeriosis(may7diag2).
    HasParent(patient1, parent1). HereditaryPredisposition(parent1)
  )");
  if (!data.ok()) {
    std::printf("data parse error: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("Data:\n%s\n", data->ToString().c_str());

  // --- Example 2.1: the bacterial-infection UCQ ---------------------------
  auto query_schema = QuerySchema(schema, *ontology);
  obda::fo::ConjunctiveQuery cq(*query_schema, 1);
  obda::fo::QVar y = cq.AddVariable();
  (void)cq.AddAtomByName("HasDiagnosis", {0, y});
  (void)cq.AddAtomByName("BacterialInfection", {y});
  obda::fo::UnionOfCq ucq(*query_schema, 1);
  ucq.AddDisjunct(cq);
  auto omq = OntologyMediatedQuery::Create(schema, *ontology, ucq);
  if (!omq.ok()) {
    std::printf("OMQ error: %s\n", omq.status().ToString().c_str());
    return 1;
  }

  // Compile to MDDlog (Thm 3.3) and evaluate.
  auto program = obda::core::CompileUcqToMddlog(*omq);
  if (!program.ok()) {
    std::printf("translation error: %s\n",
                program.status().ToString().c_str());
    return 1;
  }
  std::printf("Thm 3.3 translation: MDDlog program with %zu rules\n",
              program->rules().size());
  auto answers = obda::ddlog::CertainAnswers(*program, *data);
  if (!answers.ok()) return 1;
  std::printf("certain answers to q(x) = ∃y HasDiagnosis(x,y) ∧ "
              "BacterialInfection(y):\n");
  for (const auto& t : answers->tuples) {
    std::printf("  %s\n", data->ConstantName(t[0]).c_str());
  }

  // --- Example 2.2: the recursive atomic query via the CSP route ----------
  auto aq = OntologyMediatedQuery::WithAtomicQuery(
      schema, *ontology, "HereditaryPredisposition");
  if (!aq.ok()) return 1;
  auto aq_answers = obda::core::CertainAnswersViaCsp(*aq, *data);
  if (!aq_answers.ok()) return 1;
  std::printf("\ncertain answers to HereditaryPredisposition(x) "
              "(Thm 4.6 CSP route):\n");
  for (const auto& t : *aq_answers) {
    std::printf("  %s\n", data->ConstantName(t[0]).c_str());
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
