// MMSNP playground (paper §3 and §4.1): one Boolean query — "the graph
// is not 2-colorable" — expressed in four equivalent formalisms, with the
// library's translations moving between them:
//
//   forbidden patterns  ↔  Boolean MDDlog  ↔  MMSNP  (Prop 3.2 / 4.1)
//
// and evaluated on odd/even cycles to confirm they define the same query.

#include <cstdio>

#include "data/generator.h"
#include "ddlog/eval.h"
#include "mmsnp/formula.h"
#include "mmsnp/translate.h"

namespace {

int Run() {
  // Forbidden patterns: a monochromatic edge in either color.
  obda::mmsnp::ForbiddenPatternProblem fpp;
  fpp.schema.AddRelation("E", 2);
  fpp.colors = {"Red", "Blue"};
  obda::data::Schema colored = fpp.ColoredSchema();
  for (const char* color : {"Red", "Blue"}) {
    obda::data::Instance pattern(colored);
    auto a = pattern.AddConstant("a");
    auto b = pattern.AddConstant("b");
    pattern.AddFact(*colored.FindRelation("E"), {a, b});
    pattern.AddFact(*colored.FindRelation(color), {a});
    pattern.AddFact(*colored.FindRelation(color), {b});
    fpp.patterns.push_back(std::move(pattern));
  }
  std::printf("Forbidden patterns: %zu patterns over %s with colors "
              "{Red, Blue}\n",
              fpp.patterns.size(), fpp.schema.ToString().c_str());

  // Prop 3.2: FPP -> Boolean MDDlog.
  auto program = obda::mmsnp::FppToMddlog(fpp);
  if (!program.ok()) return 1;
  std::printf("Prop 3.2:  MDDlog program with %zu rules\n",
              program->rules().size());

  // Prop 4.1: MDDlog -> MMSNP.
  auto formula = obda::mmsnp::FromDdlog(*program);
  if (!formula.ok()) return 1;
  std::printf("Prop 4.1:  MMSNP formula:\n%s", formula->ToString().c_str());

  // Prop 3.2 backward: MDDlog -> FPP (colors = IDB subsets).
  auto fpp2 = obda::mmsnp::MddlogToFpp(*program, /*max_colors=*/4096);
  if (fpp2.ok()) {
    std::printf("Prop 3.2 backward: FPP with %zu colors, %zu patterns\n",
                fpp2->colors.size(), fpp2->patterns.size());
  }

  // All four agree on cycles.
  std::printf("\n%8s %10s %10s %10s %10s\n", "cycle", "FPP", "MDDlog",
              "MMSNP", "FPP'");
  for (int n = 3; n <= 8; ++n) {
    obda::data::Instance cycle = obda::data::DirectedCycle("E", n);
    auto v1 = fpp.CoQuery(cycle);
    auto v2 = obda::ddlog::EvaluateBoolean(*program, cycle);
    auto v3 = formula->EvaluateCo(cycle);
    bool v4 = false;
    if (fpp2.ok()) {
      auto r = fpp2->CoQuery(cycle);
      v4 = r.ok() && *r;
    }
    if (!v1.ok() || !v2.ok() || !v3.ok()) return 1;
    std::printf("%8d %10s %10s %10s %10s\n", n, *v1 ? "true" : "false",
                *v2 ? "true" : "false", v3->empty() ? "false" : "true",
                v4 ? "true" : "false");
  }
  std::printf("\n(true = not 2-colorable; odd cycles only.)\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
