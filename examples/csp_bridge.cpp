// The CSP bridge (paper §4.2 and §5.3): take an atomic ontology-mediated
// query, compile it to a generalized CSP with a marked element (Thm 4.6),
// decide FO- and datalog-rewritability (Thm 5.16), and extract and run a
// concrete rewriting.
//
// The example is Example 4.5's hereditary-predisposition query: it is
// datalog-rewritable (reachability) but NOT FO-rewritable, while the flat
// bacterial-infection query is FO-rewritable with the rewriting
// LymeDisease(x) ∨ Listeriosis(x).

#include <cstdio>

#include "core/csp_translation.h"
#include "core/omq.h"
#include "core/rewritability.h"
#include "data/io.h"
#include "dl/parser.h"

namespace {

using obda::core::OntologyMediatedQuery;

void Report(const char* name, const OntologyMediatedQuery& omq) {
  std::printf("=== %s ===\n", name);
  auto csp = obda::core::CompileToCsp(omq);
  if (!csp.ok()) {
    std::printf("  CSP compilation failed: %s\n",
                csp.status().ToString().c_str());
    return;
  }
  std::printf("  Thm 4.6 template set: %zu marked template(s), schema %s\n",
              csp->templates().size(), csp->schema().ToString().c_str());
  auto fo = obda::core::IsFoRewritable(omq);
  auto dl = obda::core::IsDatalogRewritable(omq);
  if (fo.ok() && dl.ok()) {
    std::printf("  FO-rewritable:      %s\n", *fo ? "YES" : "no");
    std::printf("  datalog-rewritable: %s\n", *dl ? "YES" : "no");
  }
}

int Run() {
  // FO-rewritable query.
  {
    auto o = obda::dl::ParseOntology(
        "LymeDisease | Listeriosis [= BacterialInfection");
    obda::data::Schema s;
    s.AddRelation("LymeDisease", 1);
    s.AddRelation("Listeriosis", 1);
    auto omq = OntologyMediatedQuery::WithAtomicQuery(
        s, *o, "BacterialInfection");
    Report("BacterialInfection(x)", *omq);

    auto rewriting = obda::core::ExtractFoRewriting(*omq);
    if (rewriting.ok()) {
      std::printf("  extracted FO-rewriting (%zu conjunct UCQ(s)):\n",
                  rewriting->conjuncts.size());
      for (const auto& conj : rewriting->conjuncts) {
        std::printf("    %s\n", conj.ToString().c_str());
      }
      auto d = obda::data::ParseInstance(
          s, "LymeDisease(p1). Listeriosis(p2)");
      auto answers = rewriting->Evaluate(*d);
      std::printf("  rewriting answers on the sample data:");
      for (const auto& t : answers) {
        std::printf(" %s", d->ConstantName(t[0]).c_str());
      }
      std::printf("\n");
    }
  }

  // Datalog-but-not-FO query (Example 4.5).
  {
    auto o = obda::dl::ParseOntology(
        "some HasParent.HereditaryPredisposition [= "
        "HereditaryPredisposition");
    obda::data::Schema s;
    s.AddRelation("HereditaryPredisposition", 1);
    s.AddRelation("HasParent", 2);
    auto omq = OntologyMediatedQuery::WithAtomicQuery(
        s, *o, "HereditaryPredisposition");
    Report("HereditaryPredisposition(x)  (Example 4.5)", *omq);

    auto rewriting = obda::core::ExtractDatalogRewriting(*omq);
    if (rewriting.ok()) {
      std::printf(
          "  extracted canonical-datalog rewriting: %zu program(s)\n",
          rewriting->programs.size());
      auto d = obda::data::ParseInstance(s, R"(
        HasParent(c, p). HasParent(p, g). HereditaryPredisposition(g).
        HasParent(x, y)
      )");
      auto answers = rewriting->Evaluate(*d);
      if (answers.ok()) {
        std::printf("  datalog-rewriting answers (PTime evaluation):");
        for (const auto& t : *answers) {
          std::printf(" %s", d->ConstantName(t[0]).c_str());
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
