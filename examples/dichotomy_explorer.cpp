// Dichotomy explorer (paper §5.1): the PTime/coNP dichotomy for
// ontology-mediated queries is the Feder–Vardi conjecture in disguise.
//
// We take two OMQs obtained from CSP templates via the Thm 4.6 reverse
// construction: coCSP(K2) (2-colorability — bounded width, datalog-
// rewritable, PTime) and coCSP(K3) (3-colorability — NP-hard). The
// classifier (Thm 5.16 machinery) sorts them correctly, and the runtime
// of the generic coNP evaluator against the (2,3)-consistency PTime
// procedure makes the complexity gap visible.

#include <chrono>
#include <cstdio>

#include "base/rng.h"
#include "core/csp_translation.h"
#include "core/rewritability.h"
#include "csp/consistency.h"
#include "data/generator.h"
#include "data/homomorphism.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Run() {
  for (int k : {2, 3}) {
    obda::data::Instance clique = obda::data::Clique("E", k);
    auto omq = obda::core::CspToOmq(clique);
    if (!omq.ok()) return 1;
    auto fo = obda::core::IsFoRewritable(*omq);
    auto dl = obda::core::IsDatalogRewritable(*omq);
    std::printf("OMQ from coCSP(K%d): FO-rewritable=%s  "
                "datalog-rewritable=%s  => %s side of the dichotomy\n",
                k, fo.ok() && *fo ? "yes" : "no",
                dl.ok() && *dl ? "yes" : "no",
                dl.ok() && *dl ? "PTime" : "coNP-hard");
  }

  std::printf("\nScaling of evaluation (random sparse digraphs):\n");
  std::printf("%6s %14s %14s %18s\n", "n", "hom-K2 (ms)", "hom-K3 (ms)",
              "(2,3)-cons K2 (ms)");
  obda::base::Rng rng(42);
  obda::data::Instance k2 = obda::data::Clique("E", 2);
  obda::data::Instance k3 = obda::data::Clique("E", 3);
  for (int n : {10, 20, 40, 80}) {
    obda::data::Instance d =
        obda::data::RandomDigraph("E", n, 2 * n, rng);
    auto t0 = std::chrono::steady_clock::now();
    obda::data::HomOptions options;
    options.node_budget = 200'000'000;
    (void)obda::data::FindHomomorphism(d, k2, {}, options);
    double hom_k2 = MillisSince(t0);
    t0 = std::chrono::steady_clock::now();
    (void)obda::data::FindHomomorphism(d, k3, {}, options);
    double hom_k3 = MillisSince(t0);
    t0 = std::chrono::steady_clock::now();
    (void)obda::csp::PairwiseConsistencyRefutes(d, k2);
    double pc = MillisSince(t0);
    std::printf("%6d %14.2f %14.2f %18.2f\n", n, hom_k2, hom_k3, pc);
  }
  std::printf(
      "\nThe datalog-rewritable side stays polynomial regardless of the\n"
      "instance; the K3 side is NP-hard in general (Thm 5.1/5.3: a full\n"
      "classification of (ALC,UCQ) would prove the Feder–Vardi "
      "conjecture).\n");
  return 0;
}

}  // namespace

int main() { return Run(); }
